//! The queue monitor — RaftLib's δ-periodic resize and telemetry thread.
//!
//! §4 of the paper: "RaftLib deals with this by detecting this condition
//! with a monitoring thread, updated every δ ← 10 µs. ... On the side
//! writing to the queue, if the write process is blocked for a time period
//! of 3 × δ then the queue is resized. On the read side, if the reading
//! compute kernel requests more items than the queue has available then the
//! queue is tagged for resizing."
//!
//! One monitor thread serves the whole application ("a thread continuously
//! monitors all the queues within the system and reallocates them as needed
//! (either larger or smaller)", §4.2). Each tick it:
//!
//! 1. samples every queue's occupancy into its histogram (the telemetry the
//!    paper exposes: mean occupancy, service rate, throughput, occupancy
//!    histograms);
//! 2. grows queues whose writer has been blocked ≥ 3δ;
//! 3. grows queues whose reader requested more than the current capacity;
//! 4. shrinks queues that stayed nearly empty for a long hysteresis window;
//! 5. when the dynamic optimizer is enabled, adjusts the active width of
//!    split adapters whose input is persistently backed up (bottleneck
//!    elimination, §3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use raft_buffer::fifo::Monitorable;

use crate::parallel::WidthControl;
use crate::scheduler::KernelTelemetry;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sampling period δ. The paper uses 10 µs; the default here is 100 µs
    /// (kinder to small hosts), configurable down to the paper's value.
    pub delta: Duration,
    /// Master switch. With the monitor off, queues never resize and no
    /// occupancy histograms are collected.
    pub enabled: bool,
    /// Grow a queue when its writer has been blocked ≥ 3δ.
    pub grow_on_writer_block: bool,
    /// Grow a queue when a read request exceeded its capacity.
    pub grow_on_read_request: bool,
    /// Allow shrinking long-underutilized queues.
    pub shrink_enabled: bool,
    /// Consecutive low-occupancy ticks before a shrink (hysteresis).
    pub shrink_after_ticks: u32,
    /// Enable the dynamic replication-width optimizer.
    pub optimize_widths: bool,
    /// Consecutive backed-up ticks before widening a split.
    pub widen_after_ticks: u32,
    /// Deadline watchdog: if a single `run()` invocation exceeds this
    /// budget, the monitor records a [`WatchdogEvent`] and raises the
    /// cooperative stop flag so the rest of the pipeline winds down.
    /// `None` (the default) disables the check.
    pub run_budget: Option<Duration>,
    /// Stall watchdog: if *no* stream moves any element for this long
    /// while streams are still open, the monitor records a
    /// [`WatchdogEvent`] and raises the cooperative stop flag. `None`
    /// (the default) disables the check.
    pub stall_timeout: Option<Duration>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            delta: Duration::from_micros(100),
            enabled: true,
            grow_on_writer_block: true,
            grow_on_read_request: true,
            shrink_enabled: true,
            shrink_after_ticks: 200,
            optimize_widths: true,
            widen_after_ticks: 20,
            run_budget: None,
            stall_timeout: None,
        }
    }
}

impl MonitorConfig {
    /// The paper's exact δ = 10 µs.
    pub fn paper_delta(mut self) -> Self {
        self.delta = Duration::from_micros(10);
        self
    }

    /// Fully disabled monitor (for the monitoring-overhead ablation).
    pub fn disabled() -> Self {
        MonitorConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// Arm the per-invocation `run()` deadline watchdog.
    pub fn with_run_budget(mut self, budget: Duration) -> Self {
        self.run_budget = Some(budget);
        self
    }

    /// Arm the stalled-streams watchdog.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    fn watchdog_armed(&self) -> bool {
        self.run_budget.is_some() || self.stall_timeout.is_some()
    }
}

/// Why a queue was resized (for the resize trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeReason {
    /// Writer blocked ≥ 3δ.
    WriterBlocked,
    /// Reader requested more items than the capacity.
    ReadRequest,
    /// Sustained low occupancy.
    Shrink,
}

/// One entry of the resize trace.
#[derive(Debug, Clone)]
pub struct ResizeEvent {
    /// Time since monitor start.
    pub at: Duration,
    /// Index of the stream in the runtime's edge table.
    pub edge: usize,
    /// Edge display name (`src.port -> dst.port`).
    pub edge_name: String,
    /// Capacity before.
    pub old_capacity: usize,
    /// Capacity after.
    pub new_capacity: usize,
    /// Trigger.
    pub reason: ResizeReason,
}

/// A split adapter under optimizer control.
pub(crate) struct WidthTarget {
    /// The split's active-width control.
    pub control: WidthControl,
    /// The split's input stream (backed-up input ⇒ widen).
    pub input: Arc<dyn Monitorable>,
    /// The replicas' input streams (all starved ⇒ narrow).
    pub replica_inputs: Vec<Arc<dyn Monitorable>>,
    /// Display name for the width-change log.
    pub name: String,
}

/// A kernel under watchdog observation.
pub(crate) struct HealthTarget {
    /// Kernel display name (for the event log).
    pub name: String,
    /// Its scheduler telemetry; `entered > runs` with both counters
    /// unchanged across the budget window means "stuck inside one
    /// `run()` invocation".
    pub telemetry: Arc<KernelTelemetry>,
}

/// What the deadline watchdog detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogKind {
    /// A single `run()` invocation exceeded [`MonitorConfig::run_budget`].
    RunBudget {
        /// The offending kernel's display name.
        kernel: String,
    },
    /// No stream moved any element for [`MonitorConfig::stall_timeout`]
    /// while streams were still open.
    StalledStreams,
}

/// One entry of the watchdog event log. Each firing also raises the
/// cooperative stop flag (sources observe it via
/// [`Context::stop_requested`](crate::port::Context::stop_requested)), so
/// a wedged pipeline degrades to a drained partial result instead of a
/// hang.
#[derive(Debug, Clone)]
pub struct WatchdogEvent {
    /// Time since monitor start.
    pub at: Duration,
    /// What was detected.
    pub kind: WatchdogKind,
}

/// A width-change log entry.
#[derive(Debug, Clone)]
pub struct WidthEvent {
    /// Time since monitor start.
    pub at: Duration,
    /// Split display name.
    pub split: String,
    /// Active width before.
    pub old_width: u32,
    /// Active width after.
    pub new_width: u32,
}

/// Handle to the running monitor thread.
pub(crate) struct MonitorHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    events: Arc<Mutex<Vec<ResizeEvent>>>,
    width_events: Arc<Mutex<Vec<WidthEvent>>>,
    watchdog_events: Arc<Mutex<Vec<WatchdogEvent>>>,
}

impl MonitorHandle {
    /// Stop the monitor and collect its event logs.
    pub fn finish(mut self) -> (Vec<ResizeEvent>, Vec<WidthEvent>, Vec<WatchdogEvent>) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        (
            std::mem::take(&mut *self.events.lock()),
            std::mem::take(&mut *self.width_events.lock()),
            std::mem::take(&mut *self.watchdog_events.lock()),
        )
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Start the monitor over the given streams, split adapters, and watched
/// kernels. `global_stop` is the runtime's cooperative shutdown flag; the
/// watchdog raises it when a deadline or stall trips. The thread is spawned
/// when resize monitoring is enabled *or* a watchdog is armed (the
/// watchdog "rides the monitor thread"); with `enabled: false` the resize
/// and telemetry work is skipped either way.
pub(crate) fn spawn(
    cfg: MonitorConfig,
    fifos: Vec<(String, Arc<dyn Monitorable>)>,
    widths: Vec<WidthTarget>,
    health: Vec<HealthTarget>,
    global_stop: Option<Arc<AtomicBool>>,
) -> MonitorHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let events = Arc::new(Mutex::new(Vec::new()));
    let width_events = Arc::new(Mutex::new(Vec::new()));
    let watchdog_events = Arc::new(Mutex::new(Vec::new()));
    let join = if cfg.enabled || cfg.watchdog_armed() {
        let stop2 = stop.clone();
        let events2 = events.clone();
        let width_events2 = width_events.clone();
        let watchdog_events2 = watchdog_events.clone();
        Some(
            std::thread::Builder::new()
                .name("raft-monitor".into())
                .spawn(move || {
                    monitor_loop(
                        cfg,
                        fifos,
                        widths,
                        health,
                        global_stop,
                        stop2,
                        events2,
                        width_events2,
                        watchdog_events2,
                    );
                })
                .expect("spawn monitor thread"),
        )
    } else {
        None
    };
    MonitorHandle {
        stop,
        join,
        events,
        width_events,
        watchdog_events,
    }
}

/// Per-kernel watchdog bookkeeping: the `(entered, runs)` pair last seen
/// and when it last changed.
struct HealthState {
    last_entered: u64,
    last_runs: u64,
    since: Instant,
    fired: bool,
}

#[allow(clippy::too_many_arguments)] // internal plumbing for one spawn site
fn monitor_loop(
    cfg: MonitorConfig,
    fifos: Vec<(String, Arc<dyn Monitorable>)>,
    widths: Vec<WidthTarget>,
    health: Vec<HealthTarget>,
    global_stop: Option<Arc<AtomicBool>>,
    stop: Arc<AtomicBool>,
    events: Arc<Mutex<Vec<ResizeEvent>>>,
    width_events: Arc<Mutex<Vec<WidthEvent>>>,
    watchdog_events: Arc<Mutex<Vec<WatchdogEvent>>>,
) {
    let start = Instant::now();
    let delta_ns = cfg.delta.as_nanos() as u64;
    let mut low_ticks: Vec<u32> = vec![0; fifos.len()];
    let mut backed_up_ticks: Vec<u32> = vec![0; widths.len()];
    let mut starved_ticks: Vec<u32> = vec![0; widths.len()];
    let mut health_state: Vec<HealthState> = health
        .iter()
        .map(|_| HealthState {
            last_entered: 0,
            last_runs: 0,
            since: start,
            fired: false,
        })
        .collect();
    let mut last_popped: u64 = 0;
    let mut popped_since = start;
    let mut stall_fired = false;

    while !stop.load(Ordering::Relaxed) {
        // --- deadline watchdog (rides this thread; active even when the
        // --- resize monitor itself is disabled) --------------------------
        if let (Some(budget), Some(gstop)) = (cfg.run_budget, global_stop.as_ref()) {
            for (t, st) in health.iter().zip(health_state.iter_mut()) {
                let entered = t.telemetry.entered.load(Ordering::Relaxed);
                let runs = t.telemetry.runs.load(Ordering::Relaxed);
                if entered != st.last_entered || runs != st.last_runs {
                    st.last_entered = entered;
                    st.last_runs = runs;
                    st.since = Instant::now();
                    st.fired = false;
                } else if entered > runs && !st.fired && st.since.elapsed() >= budget {
                    // In `run()` right now and has been, without returning,
                    // for the whole budget window.
                    st.fired = true;
                    watchdog_events.lock().push(WatchdogEvent {
                        at: start.elapsed(),
                        kind: WatchdogKind::RunBudget {
                            kernel: t.name.clone(),
                        },
                    });
                    gstop.store(true, Ordering::Relaxed);
                }
            }
        }
        if let (Some(timeout), Some(gstop)) = (cfg.stall_timeout, global_stop.as_ref()) {
            let popped: u64 = fifos
                .iter()
                .map(|(_, f)| f.stats().reader.popped.load(Ordering::Relaxed))
                .sum();
            let all_finished = fifos.iter().all(|(_, f)| f.is_finished());
            if popped != last_popped || all_finished {
                last_popped = popped;
                popped_since = Instant::now();
                stall_fired = false;
            } else if !stall_fired && popped_since.elapsed() >= timeout {
                stall_fired = true;
                watchdog_events.lock().push(WatchdogEvent {
                    at: start.elapsed(),
                    kind: WatchdogKind::StalledStreams,
                });
                gstop.store(true, Ordering::Relaxed);
            }
        }

        for (i, (name, f)) in fifos.iter().enumerate() {
            if !cfg.enabled {
                break;
            }
            // 1. occupancy histogram sample
            f.sample();

            let capacity = f.capacity();
            let stats = f.stats();

            // 2. writer blocked ≥ 3δ → grow
            if cfg.grow_on_writer_block && stats.writer_blocked_for_ns() >= 3 * delta_ns {
                let old = capacity;
                if f.grow() {
                    // Reset the blocked clock so one long block does not
                    // trigger a growth cascade within the same stall.
                    stats.writer_block_begin();
                    events.lock().push(ResizeEvent {
                        at: start.elapsed(),
                        edge: i,
                        edge_name: name.clone(),
                        old_capacity: old,
                        new_capacity: f.capacity(),
                        reason: ResizeReason::WriterBlocked,
                    });
                    low_ticks[i] = 0;
                    continue;
                }
            }

            // 3. read request larger than capacity → grow to fit
            let want = stats.reader.max_read_request.load(Ordering::Relaxed) as usize;
            if cfg.grow_on_read_request && want > capacity {
                let old = capacity;
                if f.grow_to(want) {
                    events.lock().push(ResizeEvent {
                        at: start.elapsed(),
                        edge: i,
                        edge_name: name.clone(),
                        old_capacity: old,
                        new_capacity: f.capacity(),
                        reason: ResizeReason::ReadRequest,
                    });
                    low_ticks[i] = 0;
                    continue;
                }
            }

            // 4. sustained low occupancy → shrink (hysteresis). Never
            // shrink below the largest batch a reader ever requested, or
            // the read-request trigger would immediately grow again
            // (grow/shrink oscillation).
            if cfg.shrink_enabled {
                let occ = f.occupancy();
                let floor = stats.reader.max_read_request.load(Ordering::Relaxed) as usize;
                if occ * 8 < capacity && capacity > 1 && capacity / 2 >= floor {
                    low_ticks[i] += 1;
                    if low_ticks[i] >= cfg.shrink_after_ticks {
                        let old = capacity;
                        if f.shrink() {
                            events.lock().push(ResizeEvent {
                                at: start.elapsed(),
                                edge: i,
                                edge_name: name.clone(),
                                old_capacity: old,
                                new_capacity: f.capacity(),
                                reason: ResizeReason::Shrink,
                            });
                        }
                        low_ticks[i] = 0;
                    }
                } else {
                    low_ticks[i] = 0;
                }
            }
        }

        // 5. dynamic replication width
        if cfg.enabled && cfg.optimize_widths {
            for (i, t) in widths.iter().enumerate() {
                let cur = t.control.get();
                // Widen: split's input queue persistently > 3/4 full while
                // not all replicas are active.
                let in_occ = t.input.occupancy();
                let in_cap = t.input.capacity().max(1);
                if cur < t.control.max() && in_occ * 4 >= in_cap * 3 {
                    backed_up_ticks[i] += 1;
                    if backed_up_ticks[i] >= cfg.widen_after_ticks {
                        let new = t.control.widen();
                        width_events.lock().push(WidthEvent {
                            at: start.elapsed(),
                            split: t.name.clone(),
                            old_width: cur,
                            new_width: new,
                        });
                        backed_up_ticks[i] = 0;
                    }
                } else {
                    backed_up_ticks[i] = 0;
                }
                // Narrow: input empty and all active replica queues empty
                // for a long stretch.
                let all_idle = in_occ == 0
                    && t.replica_inputs
                        .iter()
                        .take(cur as usize)
                        .all(|r| r.occupancy() == 0);
                if cur > 1 && all_idle {
                    starved_ticks[i] += 1;
                    if starved_ticks[i] >= cfg.widen_after_ticks * 8 {
                        let new = t.control.narrow();
                        width_events.lock().push(WidthEvent {
                            at: start.elapsed(),
                            split: t.name.clone(),
                            old_width: cur,
                            new_width: new,
                        });
                        starved_ticks[i] = 0;
                    }
                } else {
                    starved_ticks[i] = 0;
                }
            }
        }

        // δ sleep. For very small δ a sleep overshoots; spin-sleep hybrid.
        if cfg.delta >= Duration::from_micros(50) {
            std::thread::sleep(cfg.delta);
        } else {
            let end = Instant::now() + cfg.delta;
            while Instant::now() < end {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_buffer::{fifo_with, FifoConfig};

    fn cfg_fast() -> MonitorConfig {
        MonitorConfig {
            delta: Duration::from_micros(100),
            shrink_after_ticks: 10,
            widen_after_ticks: 3,
            ..Default::default()
        }
    }

    #[test]
    fn grows_when_writer_blocked() {
        let (f, mut p, _c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 4,
            max_capacity: 64,
            min_capacity: 2,
            ..Default::default()
        });
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let handle = spawn(
            cfg_fast(),
            vec![("edge0".into(), Arc::new(f.clone()) as Arc<dyn Monitorable>)],
            vec![],
            vec![],
            None,
        );
        // Block the writer in another thread.
        let t = std::thread::spawn(move || {
            p.push(4).unwrap();
            p
        });
        let _p = t.join().unwrap();
        let (events, _, _) = handle.finish();
        assert!(
            events
                .iter()
                .any(|e| e.reason == ResizeReason::WriterBlocked),
            "expected a writer-block resize, got {events:?}"
        );
        assert!(f.capacity() >= 8);
    }

    #[test]
    fn shrinks_idle_queue_after_hysteresis() {
        let (f, _p, _c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 64,
            max_capacity: 128,
            min_capacity: 4,
            ..Default::default()
        });
        let handle = spawn(
            cfg_fast(),
            vec![("edge0".into(), Arc::new(f.clone()) as Arc<dyn Monitorable>)],
            vec![],
            vec![],
            None,
        );
        // idle queue: occupancy 0 for many ticks
        std::thread::sleep(Duration::from_millis(50));
        let (events, _, _) = handle.finish();
        assert!(
            events.iter().any(|e| e.reason == ResizeReason::Shrink),
            "expected shrink events, got {events:?}"
        );
        assert!(f.capacity() < 64);
    }

    #[test]
    fn disabled_monitor_does_nothing() {
        let (f, mut p, _c) = fifo_with::<u64>(FifoConfig {
            initial_capacity: 4,
            max_capacity: 64,
            min_capacity: 4,
            ..Default::default()
        });
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        let handle = spawn(
            MonitorConfig::disabled(),
            vec![("edge0".into(), Arc::new(f.clone()) as Arc<dyn Monitorable>)],
            vec![],
            vec![],
            None,
        );
        std::thread::sleep(Duration::from_millis(20));
        let (events, _, _) = handle.finish();
        assert!(events.is_empty());
        assert_eq!(f.capacity(), 4);
        assert_eq!(f.snapshot().mean_occupancy, 4.0); // instantaneous only
    }

    #[test]
    fn optimizer_narrows_idle_split() {
        use crate::parallel::{Split, SplitStrategy};
        // A split with all queues idle: the optimizer should narrow it
        // after the (long) starvation window.
        let split = Split::<u64>::new(3, SplitStrategy::RoundRobin);
        let ctl = split.width_control();
        assert_eq!(ctl.get(), 3);
        let (f_in, _p1, _c1) = fifo_with::<u64>(FifoConfig::starting_at(8));
        let (f_r1, _p2, _c2) = fifo_with::<u64>(FifoConfig::starting_at(8));
        let (f_r2, _p3, _c3) = fifo_with::<u64>(FifoConfig::starting_at(8));
        let target = WidthTarget {
            control: ctl.clone(),
            input: Arc::new(f_in),
            replica_inputs: vec![Arc::new(f_r1), Arc::new(f_r2)],
            name: "idle-split".into(),
        };
        let cfg = MonitorConfig {
            delta: Duration::from_micros(100),
            widen_after_ticks: 2, // narrow threshold = 8x this
            shrink_enabled: false,
            ..Default::default()
        };
        let handle = spawn(cfg, vec![], vec![target], vec![], None);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ctl.get() == 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let (_, width_events, _) = handle.finish();
        assert!(ctl.get() < 3, "optimizer never narrowed: {width_events:?}");
        assert!(!width_events.is_empty());
    }

    #[test]
    fn samples_fill_histogram() {
        let (f, mut p, _c) = fifo_with::<u64>(FifoConfig::starting_at(16));
        for i in 0..3 {
            p.try_push(i).unwrap();
        }
        let handle = spawn(
            cfg_fast(),
            vec![("edge0".into(), Arc::new(f.clone()) as Arc<dyn Monitorable>)],
            vec![],
            vec![],
            None,
        );
        std::thread::sleep(Duration::from_millis(20));
        handle.finish();
        let snap = f.snapshot();
        assert!(snap.occupancy_hist.iter().sum::<u64>() > 0);
        assert!(snap.mean_occupancy > 0.0);
    }
}
