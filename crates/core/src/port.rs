//! Port access from inside a running kernel.
//!
//! The paper's kernels pull data with `input["name"].pop_s<T>()` and write
//! with `output["name"].allocate_s<T>()` (Figure 2). Here a kernel receives
//! a [`Context`] whose [`Context::input`]/[`Context::output`] return typed
//! handles over the bound stream endpoints. Access is "safe, free from data
//! race and other issues" (§4): each endpoint is owned by exactly one
//! kernel, and element types were verified at link time.
//!
//! Blocking semantics mirror the paper: `pop` blocks until data arrives or
//! the stream closes; `push` blocks while the queue is full (which is what
//! the monitor's 3δ grow rule watches for); `peek_range` gives the sliding
//! window pattern.
//!
//! Taking a handle ([`Context::input`] / [`Context::output`]) pays the name
//! lookup, `RefCell` borrow and `dyn Any` downcast *once*; the handle then
//! stores the typed endpoint, so per-element calls are direct. For bulk
//! kernels, [`OutPort::reserve`] and [`InPort::pop_slice`] expose the
//! FIFO's zero-copy batch views: elements are written into / read out of
//! the ring storage itself, with the queue's synchronization amortized over
//! the whole batch. The views are agnostic to the link's allocator
//! ([`raft_buffer::LinkAlloc`]): on an shm-backed link the same `reserve` /
//! `pop_slice` calls read and write the mapped segment directly — the
//! zero-copy path *is* the shared-memory path, no extra marshalling layer.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

use raft_buffer::fifo::Monitorable;
use raft_buffer::{
    Consumer, PeekRange, Producer, Signal, SliceView, TryPopError, TryPushError, WriteGuard,
    WriteSlice,
};

use crate::error::PortClosed;

/// Type-erased stream endpoint (`Producer<T>` or `Consumer<T>`).
pub type AnyEndpoint = Box<dyn Any + Send>;

/// Where a kernel's ports live during execution.
///
/// Ports are stored in per-slot `RefCell`s so a kernel can hold handles to
/// several *different* ports simultaneously (the sum kernel pops two inputs
/// and pushes one output in a single `run`). Taking the same port twice
/// panics — that is always a kernel bug.
pub struct Context {
    inputs: Vec<RefCell<AnyEndpoint>>,
    /// Monitor handle of each input's FIFO (for the erased
    /// `inputs_done` check).
    input_fifos: Vec<Arc<dyn Monitorable>>,
    input_names: HashMap<String, usize>,
    outputs: Vec<RefCell<AnyEndpoint>>,
    output_names: HashMap<String, usize>,
    /// Cooperative stop flag: set by the runtime on global shutdown.
    stop: Arc<AtomicBool>,
    /// Graph-wide drain level (see `raft_buffer::DRAIN_DRAINING` /
    /// `DRAIN_QUIESCED`): raised by the runtime's drain ladder; level 1
    /// asks sources to stop so in-flight data flushes, level 2 makes the
    /// FIFOs themselves fail fast.
    drain: Arc<AtomicU8>,
    /// Kernel display name (for port-access panic messages).
    kernel_name: String,
}

// SAFETY: a Context is only ever used by the single thread running its
// kernel; it is moved (Send) to that thread at start-up. RefCell is the
// single-thread interior mutability it needs.
unsafe impl Send for Context {}

impl Context {
    /// Assemble a context from named endpoints. Runtime-internal.
    pub(crate) fn new(
        kernel_name: String,
        inputs: Vec<(String, AnyEndpoint, Arc<dyn Monitorable>)>,
        outputs: Vec<(String, AnyEndpoint)>,
        stop: Arc<AtomicBool>,
    ) -> Self {
        let mut ctx = Context {
            inputs: Vec::new(),
            input_fifos: Vec::new(),
            input_names: HashMap::new(),
            outputs: Vec::new(),
            output_names: HashMap::new(),
            stop,
            drain: Arc::new(AtomicU8::new(0)),
            kernel_name,
        };
        for (name, ep, fifo) in inputs {
            ctx.input_names.insert(name, ctx.inputs.len());
            ctx.inputs.push(RefCell::new(ep));
            ctx.input_fifos.push(fifo);
        }
        for (name, ep) in outputs {
            ctx.output_names.insert(name, ctx.outputs.len());
            ctx.outputs.push(RefCell::new(ep));
        }
        ctx
    }

    /// Construct a context directly from endpoints — for driving a kernel
    /// outside a `RaftMap` (unit tests, custom harnesses).
    #[doc(hidden)]
    pub fn for_test(
        inputs: Vec<(String, AnyEndpoint, Arc<dyn Monitorable>)>,
        outputs: Vec<(String, AnyEndpoint)>,
    ) -> Self {
        Context::new(
            "test".to_string(),
            inputs,
            outputs,
            Arc::new(AtomicBool::new(false)),
        )
    }

    /// Typed handle to the named input port. Panics if the name or type is
    /// wrong (both were checked at link time; a panic here means the kernel
    /// asked for a port it never declared) or if the port handle is already
    /// taken in this `run` invocation.
    pub fn input<T: Send + 'static>(&self, name: &str) -> InPort<'_, T> {
        let &idx = self.input_names.get(name).unwrap_or_else(|| {
            panic!(
                "kernel {:?} has no input port {:?} (has {:?})",
                self.kernel_name,
                name,
                self.input_names.keys().collect::<Vec<_>>()
            )
        });
        self.input_at(idx)
    }

    /// Typed handle to the input port at declaration index `idx` — the
    /// allocation-free access path for hot kernels.
    pub fn input_at<T: Send + 'static>(&self, idx: usize) -> InPort<'_, T> {
        let cell = self.inputs.get(idx).unwrap_or_else(|| {
            panic!(
                "kernel {:?} input index {idx} out of range ({} inputs)",
                self.kernel_name,
                self.inputs.len()
            )
        });
        let guard = cell
            .try_borrow_mut()
            .unwrap_or_else(|_| panic!("input port {idx} taken twice in one run()"));
        // Pay the type-erasure downcast once per `run`, not once per pop:
        // the mapped RefMut stores the typed endpoint pointer, so every
        // port operation below is a plain field access.
        let kernel_name = &self.kernel_name;
        let guard = std::cell::RefMut::map(guard, |ep| {
            ep.downcast_mut::<Consumer<T>>().unwrap_or_else(|| {
                panic!(
                    "kernel {kernel_name:?}: input port {idx} is not of type {}",
                    std::any::type_name::<T>()
                )
            })
        });
        InPort { guard }
    }

    /// Typed handle to the named output port (see [`Context::input`]).
    pub fn output<T: Send + 'static>(&self, name: &str) -> OutPort<'_, T> {
        let &idx = self.output_names.get(name).unwrap_or_else(|| {
            panic!(
                "kernel {:?} has no output port {:?} (has {:?})",
                self.kernel_name,
                name,
                self.output_names.keys().collect::<Vec<_>>()
            )
        });
        self.output_at(idx)
    }

    /// Typed handle to the output port at declaration index `idx`.
    pub fn output_at<T: Send + 'static>(&self, idx: usize) -> OutPort<'_, T> {
        let cell = self.outputs.get(idx).unwrap_or_else(|| {
            panic!(
                "kernel {:?} output index {idx} out of range ({} outputs)",
                self.kernel_name,
                self.outputs.len()
            )
        });
        let guard = cell
            .try_borrow_mut()
            .unwrap_or_else(|_| panic!("output port {idx} taken twice in one run()"));
        // As for inputs: downcast once, then every push is direct.
        let kernel_name = &self.kernel_name;
        let guard = std::cell::RefMut::map(guard, |ep| {
            ep.downcast_mut::<Producer<T>>().unwrap_or_else(|| {
                panic!(
                    "kernel {kernel_name:?}: output port {idx} is not of type {}",
                    std::any::type_name::<T>()
                )
            })
        });
        OutPort { guard }
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// `true` once the runtime asked all kernels to wind down (e.g. a
    /// sibling kernel panicked). Long-running sources should poll this.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Share the graph-wide drain flag with this context. Runtime-internal:
    /// every kernel of a map observes the same ladder.
    pub(crate) fn set_drain_flag(&mut self, drain: Arc<AtomicU8>) {
        self.drain = drain;
    }

    /// Current graph drain level: 0 = running, 1 = draining (sources asked
    /// to stop, in-flight data still flushing), 2 = quiesced (FIFOs fail
    /// fast). Long-running sources should treat ≥ 1 like
    /// [`Context::stop_requested`].
    pub fn drain_level(&self) -> u8 {
        self.drain.load(Ordering::Acquire)
    }

    /// `true` once a cooperative drain has been requested (level ≥ 1).
    pub fn drain_requested(&self) -> bool {
        self.drain_level() >= raft_buffer::DRAIN_DRAINING
    }

    /// `true` when *every* input port is closed and drained — the usual
    /// condition for an intermediate kernel to return [`KStatus::Stop`].
    ///
    /// [`KStatus::Stop`]: crate::kernel::KStatus::Stop
    pub fn inputs_done(&self) -> bool {
        self.input_fifos.iter().all(|f| f.is_finished())
    }
}

/// Typed reading handle for one input port, valid for the current `run`.
///
/// The `Consumer<T>` downcast is cached in the handle when it is taken
/// ([`Context::input`]), so each operation here is a direct call on the
/// typed endpoint — no per-pop `dyn Any` lookup.
pub struct InPort<'a, T: Send + 'static> {
    guard: std::cell::RefMut<'a, Consumer<T>>,
}

impl<'a, T: Send + 'static> InPort<'a, T> {
    /// Blocking pop — the paper's `pop_s` without the RAII wrapper (Rust
    /// move semantics make the auto-pop object unnecessary: the value is
    /// simply returned).
    #[inline]
    pub fn pop(&mut self) -> Result<T, PortClosed> {
        self.guard.pop().map_err(|_| PortClosed)
    }

    /// Blocking pop returning the element's synchronous signal too.
    #[inline]
    pub fn pop_signal(&mut self) -> Result<(T, Signal), PortClosed> {
        self.guard.pop_signal().map_err(|_| PortClosed)
    }

    /// Non-blocking pop: `Ok(None)` when the stream is momentarily empty.
    #[inline]
    pub fn try_pop(&mut self) -> Result<Option<T>, PortClosed> {
        match self.guard.try_pop() {
            Ok(v) => Ok(Some(v)),
            Err(TryPopError::Empty) => Ok(None),
            Err(TryPopError::Closed) => Err(PortClosed),
        }
    }

    /// Sliding-window view of the next `n` elements (the paper's
    /// `peek_range`). Blocks until `n` are available; fails if the stream
    /// ends first.
    #[inline]
    pub fn peek_range(&mut self, n: usize) -> Result<PeekRange<'_, T>, PortClosed> {
        self.guard.peek_range(n).map_err(|_| PortClosed)
    }

    /// Pop up to `n` items into `out`; blocks for the first one.
    #[inline]
    pub fn pop_range(&mut self, n: usize, out: &mut Vec<T>) -> Result<usize, PortClosed> {
        self.guard.pop_range(n, out).map_err(|_| PortClosed)
    }

    /// Zero-copy batch read: lend the next up-to-`n` queued elements to `f`
    /// as a [`SliceView`] borrowed straight from the ring, then consume
    /// exactly the elements viewed. Blocks for the first element; the view
    /// may be shorter than `n` if the stream is running dry. The whole
    /// batch costs one resize-fence entry and one counter store.
    #[inline]
    pub fn pop_slice<R>(
        &mut self,
        n: usize,
        f: impl FnOnce(&SliceView<'_, T>) -> R,
    ) -> Result<R, PortClosed> {
        self.guard.pop_slice(n, f).map_err(|_| PortClosed)
    }

    /// Consume `n` elements previously examined with `peek_range`.
    #[inline]
    pub fn advance(&mut self, n: usize) -> usize {
        self.guard.advance(n)
    }

    /// Non-consuming look at the head element.
    #[inline]
    pub fn peek<R>(&mut self, f: impl FnOnce(&T, Signal) -> R) -> Option<R> {
        self.guard.peek(f)
    }

    /// Pending asynchronous signal, if any.
    #[inline]
    pub fn take_async(&mut self) -> Option<Signal> {
        self.guard.take_async()
    }

    /// Elements currently queued.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.guard.occupancy()
    }

    /// Current queue capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.guard.capacity()
    }

    /// `true` when the upstream closed and everything was consumed.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.guard.is_finished()
    }

    /// Acknowledge everything popped since the last commit: the elements
    /// can no longer be replayed. No-op on unjournaled links. Called by the
    /// scheduler after a successful `run()`; kernels with internal
    /// checkpoints may also call it directly.
    #[inline]
    pub fn commit_consumed(&mut self) -> usize {
        self.guard.commit_consumed()
    }

    /// Queue every unacknowledged popped element for redelivery (oldest
    /// first, before any new ring data). No-op on unjournaled links.
    #[inline]
    pub fn rewind_consumed(&mut self) -> usize {
        self.guard.rewind_consumed()
    }
}

/// Typed writing handle for one output port, valid for the current `run`.
///
/// As with [`InPort`], the `Producer<T>` downcast is cached when the handle
/// is taken, so pushes go straight to the typed endpoint.
pub struct OutPort<'a, T: Send + 'static> {
    guard: std::cell::RefMut<'a, Producer<T>>,
}

impl<'a, T: Send + 'static> OutPort<'a, T> {
    /// Blocking push; errs only if the downstream kernel is gone.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), PortClosed> {
        self.guard.push(value).map_err(|_| PortClosed)
    }

    /// Blocking push with a synchronous signal attached.
    #[inline]
    pub fn push_signal(&mut self, value: T, signal: Signal) -> Result<(), PortClosed> {
        self.guard
            .push_signal(value, signal)
            .map_err(|_| PortClosed)
    }

    /// Non-blocking push: `Ok(None)` on success, `Ok(Some(value))` handing
    /// the element back when the queue is full right now.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<Option<T>, PortClosed> {
        match self.guard.try_push(value) {
            Ok(()) => Ok(None),
            Err(TryPushError::Full(v)) => Ok(Some(v)),
            Err(TryPushError::Closed(_)) => Err(PortClosed),
        }
    }

    /// Blocking batch push: all of `items` are sent, under as few lock
    /// acquisitions as possible. Errs only if the downstream kernel is
    /// gone (remaining items stay in `items`).
    #[inline]
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> Result<(), PortClosed> {
        self.guard.push_batch(items).map_err(|_| PortClosed)
    }

    /// Zero-copy batch write: reserve `n` contiguous ring slots and fill
    /// them in place through the returned [`WriteSlice`] — elements are
    /// constructed directly in the queue's storage and published together
    /// when the slice drops, under one resize-fence entry for the whole
    /// batch. Blocks while the ring lacks room (growing it if `n` exceeds
    /// capacity); errs only if the downstream kernel is gone.
    #[inline]
    pub fn reserve(&mut self, n: usize) -> Result<WriteSlice<'_, T>, PortClosed> {
        self.guard.reserve(n).map_err(|_| PortClosed)
    }

    /// In-place allocation — the paper's `allocate_s`: mutate the guard,
    /// and the element is sent when it drops.
    #[inline]
    pub fn allocate(&mut self) -> Result<WriteGuard<'_, T>, PortClosed>
    where
        T: Default,
    {
        self.guard.allocate().map_err(|_| PortClosed)
    }

    /// Elements currently queued downstream.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.guard.occupancy()
    }

    /// Current queue capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.guard.capacity()
    }

    /// `true` once the consumer endpoint dropped.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.guard.is_closed()
    }

    /// Publish every element staged since the last commit. Returns the
    /// count published; `Err` if the consumer is gone (staged elements are
    /// dropped, as an unjournaled push to a closed stream would be). No-op
    /// on links without staging.
    #[inline]
    pub fn commit_produced(&mut self) -> Result<usize, PortClosed> {
        self.guard.commit_produced().map_err(|_| PortClosed)
    }

    /// Discard every staged element — the aborted transaction's outputs
    /// never become visible downstream. No-op on links without staging.
    #[inline]
    pub fn rewind_produced(&mut self) -> usize {
        self.guard.rewind_produced()
    }
}
