//! Worker-*process* supervision: respawn, segment re-attach, and
//! cross-process replay over shared-memory links.
//!
//! [`crate::supervise`] confines a panicking kernel; this module confines a
//! dying **process**. A [`ProcSupervisor`] owns a fleet of worker processes
//! (each typically this same binary re-executed with inherited memfd
//! descriptors, see `examples/xprocess_pipeline.rs`), watches each one
//! through a heartbeat eventcount in the shared segment header, and applies
//! the same `Abort`/`Skip`/`Restart` reaction surface as
//! [`SupervisorPolicy`](crate::supervise::SupervisorPolicy) when a worker
//! crashes or wedges — kill, reap, revoke its shm role claims at the
//! generation it held, drain/sweep what it left behind, respawn with capped
//! jittered backoff, and replay the journal so the replacement resumes
//! exactly once.
//!
//! ## Watching in two gears
//!
//! Each worker gets one watcher thread on the segment's
//! [`Heartbeat`](raft_buffer::shm::Heartbeat) eventcount. In the **hot
//! gear** it only reads the beat counter (no arm, no futex): as long as
//! the count moved since the last look, it sleeps a whole slice — so on a
//! hot stream the worker's beats stay syscall-free (an unarmed beat never
//! issues `futex_wake`). Only after a full slice with *no* progress does
//! it shift to the **stall gear**: arm the eventcount and park on the
//! futex, where the worker's next beat wakes it immediately. The park is
//! *bounded* (a fraction of the wedge timeout) because a child's exit does
//! not wake a futex; the bounded wake doubles as the exit check, so a
//! crashed worker is reaped within one slice and a wedged one within one
//! wedge timeout. The kill path always follows `kill` with a blocking
//! `wait`, so a worker that exits concurrently with the deadline check is
//! reaped, never leaked as a zombie.
//!
//! ## Worker heartbeat contract
//!
//! The worker beats ([`Heartbeat::beat`](raft_buffer::shm::Heartbeat::beat))
//! at least once per wedge interval **including while idle** — a worker
//! that blocks indefinitely without beating is indistinguishable from a
//! wedged one and will be killed and respawned. Granularity above that
//! floor is the worker's choice: a beat is a `fetch_add`, a `SeqCst`
//! fence, and an RMW on the shared header line, so throughput-sensitive
//! workers batch (e.g. one beat per 1 024 elements) and beat on every
//! empty poll, while latency-insensitive ones simply beat per iteration.
//!
//! ## What SIGKILL can and cannot lose
//!
//! Links registered on the [`WorkerSpec`] carry the recovery contract.
//! A [`JournaledRingLink`] / [`DescLink`] re-delivers every element the
//! dead worker consumed but did not commit (the journal is acked only by
//! the segment's commit word, which the worker bumps *after* publishing
//! each result); descriptors' payload slots survive the arena sweep while
//! journal-referenced. What SIGKILL *can* produce is a duplicate result —
//! a worker that died between publishing result `n` and committing `n+1`
//! re-emits it — which is why results carry their sequence number and the
//! parent deduplicates. It cannot lose an uncommitted element, and it
//! cannot corrupt the segment: everything the dead worker held is keyed to
//! a role generation that the revoke makes stale.

use std::io;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use raft_buffer::arena::DescriptorSender;
use raft_buffer::shm::{JournaledShmProducer, ShmItem, ShmSegment};

use crate::supervise::{KernelOutcome, SupervisorPolicy};

/// Builds the [`Command`] for spawn attempt `attempt` (0 for the first
/// spawn, then 1, 2, … per respawn). The attempt number lets a factory
/// vary the command per retry — different verbosity, a replacement binary —
/// which is what `Replace` means at process scope.
pub type CommandFactory = Box<dyn FnMut(u32) -> Command + Send>;

/// What the supervisor does when a worker process crashes or wedges —
/// the process-scope mirror of [`SupervisorPolicy`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcPolicy {
    /// Fail fast: mark the worker [`KernelOutcome::Aborted`], write its
    /// close flags so blocked peers unpark, and leave the fleet.
    Abort,
    /// Drop the worker but keep the pipeline alive: its close flags are
    /// written (EoS propagates to the peers) and it is reported as
    /// [`KernelOutcome::Skipped`].
    Skip,
    /// Kill/reap, revoke the dead worker's shm roles, recover the links,
    /// and respawn via the [`CommandFactory`] — up to `max_restarts`
    /// times, sleeping a jittered `backoff * 2^attempt` (capped at 1 s)
    /// between attempts. Exhausting the budget escalates to
    /// [`KernelOutcome::Aborted`]. Every respawn is built fresh by the
    /// factory, so this also covers `Replace` semantics.
    Restart {
        /// Maximum respawns before giving up.
        max_restarts: u32,
        /// Base delay between attempts (doubled each attempt, jittered).
        backoff: Duration,
    },
}

impl ProcPolicy {
    /// Restart up to `max_restarts` times with the env-default backoff.
    pub fn restart(max_restarts: u32) -> Self {
        ProcPolicy::Restart {
            max_restarts,
            backoff: default_backoff(),
        }
    }

    /// The `RAFT_PROC_*` environment defaults: restart up to
    /// `RAFT_PROC_MAX_RESTARTS` (3) times with a `RAFT_PROC_BACKOFF_MS`
    /// (10 ms) base backoff.
    pub fn from_env() -> Self {
        ProcPolicy::Restart {
            max_restarts: env_u64("RAFT_PROC_MAX_RESTARTS").map_or(3, |v| v as u32),
            backoff: default_backoff(),
        }
    }

    /// Backoff before respawn attempt `attempt` (0-based), doubling per
    /// attempt and saturating at 1 s — same curve as the kernel-scope
    /// policy.
    fn backoff_for(&self, attempt: u32) -> Duration {
        let ProcPolicy::Restart { backoff, .. } = self else {
            return Duration::ZERO;
        };
        backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(Duration::from_secs(1))
    }
}

impl Default for ProcPolicy {
    fn default() -> Self {
        ProcPolicy::from_env()
    }
}

impl From<&SupervisorPolicy> for ProcPolicy {
    /// Project the kernel-scope policy onto process scope. `Replace` maps
    /// to `Restart`: a respawned process is *always* built fresh by the
    /// [`CommandFactory`] (there is no in-place state to re-enter), so the
    /// two variants coincide here.
    fn from(p: &SupervisorPolicy) -> ProcPolicy {
        match p {
            SupervisorPolicy::Abort => ProcPolicy::Abort,
            SupervisorPolicy::Skip => ProcPolicy::Skip,
            SupervisorPolicy::Restart {
                max_restarts,
                backoff,
            }
            | SupervisorPolicy::Replace {
                max_restarts,
                backoff,
                ..
            } => ProcPolicy::Restart {
                max_restarts: *max_restarts,
                backoff: *backoff,
            },
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// `RAFT_PROC_WEDGE_TIMEOUT_MS` (default 30 000 ms): how long a worker may
/// go without a heartbeat before the supervisor kills it as wedged.
pub fn default_wedge_timeout() -> Duration {
    Duration::from_millis(env_u64("RAFT_PROC_WEDGE_TIMEOUT_MS").unwrap_or(30_000))
}

/// `RAFT_PROC_BACKOFF_MS` (default 10 ms): base respawn backoff.
pub fn default_backoff() -> Duration {
    Duration::from_millis(env_u64("RAFT_PROC_BACKOFF_MS").unwrap_or(10))
}

/// Jitter `d` into `[0.75 d, 1.25 d)` so a fleet of workers crashing
/// together does not respawn in lockstep. xorshift over a per-process,
/// per-attempt salt — deterministic enough to test, varied enough to
/// de-synchronize.
fn jittered(d: Duration, salt: u64) -> Duration {
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let frac = (x % 512) as f64 / 1024.0; // [0, 0.5)
    d.mul_f64(0.75 + frac)
}

/// One shared-memory attachment the worker holds, with the producer-side
/// recovery hooks the supervisor drives around a respawn.
///
/// Reap sequence per dead worker (after kill + blocking reap):
/// 1. every segment's worker-side close flag is written and both wakers
///    are notified in full (the SIGKILL'd worker never ran its drop glue —
///    this unparks blocked peers promptly under *every* policy);
/// 2. *(restart only)* each role the worker held is revoked at the
///    generation currently in the word ([`ShmSegment::revoke_role`] —
///    a mismatch means the role is not the dead worker's to take and the
///    worker is aborted instead);
/// 3. *(restart only)* [`ProcLink::prepare_respawn`] — drain residue, ack
///    committed journal entries, sweep orphaned arena slots;
/// 4. *(restart only)* close flags are cleared
///    ([`ShmSegment::reopen_role`]), the replacement is spawned, and
///    [`ProcLink::replay`] re-delivers the unacknowledged suffix.
pub trait ProcLink: Send {
    /// The segments this link spans, with the role the **worker** holds on
    /// each (`true` = producer side).
    fn segments(&self) -> Vec<(Arc<ShmSegment>, bool)>;

    /// Recover producer-side state after the dead worker is reaped and its
    /// roles revoked; called before the respawn. Default: nothing to do.
    fn prepare_respawn(&mut self) {}

    /// Re-deliver journaled state to the respawned worker. Default:
    /// nothing to do.
    fn replay(&mut self) {}
}

/// A journaled element ring whose consumer side lives in the worker
/// (producer side shared with the feeding kernel via the mutex).
pub struct JournaledRingLink<T: ShmItem> {
    producer: Arc<Mutex<JournaledShmProducer<T>>>,
}

impl<T: ShmItem> JournaledRingLink<T> {
    /// Supervise the worker-consumed ring behind `producer`.
    pub fn new(producer: Arc<Mutex<JournaledShmProducer<T>>>) -> Self {
        JournaledRingLink { producer }
    }
}

impl<T: ShmItem> ProcLink for JournaledRingLink<T> {
    fn segments(&self) -> Vec<(Arc<ShmSegment>, bool)> {
        vec![(
            self.producer.lock().expect("link lock").segment_shared(),
            false,
        )]
    }

    fn prepare_respawn(&mut self) {
        self.producer.lock().expect("link lock").begin_recovery();
    }

    fn replay(&mut self) {
        self.producer.lock().expect("link lock").replay_unacked();
    }
}

/// A descriptor ring + payload arena pair whose consumer sides live in the
/// worker (see [`DescriptorSender`]).
pub struct DescLink {
    sender: Arc<Mutex<DescriptorSender>>,
}

impl DescLink {
    /// Supervise the worker-consumed descriptor link behind `sender`.
    pub fn new(sender: Arc<Mutex<DescriptorSender>>) -> Self {
        DescLink { sender }
    }
}

impl ProcLink for DescLink {
    fn segments(&self) -> Vec<(Arc<ShmSegment>, bool)> {
        let s = self.sender.lock().expect("link lock");
        vec![
            (s.ring_segment_shared(), false),
            (s.arena_segment_shared(), false),
        ]
    }

    fn prepare_respawn(&mut self) {
        self.sender.lock().expect("link lock").begin_recovery();
    }

    fn replay(&mut self) {
        self.sender.lock().expect("link lock").replay();
    }
}

/// A bare segment with no journal — e.g. a result ring the worker
/// *produces* into. Recovery is role bookkeeping only; anything the dead
/// worker published but the parent had not popped is still in the ring
/// (drained normally), and anything unpublished never became visible.
pub struct SegmentLink {
    seg: Arc<ShmSegment>,
    worker_is_producer: bool,
}

impl SegmentLink {
    /// Supervise `seg`, on which the worker holds the producer
    /// (`worker_is_producer = true`) or consumer role.
    pub fn new(seg: Arc<ShmSegment>, worker_is_producer: bool) -> Self {
        SegmentLink {
            seg,
            worker_is_producer,
        }
    }
}

impl ProcLink for SegmentLink {
    fn segments(&self) -> Vec<(Arc<ShmSegment>, bool)> {
        vec![(self.seg.clone(), self.worker_is_producer)]
    }
}

/// Everything the supervisor needs to run one worker: how to spawn it,
/// which shm links it holds, where its heartbeat lives, and how to react
/// when it dies.
pub struct WorkerSpec {
    name: String,
    factory: CommandFactory,
    links: Vec<Box<dyn ProcLink>>,
    heartbeat: Option<Arc<ShmSegment>>,
    policy: ProcPolicy,
    wedge_timeout: Duration,
}

impl WorkerSpec {
    /// A worker called `name`, spawned by `factory` (which receives the
    /// attempt number: 0 first, then 1, 2, … per respawn). Policy and
    /// wedge timeout default from the `RAFT_PROC_*` environment.
    pub fn new(
        name: impl Into<String>,
        factory: impl FnMut(u32) -> Command + Send + 'static,
    ) -> Self {
        WorkerSpec {
            name: name.into(),
            factory: Box::new(factory),
            links: Vec::new(),
            heartbeat: None,
            policy: ProcPolicy::default(),
            wedge_timeout: default_wedge_timeout(),
        }
    }

    /// React to crashes/wedges with `policy` (accepts a
    /// [`SupervisorPolicy`] reference via `From`).
    pub fn policy(mut self, policy: impl Into<ProcPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// Kill the worker as wedged after `timeout` without a heartbeat.
    pub fn wedge_timeout(mut self, timeout: Duration) -> Self {
        self.wedge_timeout = timeout;
        self
    }

    /// Register a link for reap/recovery handling.
    pub fn link(mut self, link: impl ProcLink + 'static) -> Self {
        self.links.push(Box::new(link));
        self
    }

    /// Watch the heartbeat words of `seg` (usually the worker's input ring
    /// segment). Without one, wedge detection is disabled and the watcher
    /// falls back to bounded sleeps between exit checks.
    pub fn heartbeat_on(mut self, seg: Arc<ShmSegment>) -> Self {
        self.heartbeat = Some(seg);
        self
    }
}

/// Per-worker outcome, reported through
/// [`ExeReport::procs`](crate::runtime::ExeReport::procs).
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// Worker name from its [`WorkerSpec`].
    pub name: String,
    /// How supervision ended, on the same scale as kernel supervision.
    pub outcome: KernelOutcome,
    /// Abnormal exits observed (including wedge kills).
    pub crashes: u32,
    /// Heartbeat stalls that led to a kill.
    pub wedges: u32,
    /// Successful respawns.
    pub respawns: u32,
    /// Last observed exit code (`None`: killed by signal).
    pub last_status: Option<i32>,
}

struct Shared {
    reports: Mutex<Vec<Option<ProcReport>>>,
    done: Condvar,
    halt: AtomicBool,
    /// Raised when any worker reaches a terminal outcome (its watcher
    /// ended) — see [`ProcSupervisor::terminal_flag`].
    terminal: Arc<AtomicBool>,
}

struct WorkerHandle {
    name: String,
    child: Arc<Mutex<Option<Child>>>,
    thread: Option<JoinHandle<()>>,
}

/// Supervises a fleet of worker processes over shared-memory links. See
/// the module docs for the protocol; `examples/xprocess_pipeline.rs` for
/// the end-to-end shape.
#[derive(Default)]
pub struct ProcSupervisor {
    shared: Arc<Shared>,
    workers: Vec<WorkerHandle>,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            reports: Mutex::new(Vec::new()),
            done: Condvar::new(),
            halt: AtomicBool::new(false),
            terminal: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl ProcSupervisor {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawn `spec`'s first attempt and start its watcher thread.
    pub fn spawn(&mut self, mut spec: WorkerSpec) -> io::Result<()> {
        let child = (spec.factory)(0).spawn()?;
        let slot = {
            let mut reports = self.shared.reports.lock().expect("reports lock");
            reports.push(None);
            reports.len() - 1
        };
        let child = Arc::new(Mutex::new(Some(child)));
        let name = spec.name.clone();
        let shared = self.shared.clone();
        let child_for_thread = child.clone();
        let thread = std::thread::Builder::new()
            .name(format!("raft-proc:{name}"))
            .spawn(move || watch(spec, slot, child_for_thread, shared))
            .expect("spawn watcher thread");
        self.workers.push(WorkerHandle {
            name,
            child,
            thread: Some(thread),
        });
        Ok(())
    }

    /// Number of workers spawned into the fleet.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` when no workers were spawned.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// A flag raised when **any** worker reaches a terminal outcome —
    /// completed, skipped, or aborted — i.e. that worker will never be
    /// respawned again. Kernels feeding the fleet poll it to stop
    /// retrying a `Busy` send that can no longer succeed (a `Busy` during
    /// a *restart* window clears on its own; one after a terminal outcome
    /// never does). In a single-worker fleet this is exactly the "give
    /// up" signal; in larger fleets it is conservative.
    pub fn terminal_flag(&self) -> Arc<AtomicBool> {
        self.shared.terminal.clone()
    }

    /// Wait up to `timeout` for every worker to reach an outcome, then
    /// return the per-worker reports in spawn order. Workers still running
    /// at the deadline are killed, reaped, and reported as
    /// [`KernelOutcome::Aborted`].
    pub fn join(mut self, timeout: Duration) -> Vec<ProcReport> {
        let deadline = Instant::now() + timeout;
        {
            let mut reports = self.shared.reports.lock().expect("reports lock");
            while reports.iter().any(Option::is_none) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .done
                    .wait_timeout(reports, deadline - now)
                    .expect("join wait");
                reports = guard;
            }
        }
        self.shutdown();
        let reports = std::mem::take(&mut *self.shared.reports.lock().expect("reports lock"));
        reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| ProcReport {
                    name: self
                        .workers
                        .get(i)
                        .map(|w| w.name.clone())
                        .unwrap_or_default(),
                    outcome: KernelOutcome::Aborted,
                    crashes: 0,
                    wedges: 0,
                    respawns: 0,
                    last_status: None,
                })
            })
            .collect()
    }

    /// Kill every worker now and wait for the watchers to finish.
    pub fn abort(&mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.halt.store(true, Relaxed);
        for w in &self.workers {
            kill_and_reap(&w.child);
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for ProcSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Kill (if still running) and *blocking-wait* the child. The wait after
/// the kill is unconditional, which closes the classic zombie race: a
/// worker that exits between the deadline check and the kill is reaped
/// here, not leaked until parent exit.
fn kill_and_reap(child: &Arc<Mutex<Option<Child>>>) -> Option<std::process::ExitStatus> {
    let mut guard = child.lock().expect("child lock");
    let mut c = guard.take()?;
    let _ = c.kill();
    c.wait().ok()
}

/// Write the dead worker's close flags and notify both futex wakers on
/// every segment it touched. A SIGKILL'd worker never runs its drop glue,
/// so without this a peer blocked on a full ring (or an empty result ring)
/// stays parked until its bounded-park backstop; with it, the peer unparks
/// promptly and observes EoS / closure.
fn write_close_flags(segments: &[(Arc<ShmSegment>, bool)]) {
    for (seg, worker_is_producer) in segments {
        if *worker_is_producer {
            seg.producer_closed()
                .store(1, std::sync::atomic::Ordering::Release);
        } else {
            seg.consumer_closed()
                .store(1, std::sync::atomic::Ordering::Release);
        }
        seg.producer_waker().notify();
        seg.consumer_waker().notify();
    }
}

/// Revoke every role the dead worker held, at the generation currently in
/// each word. Safe because the worker is dead and reaped: nothing else can
/// move a worker-side role word concurrently. An even word (the worker
/// died before claiming) needs no revoke. Returns `false` if any revoke is
/// refused — the role is not ours to take, so the worker must be aborted
/// rather than respawned over a live claim.
fn revoke_roles(segments: &[(Arc<ShmSegment>, bool)]) -> bool {
    for (seg, worker_is_producer) in segments {
        let gen = seg.role_generation(*worker_is_producer);
        if gen & 1 == 1 && seg.revoke_role(*worker_is_producer, gen).is_err() {
            return false;
        }
    }
    true
}

fn watch(spec: WorkerSpec, slot: usize, child: Arc<Mutex<Option<Child>>>, shared: Arc<Shared>) {
    let WorkerSpec {
        name,
        mut factory,
        mut links,
        heartbeat,
        policy,
        wedge_timeout,
    } = spec;
    let segments: Vec<(Arc<ShmSegment>, bool)> = links.iter().flat_map(|l| l.segments()).collect();
    // Bounded park slice: short enough to reap an exited child promptly,
    // long enough that an idle watcher costs a handful of wakes per second.
    let slice = (wedge_timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(200));

    let mut crashes = 0u32;
    let mut wedges = 0u32;
    let mut respawns = 0u32;
    let mut last_status: Option<i32> = None;
    let mut last_count = heartbeat.as_ref().map_or(0, |s| s.heartbeat().count());
    let mut last_progress = Instant::now();

    let outcome = 'run: loop {
        // Exit check first: a crash is actionable immediately.
        let exited = {
            let mut guard = child.lock().expect("child lock");
            match guard.as_mut() {
                Some(c) => match c.try_wait() {
                    Ok(Some(status)) => {
                        guard.take();
                        Some(status)
                    }
                    Ok(None) => None,
                    Err(_) => {
                        guard.take();
                        None
                    }
                },
                // Taken by abort()/Drop: the fleet is shutting down.
                None => break 'run KernelOutcome::Aborted,
            }
        };
        if let Some(status) = exited {
            last_status = status.code();
            if status.success() {
                break 'run if respawns > 0 {
                    KernelOutcome::Restarted(respawns)
                } else {
                    KernelOutcome::Completed
                };
            }
            crashes += 1;
            match crash_reaction(
                &policy,
                respawns,
                &segments,
                &mut links,
                &mut factory,
                &child,
                &shared,
            ) {
                Reaction::Respawned => {
                    respawns += 1;
                    last_progress = Instant::now();
                    last_count = heartbeat.as_ref().map_or(0, |s| s.heartbeat().count());
                    continue 'run;
                }
                Reaction::Ended(outcome) => break 'run outcome,
            }
        }
        if shared.halt.load(Relaxed) {
            kill_and_reap(&child);
            break 'run KernelOutcome::Aborted;
        }
        // Heartbeat / wedge detection, in two gears. Hot gear: an
        // *unarmed* count read once per slice — a streaming worker's
        // beats stay syscall-free (beat only futex-wakes when armed) and
        // this thread sleeps through the traffic instead of waking per
        // element. Stall gear: only when a whole slice passed with no
        // progress does the watcher arm and futex-park, so a recovering
        // worker's very next beat wakes it immediately.
        match &heartbeat {
            Some(seg) => {
                let hb = seg.heartbeat();
                let count = hb.count();
                if count != last_count {
                    last_count = count;
                    last_progress = Instant::now();
                    std::thread::sleep(slice);
                    continue 'run;
                }
                let epoch = hb.arm();
                if epoch != last_count {
                    hb.disarm();
                    last_count = epoch;
                    last_progress = Instant::now();
                    continue 'run;
                }
                if last_progress.elapsed() >= wedge_timeout {
                    hb.disarm();
                    wedges += 1;
                    crashes += 1;
                    if let Some(status) = kill_and_reap(&child) {
                        last_status = status.code();
                    }
                    match crash_reaction(
                        &policy,
                        respawns,
                        &segments,
                        &mut links,
                        &mut factory,
                        &child,
                        &shared,
                    ) {
                        Reaction::Respawned => {
                            respawns += 1;
                            last_progress = Instant::now();
                            last_count = seg.heartbeat().count();
                            continue 'run;
                        }
                        Reaction::Ended(outcome) => break 'run outcome,
                    }
                }
                hb.wait(epoch, slice);
                hb.disarm();
            }
            None => std::thread::sleep(slice),
        }
    };

    shared.terminal.store(true, Relaxed);
    let mut reports = shared.reports.lock().expect("reports lock");
    reports[slot] = Some(ProcReport {
        name,
        outcome,
        crashes,
        wedges,
        respawns,
        last_status,
    });
    shared.done.notify_all();
}

enum Reaction {
    Respawned,
    Ended(KernelOutcome),
}

/// Apply `policy` to a crash/wedge that has already been reaped.
fn crash_reaction(
    policy: &ProcPolicy,
    attempt: u32,
    segments: &[(Arc<ShmSegment>, bool)],
    links: &mut [Box<dyn ProcLink>],
    factory: &mut CommandFactory,
    child: &Arc<Mutex<Option<Child>>>,
    shared: &Arc<Shared>,
) -> Reaction {
    // Under every policy: unblock the peers the dead worker was wired to.
    write_close_flags(segments);
    let max_restarts = match policy {
        ProcPolicy::Abort => return Reaction::Ended(KernelOutcome::Aborted),
        ProcPolicy::Skip => return Reaction::Ended(KernelOutcome::Skipped),
        ProcPolicy::Restart { max_restarts, .. } => *max_restarts,
    };
    if attempt >= max_restarts {
        return Reaction::Ended(KernelOutcome::Aborted);
    }
    // Reclaim the dead worker's roles; refusal means the role moved under
    // us (not ours to take) — treat as fatal rather than fight over it.
    if !revoke_roles(segments) {
        return Reaction::Ended(KernelOutcome::Aborted);
    }
    for link in links.iter_mut() {
        link.prepare_respawn();
    }
    let salt = u64::from(std::process::id()) ^ (u64::from(attempt) << 32);
    std::thread::sleep(jittered(policy.backoff_for(attempt), salt));
    if shared.halt.load(Relaxed) {
        return Reaction::Ended(KernelOutcome::Aborted);
    }
    for (seg, worker_is_producer) in segments {
        seg.reopen_role(*worker_is_producer);
    }
    match factory(attempt + 1).spawn() {
        Ok(c) => {
            *child.lock().expect("child lock") = Some(c);
        }
        Err(_) => return Reaction::Ended(KernelOutcome::Aborted),
    }
    for link in links.iter_mut() {
        link.replay();
    }
    Reaction::Respawned
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn policy_projection_from_kernel_scope() {
        assert_eq!(
            ProcPolicy::from(&SupervisorPolicy::Abort),
            ProcPolicy::Abort
        );
        assert_eq!(ProcPolicy::from(&SupervisorPolicy::Skip), ProcPolicy::Skip);
        let r = ProcPolicy::from(&SupervisorPolicy::restart_with_backoff(
            4,
            Duration::from_millis(7),
        ));
        assert_eq!(
            r,
            ProcPolicy::Restart {
                max_restarts: 4,
                backoff: Duration::from_millis(7)
            }
        );
        // Replace coincides with Restart at process scope.
        let rep = ProcPolicy::from(&SupervisorPolicy::replace(2, || unreachable!()));
        assert!(matches!(
            rep,
            ProcPolicy::Restart {
                max_restarts: 2,
                ..
            }
        ));
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_in_band() {
        let p = ProcPolicy::Restart {
            max_restarts: 8,
            backoff: Duration::from_millis(2),
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(16));
        assert_eq!(p.backoff_for(30), Duration::from_secs(1));
        for salt in 0..64u64 {
            let j = jittered(Duration::from_millis(100), salt);
            assert!(j >= Duration::from_millis(75) && j < Duration::from_millis(125));
        }
    }

    #[test]
    fn clean_exit_reports_completed() {
        let mut sup = ProcSupervisor::new();
        sup.spawn(WorkerSpec::new("ok", |_| sh("exit 0")).policy(ProcPolicy::Abort))
            .unwrap();
        let reports = sup.join(Duration::from_secs(10));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, KernelOutcome::Completed);
        assert_eq!(reports[0].crashes, 0);
        assert_eq!(reports[0].last_status, Some(0));
    }

    #[test]
    fn restart_budget_exhaustion_escalates_to_abort() {
        let mut sup = ProcSupervisor::new();
        sup.spawn(
            WorkerSpec::new("crasher", |_| sh("exit 3"))
                .policy(ProcPolicy::Restart {
                    max_restarts: 2,
                    backoff: Duration::from_millis(1),
                })
                .wedge_timeout(Duration::from_millis(100)),
        )
        .unwrap();
        let reports = sup.join(Duration::from_secs(20));
        assert_eq!(reports[0].outcome, KernelOutcome::Aborted);
        // First run + 2 respawns all crashed.
        assert_eq!(reports[0].crashes, 3);
        assert_eq!(reports[0].respawns, 2);
        assert_eq!(reports[0].last_status, Some(3));
    }

    #[test]
    fn skip_policy_reports_skipped() {
        let mut sup = ProcSupervisor::new();
        sup.spawn(
            WorkerSpec::new("skippee", |_| sh("exit 1"))
                .policy(ProcPolicy::Skip)
                .wedge_timeout(Duration::from_millis(100)),
        )
        .unwrap();
        let reports = sup.join(Duration::from_secs(10));
        assert_eq!(reports[0].outcome, KernelOutcome::Skipped);
        assert_eq!(reports[0].crashes, 1);
    }

    #[test]
    fn recovery_succeeds_on_a_later_attempt() {
        // Attempt 0 crashes; attempt 1 exits clean → Restarted(1).
        let mut sup = ProcSupervisor::new();
        sup.spawn(
            WorkerSpec::new("flaky", |attempt| {
                if attempt == 0 {
                    sh("exit 9")
                } else {
                    sh("exit 0")
                }
            })
            .policy(ProcPolicy::Restart {
                max_restarts: 3,
                backoff: Duration::from_millis(1),
            })
            .wedge_timeout(Duration::from_millis(100)),
        )
        .unwrap();
        let reports = sup.join(Duration::from_secs(20));
        assert_eq!(reports[0].outcome, KernelOutcome::Restarted(1));
        assert_eq!(reports[0].crashes, 1);
        assert_eq!(reports[0].respawns, 1);
    }

    #[test]
    fn wedge_kill_applies_policy() {
        // A worker that sleeps forever with no heartbeat segment would
        // never be killed; with one (that nobody beats), the wedge timer
        // fires and the policy applies.
        let seg = Arc::new(raft_buffer::shm::ShmSegment::create_heap(
            raft_buffer::shm::SEG_KIND_RING,
            8,
            8,
            8,
            64,
        ));
        let mut sup = ProcSupervisor::new();
        sup.spawn(
            WorkerSpec::new("wedged", |_| sh("sleep 30"))
                .policy(ProcPolicy::Skip)
                .heartbeat_on(seg)
                .wedge_timeout(Duration::from_millis(200)),
        )
        .unwrap();
        let t0 = Instant::now();
        let reports = sup.join(Duration::from_secs(20));
        assert_eq!(reports[0].outcome, KernelOutcome::Skipped);
        assert_eq!(reports[0].wedges, 1);
        assert!(reports[0].last_status.is_none(), "killed by signal");
        assert!(
            t0.elapsed() < Duration::from_secs(15),
            "did not wait out the sleep"
        );
    }
}
