//! Automatic parallelization: split/reduce adapters and kernel replication.
//!
//! §4.1 of the paper: "Automatic parallelization of candidate kernels is
//! accomplished by analyzing the graph for segments that can be replicated
//! preserving the application's semantics ... There are default split and
//! reduce adapters that are inserted where needed. Split data distribution
//! can be done in many ways, and the run-time attempts to select the best
//! amongst round-robin and least-utilized strategies."
//!
//! The planner here rewrites the erased topology at `exe()` time:
//!
//! ```text
//! up ──> k ──> down        becomes        up ──> split ──> k₀ ──> reduce ──> down
//!                                                    └───> k₁ ──┘
//! ```
//!
//! Eligibility: the kernel has exactly one input and one output, both its
//! streams were declared out-of-order safe (`link_unordered`), and it can
//! produce replicas (`Kernel::clone_replica`). The split's **active width**
//! is an atomic the runtime's optimizer may raise or lower while the
//! application runs (the paper's dynamic bottleneck elimination).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::kernel::{KStatus, Kernel, PortSpec};
use crate::port::Context;

/// Distribution strategy of a split adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Cycle through replicas in order.
    #[default]
    RoundRobin,
    /// Send each item to the replica with the emptiest input queue
    /// ("queue utilization used to direct data flow to less utilized
    /// servers", §4.1).
    LeastUtilized,
}

/// Shared control of a split adapter's active replica count, held by the
/// runtime optimizer.
#[derive(Debug, Clone)]
pub struct WidthControl {
    active: Arc<AtomicU32>,
    max: u32,
}

impl WidthControl {
    /// Current active width.
    pub fn get(&self) -> u32 {
        self.active.load(Ordering::Relaxed)
    }

    /// Set active width (clamped to `1..=max`).
    pub fn set(&self, w: u32) {
        self.active.store(w.clamp(1, self.max), Ordering::Relaxed);
    }

    /// Widen by one replica; returns the new width.
    pub fn widen(&self) -> u32 {
        let cur = self.get();
        let next = (cur + 1).min(self.max);
        self.active.store(next, Ordering::Relaxed);
        next
    }

    /// Narrow by one replica; returns the new width.
    pub fn narrow(&self) -> u32 {
        let cur = self.get();
        let next = cur.saturating_sub(1).max(1);
        self.active.store(next, Ordering::Relaxed);
        next
    }

    /// Maximum width this split was built with.
    pub fn max(&self) -> u32 {
        self.max
    }
}

/// Default split adapter: one input `"in"`, outputs `"0"`, `"1"`, ….
pub struct Split<T: Send + Clone + 'static> {
    width: usize,
    strategy: SplitStrategy,
    active: Arc<AtomicU32>,
    next_rr: usize,
    scratch: Vec<T>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + Clone + 'static> Split<T> {
    /// Build a split of `width` ways.
    pub fn new(width: usize, strategy: SplitStrategy) -> Self {
        let width = width.max(1);
        Split {
            width,
            strategy,
            active: Arc::new(AtomicU32::new(width as u32)),
            next_rr: 0,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Control handle for dynamic width adjustment.
    pub fn width_control(&self) -> WidthControl {
        WidthControl {
            active: self.active.clone(),
            max: self.width as u32,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Split<T> {
    fn ports(&self) -> PortSpec {
        let mut spec = PortSpec::new().input::<T>("in");
        for i in 0..self.width {
            spec = spec.output::<T>(i.to_string());
        }
        spec
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        let active = (self.active.load(Ordering::Relaxed) as usize).clamp(1, self.width);
        match self.strategy {
            SplitStrategy::RoundRobin => {
                // Pop one full round per quantum under a single queue
                // synchronization, then deal the items out in the same
                // per-item order as before.
                if input.pop_range(active, &mut self.scratch).is_err() {
                    return KStatus::Stop;
                }
                drop(input);
                for item in self.scratch.drain(..) {
                    let target = self.next_rr % active;
                    self.next_rr = (self.next_rr + 1) % active;
                    let mut out = ctx.output_at::<T>(target);
                    if out.push(item).is_err() {
                        // Replica gone (shutdown path): stop distributing.
                        return KStatus::Stop;
                    }
                }
            }
            SplitStrategy::LeastUtilized => {
                let item = match input.pop() {
                    Ok(v) => v,
                    Err(_) => return KStatus::Stop,
                };
                drop(input);
                // Pick the replica with the emptiest input queue; if it is
                // full by the time we push, *re-select* rather than block —
                // blocking on the first choice would chain the split to a
                // stalled (slow) replica, defeating the strategy. Ties are
                // broken from a rotating offset so a saturated pipeline
                // does not convoy on replica 0.
                let mut item = Some(item);
                let backoff = crossbeam::utils::Backoff::new();
                while let Some(v) = item.take() {
                    let start = self.next_rr % active;
                    self.next_rr = (self.next_rr + 1) % active.max(1);
                    let mut best = start;
                    let mut best_occ = usize::MAX;
                    for i in 0..active {
                        let idx = (start + i) % active;
                        let occ = ctx.output_at::<T>(idx).occupancy();
                        if occ < best_occ {
                            best_occ = occ;
                            best = idx;
                        }
                    }
                    let mut out = ctx.output_at::<T>(best);
                    match out.try_push(v) {
                        Ok(None) => break,
                        Ok(Some(v)) => {
                            // All candidates full right now: wait a little
                            // and re-evaluate (a replica will drain first).
                            item = Some(v);
                            drop(out);
                            backoff.snooze();
                        }
                        Err(_) => return KStatus::Stop, // replica gone
                    }
                }
            }
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        format!("split[{}]", self.width)
    }
}

/// Default reduce adapter: inputs `"0"`, `"1"`, …, one output `"out"`.
/// Merges in arrival order (replication only happens on out-of-order-safe
/// streams, so no sequencing is required).
pub struct Reduce<T: Send + Clone + 'static> {
    width: usize,
    next: usize,
    scratch: Vec<T>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Items a [`Reduce`] forwards per quantum once an input turns out to have
/// data queued (bounds latency for the other inputs).
const REDUCE_BATCH: usize = 256;

impl<T: Send + Clone + 'static> Reduce<T> {
    /// Build a reduce of `width` ways.
    pub fn new(width: usize) -> Self {
        Reduce {
            width: width.max(1),
            next: 0,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Clone + 'static> Kernel for Reduce<T> {
    fn ports(&self) -> PortSpec {
        let mut spec = PortSpec::new().output::<T>("out");
        for i in 0..self.width {
            spec = spec.input::<T>(i.to_string());
        }
        spec
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        // Fair, non-blocking sweep over the inputs; block only when every
        // input is empty and at least one is still open.
        let mut all_done = true;
        for probe in 0..self.width {
            let idx = (self.next + probe) % self.width;
            let mut input = ctx.input_at::<T>(idx);
            match input.try_pop() {
                Ok(Some(v)) => {
                    // This input has data: drain what is already queued (up
                    // to one batch) and forward it in a single bulk push.
                    self.scratch.push(v);
                    let more = input.occupancy().min(REDUCE_BATCH - 1);
                    if more > 0 {
                        // Cannot fail: occupancy > 0 means the first pop
                        // inside pop_range finds data.
                        let _ = input.pop_range(more, &mut self.scratch);
                    }
                    drop(input);
                    self.next = (idx + 1) % self.width;
                    let mut out = ctx.output::<T>("out");
                    if out.push_batch(&mut self.scratch).is_err() {
                        return KStatus::Stop;
                    }
                    return KStatus::Proceed;
                }
                Ok(None) => {
                    all_done = false; // open but momentarily empty
                }
                Err(_) => {}
            }
        }
        if all_done {
            return KStatus::Stop;
        }
        // Nothing ready: yield briefly rather than spinning hot.
        std::thread::yield_now();
        KStatus::Proceed
    }

    fn name(&self) -> String {
        format!("reduce[{}]", self.width)
    }
}

/// Monomorphized factories so the type-erased planner can construct
/// adapters for a link of element type `T`.
pub struct AdapterFactories {
    /// Build `(split kernel, its width control)`.
    pub split: fn(usize, SplitStrategy) -> (Box<dyn Kernel>, WidthControl),
    /// Build a reduce kernel.
    pub reduce: fn(usize) -> Box<dyn Kernel>,
}

/// Factories for element type `T`.
pub fn adapter_factories<T: Send + Clone + 'static>() -> AdapterFactories {
    AdapterFactories {
        split: |w, s| {
            let split = Split::<T>::new(w, s);
            let ctl = split.width_control();
            (Box::new(split), ctl)
        },
        reduce: |w| Box::new(Reduce::<T>::new(w)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ports_match_width() {
        let s = Split::<u32>::new(3, SplitStrategy::RoundRobin);
        let spec = s.ports();
        assert_eq!(spec.inputs.len(), 1);
        assert_eq!(spec.outputs.len(), 3);
        assert_eq!(spec.outputs[2].name, "2");
    }

    #[test]
    fn reduce_ports_match_width() {
        let r = Reduce::<u32>::new(4);
        let spec = r.ports();
        assert_eq!(spec.inputs.len(), 4);
        assert_eq!(spec.outputs.len(), 1);
    }

    #[test]
    fn width_control_clamps() {
        let s = Split::<u32>::new(4, SplitStrategy::RoundRobin);
        let ctl = s.width_control();
        assert_eq!(ctl.get(), 4);
        ctl.set(0);
        assert_eq!(ctl.get(), 1);
        ctl.set(99);
        assert_eq!(ctl.get(), 4);
        assert_eq!(ctl.narrow(), 3);
        assert_eq!(ctl.widen(), 4);
        assert_eq!(ctl.widen(), 4); // saturates at max
    }

    #[test]
    fn factories_build_consistent_adapters() {
        let f = adapter_factories::<String>();
        let (split, ctl) = (f.split)(2, SplitStrategy::LeastUtilized);
        assert_eq!(split.ports().outputs.len(), 2);
        assert_eq!(ctl.max(), 2);
        let reduce = (f.reduce)(2);
        assert_eq!(reduce.ports().inputs.len(), 2);
    }
}
