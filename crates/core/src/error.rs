//! Error types for topology construction and execution.

use std::fmt;

/// Errors raised while assembling a streaming map (`link`-time errors —
/// RaftLib performs connectivity and type checking before execution, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The named kernel does not exist in the map.
    NoSuchKernel(String),
    /// The kernel exists but has no port with this name.
    NoSuchPort {
        /// Kernel display name.
        kernel: String,
        /// Requested port name.
        port: String,
        /// Ports that do exist, for the error message.
        available: Vec<String>,
    },
    /// Source output type differs from destination input type.
    TypeMismatch {
        /// Source kernel and port.
        src: String,
        /// Destination kernel and port.
        dst: String,
        /// Type name declared on the output.
        src_type: &'static str,
        /// Type name declared on the input.
        dst_type: &'static str,
    },
    /// The port is already connected to another stream.
    AlreadyLinked {
        /// Kernel display name.
        kernel: String,
        /// Port name.
        port: String,
    },
    /// Linking a kernel to itself is not supported.
    SelfLoop(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::NoSuchKernel(k) => write!(f, "no kernel named {k:?} in map"),
            LinkError::NoSuchPort {
                kernel,
                port,
                available,
            } => write!(
                f,
                "kernel {kernel:?} has no port {port:?} (available: {available:?})"
            ),
            LinkError::TypeMismatch {
                src,
                dst,
                src_type,
                dst_type,
            } => write!(
                f,
                "type mismatch linking {src} -> {dst}: {src_type} vs {dst_type}"
            ),
            LinkError::AlreadyLinked { kernel, port } => {
                write!(f, "port {port:?} of kernel {kernel:?} is already linked")
            }
            LinkError::SelfLoop(k) => write!(f, "kernel {k:?} cannot link to itself"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Errors raised by `exe()` — graph validation and execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExeError {
    /// The static checker found blocking problems (the paper: the graph is
    /// "checked to ensure it is fully connected" before running; see
    /// [`crate::check`] for the full lint registry). Carries every
    /// diagnostic from the run — warnings included — so callers can render
    /// the whole picture; at least one entry has
    /// [`Severity::Error`](crate::diagnostics::Severity::Error).
    CheckFailed {
        /// All findings from [`crate::map::RaftMap::check`].
        diagnostics: Vec<crate::diagnostics::Diagnostic>,
    },
    /// The map contains no kernels.
    EmptyMap,
    /// One or more kernels with the default
    /// [`Abort`](crate::supervise::SupervisorPolicy::Abort) policy panicked
    /// during execution. Panics absorbed by `Skip`/`Restart`/`Replace`
    /// policies do *not* raise this error; they surface through the
    /// per-kernel outcomes in [`ExeReport`](crate::runtime::ExeReport).
    KernelPanicked {
        /// Display names of the kernels that panicked, sorted — concurrent
        /// panics are reported in a deterministic order.
        kernels: Vec<String>,
    },
}

impl fmt::Display for ExeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExeError::CheckFailed { diagnostics } => {
                let errors = diagnostics.iter().filter(|d| d.is_error()).count();
                write!(f, "graph check failed with {errors} error(s):")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            ExeError::EmptyMap => write!(f, "map contains no kernels"),
            ExeError::KernelPanicked { kernels } => {
                write!(f, "kernel(s) panicked during execution: {kernels:?}")
            }
        }
    }
}

impl std::error::Error for ExeError {}

/// A stream endpoint reported that the other side is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortClosed;

impl fmt::Display for PortClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream closed")
    }
}

impl std::error::Error for PortClosed {}
