//! The compute-kernel abstraction.
//!
//! A RaftLib application is a set of sequential compute kernels joined by
//! streams (§1). A kernel extends `raft::kernel` in C++; here it implements
//! [`Kernel`]: declare ports in [`Kernel::ports`], do the work in
//! [`Kernel::run`], which the scheduler calls repeatedly until it returns
//! [`KStatus::Stop`].
//!
//! Port declarations are *typed*: [`PortSpec::input`]/[`PortSpec::output`]
//! capture the element type's `TypeId` plus monomorphized factory functions
//! so the (type-erased) runtime can later allocate the right FIFO and the
//! right split/reduce adapters for each link — the reproduction of C++
//! RaftLib's template machinery.

use std::any::{Any, TypeId};

use raft_buffer::fifo::Monitorable;
use raft_buffer::{fifo_with, FifoConfig};
use std::sync::Arc;

use crate::parallel::{adapter_factories, AdapterFactories};
use crate::port::{AnyEndpoint, Context};

/// A type-erased owned batch of stream elements: a `Vec<T>` behind
/// `dyn Any`, handed from stage to stage inside a fused chain with no FIFO
/// protocol in between (see [`crate::analysis::fusion`]).
pub type AnyBatch = Box<dyn Any + Send>;

/// Monomorphized batched-input eraser captured on a [`PortDef`]: pop up to
/// `n` elements from input port `idx` into one owned batch — a single
/// blocking wait and a single queue-protocol entry for the whole batch.
/// Returns the erased batch and its length; `None` once the stream is
/// closed and drained.
pub type BatchPopFn = fn(&Context, usize, usize) -> Option<(AnyBatch, usize)>;

/// Monomorphized batched-output eraser captured on a [`PortDef`]: publish
/// an owned batch through output port `idx` via [`crate::port::OutPort::reserve`] —
/// elements are moved straight into reserved ring slots and released under
/// one fence entry per reservation. Returns the element count, or `None`
/// if the consumer is gone.
pub type BatchPushFn = fn(&Context, usize, AnyBatch) -> Option<usize>;

fn batch_pop<T: Send + 'static>(ctx: &Context, idx: usize, n: usize) -> Option<(AnyBatch, usize)> {
    let mut port = ctx.input_at::<T>(idx);
    let mut buf: Vec<T> = Vec::with_capacity(n);
    match port.pop_range(n, &mut buf) {
        Ok(got) => Some((Box::new(buf), got)),
        Err(_) => None,
    }
}

fn batch_push<T: Send + 'static>(ctx: &Context, idx: usize, batch: AnyBatch) -> Option<usize> {
    let batch = batch
        .downcast::<Vec<T>>()
        .expect("fused chain tail: output batch element type mismatch");
    let n = batch.len();
    if n == 0 {
        return Some(0);
    }
    let mut port = ctx.output_at::<T>(idx);
    let mut iter = batch.into_iter();
    let mut left = n;
    // reserve() clamps each grant to the ring's maximum capacity, so a
    // batch larger than the ring is published across several reservations.
    while left > 0 {
        let mut slice = port.reserve(left).ok()?;
        let take = left.min(slice.remaining());
        if take == 0 {
            continue;
        }
        for _ in 0..take {
            match iter.next() {
                Some(v) => slice.push(v),
                None => break,
            }
        }
        left -= take;
    }
    Some(n)
}

/// What a kernel's `run()` tells the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KStatus {
    /// Call `run()` again — more work to do (the paper's `raft::proceed`).
    Proceed,
    /// The kernel is finished; close its output streams (`raft::stop`).
    Stop,
}

/// Type-erased FIFO construction result: `(producer, consumer, monitor
/// handle)`. The producer/consumer boxes hold `raft_buffer::Producer<T>` /
/// `Consumer<T>` and are downcast inside [`Context`].
pub type ErasedFifo = (AnyEndpoint, AnyEndpoint, Arc<dyn Monitorable>);

/// Monomorphized FIFO factory, captured at port-declaration time.
pub type FifoFactory = fn(FifoConfig) -> ErasedFifo;

fn make_fifo<T: Send + Clone + 'static>(cfg: FifoConfig) -> ErasedFifo {
    let (fifo, mut producer, mut consumer) = fifo_with::<T>(cfg);
    if let Some(journal) = cfg.journal {
        // Exactly-once link: pops are recorded for replay, pushes staged
        // until the transaction commits (see `raft_buffer::journal`).
        consumer.enable_journal(journal);
        producer.enable_staging();
    }
    (Box::new(producer), Box::new(consumer), Arc::new(fifo))
}

/// Transaction verbs applied to a journaled endpoint at the end of one
/// `run()` (see `raft_buffer::journal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// Acknowledge consumed elements / publish staged outputs.
    Commit,
    /// Queue consumed elements for replay / discard staged outputs.
    Rewind,
}

/// Monomorphized journal-control eraser captured on a [`PortDef`]: apply
/// `op` to the input (`is_input == true`) or output port `idx` of `ctx`.
/// Returns how many elements were affected (acked/queued/published/
/// discarded).
pub type JournalCtlFn = fn(&Context, bool, usize, JournalOp) -> u64;

fn journal_ctl<T: Send + 'static>(ctx: &Context, is_input: bool, idx: usize, op: JournalOp) -> u64 {
    if is_input {
        let mut port = ctx.input_at::<T>(idx);
        match op {
            JournalOp::Commit => port.commit_consumed() as u64,
            JournalOp::Rewind => port.rewind_consumed() as u64,
        }
    } else {
        let mut port = ctx.output_at::<T>(idx);
        match op {
            // A commit that fails (consumer gone) drops the staged elements,
            // exactly as an unjournaled push to a closed consumer would.
            JournalOp::Commit => port.commit_produced().unwrap_or(0) as u64,
            JournalOp::Rewind => port.rewind_produced() as u64,
        }
    }
}

/// Declaration of one port: name, element type, and the factories the
/// erased runtime needs for this type.
#[derive(Clone)]
pub struct PortDef {
    /// Port name, unique within its direction on the kernel.
    pub name: String,
    /// Element type id (checked for equality at link time).
    pub type_id: TypeId,
    /// Human-readable element type (for error messages).
    pub type_name: &'static str,
    /// FIFO constructor for this element type.
    pub fifo_factory: FifoFactory,
    /// Split/reduce adapter constructors for this element type (used when
    /// the auto-parallelizer replicates the kernel behind this port).
    pub adapters: fn() -> AdapterFactories,
    /// Batched-input eraser for this element type (fused-chain head I/O).
    pub batch_pop: BatchPopFn,
    /// Batched-output eraser for this element type (fused-chain tail I/O).
    pub batch_push: BatchPushFn,
    /// Journal-transaction eraser for this element type (exactly-once
    /// recovery: commit/rewind through the type-erased [`Context`]).
    pub journal_ctl: JournalCtlFn,
}

impl std::fmt::Debug for PortDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortDef")
            .field("name", &self.name)
            .field("type", &self.type_name)
            .finish()
    }
}

impl PortDef {
    /// Declare a port of element type `T`.
    ///
    /// `T: Clone` mirrors C++ RaftLib's requirement that stream types be
    /// copy-constructible; it is what lets a journaled link keep a replay
    /// copy of each in-flight element.
    pub fn of<T: Send + Clone + 'static>(name: impl Into<String>) -> Self {
        PortDef {
            name: name.into(),
            type_id: TypeId::of::<T>(),
            type_name: std::any::type_name::<T>(),
            fifo_factory: make_fifo::<T>,
            adapters: adapter_factories::<T>,
            batch_pop: batch_pop::<T>,
            batch_push: batch_push::<T>,
            journal_ctl: journal_ctl::<T>,
        }
    }
}

/// One type-erased stage of a fused chain: consumes an owned input batch
/// and produces an owned output batch, with no queue in between.
///
/// Obtained from a kernel via [`Kernel::into_batch_stage`]; usually
/// implemented through the typed [`BatchKernel`] trait (blanket-erased
/// here) rather than directly.
pub trait ErasedBatchStage: Send {
    /// Element type consumed by this stage.
    fn in_type(&self) -> TypeId;
    /// Element type produced by this stage.
    fn out_type(&self) -> TypeId;
    /// Display name of the stage (for fused-group reports).
    fn stage_name(&self) -> String;
    /// Transform one owned batch. `input` holds a `Vec<In>`; the result
    /// must hold a `Vec<Out>` (any length — filters may shrink it).
    fn run_batch_erased(&mut self, input: AnyBatch) -> AnyBatch;
    /// Clean-slate copy, for restarting (or replicating) a fused group as
    /// a unit. `None` if the stage cannot be rebuilt.
    fn fork(&self) -> Option<Box<dyn ErasedBatchStage>>;
}

/// Typed batch-transform body: what a fusable kernel compiles into.
///
/// `run_batch` receives the whole input batch by value and appends its
/// results to `out` — order-preserving, possibly shrinking (filters) or
/// growing (flat-maps) the batch. A blanket impl erases every
/// `BatchKernel` into an [`ErasedBatchStage`]; per-element kernels can
/// skip implementing this entirely via [`per_element`] /
/// [`per_element_filter`].
pub trait BatchKernel: Send + 'static {
    /// Element type consumed.
    type In: Send + 'static;
    /// Element type produced.
    type Out: Send + 'static;

    /// Transform `input`, appending results to `out` in order.
    fn run_batch(&mut self, input: Vec<Self::In>, out: &mut Vec<Self::Out>);

    /// Display name (fused-group reports). Defaults to the type name.
    fn stage_name(&self) -> String {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full).to_string()
    }

    /// Clean-slate copy for restart-as-a-unit; `None` (the default) if the
    /// stage cannot be rebuilt.
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

impl<B: BatchKernel> ErasedBatchStage for B {
    fn in_type(&self) -> TypeId {
        TypeId::of::<B::In>()
    }
    fn out_type(&self) -> TypeId {
        TypeId::of::<B::Out>()
    }
    fn stage_name(&self) -> String {
        BatchKernel::stage_name(self)
    }
    fn run_batch_erased(&mut self, input: AnyBatch) -> AnyBatch {
        let input = input
            .downcast::<Vec<B::In>>()
            .expect("fused chain: stage input batch element type mismatch");
        let mut out = Vec::with_capacity(input.len());
        self.run_batch(*input, &mut out);
        Box::new(out)
    }
    fn fork(&self) -> Option<Box<dyn ErasedBatchStage>> {
        BatchKernel::fork(self).map(|b| Box::new(b) as Box<dyn ErasedBatchStage>)
    }
}

/// Blanket per-element adapter: lifts an `FnMut(A) -> B` into a
/// [`BatchKernel`] whose `run_batch` is the obvious tight loop — the bridge
/// that lets `Map`-style kernels join fused chains without writing batch
/// code.
pub struct PerElement<A, B, F> {
    f: F,
    label: &'static str,
    _marker: std::marker::PhantomData<fn(A) -> B>,
}

impl<A, B, F> BatchKernel for PerElement<A, B, F>
where
    A: Send + 'static,
    B: Send + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    type In = A;
    type Out = B;
    fn run_batch(&mut self, input: Vec<A>, out: &mut Vec<B>) {
        out.extend(input.into_iter().map(&mut self.f));
    }
    fn stage_name(&self) -> String {
        self.label.to_string()
    }
    fn fork(&self) -> Option<Self> {
        Some(PerElement {
            f: self.f.clone(),
            label: self.label,
            _marker: std::marker::PhantomData,
        })
    }
}

/// Erased per-element stage from a transform closure (see [`PerElement`]).
pub fn per_element<A, B, F>(label: &'static str, f: F) -> Box<dyn ErasedBatchStage>
where
    A: Send + 'static,
    B: Send + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    Box::new(PerElement {
        f,
        label,
        _marker: std::marker::PhantomData,
    })
}

/// Filtering counterpart of [`PerElement`]: items mapped to `None` are
/// dropped from the batch.
pub struct PerElementFilter<A, B, F> {
    f: F,
    label: &'static str,
    _marker: std::marker::PhantomData<fn(A) -> B>,
}

impl<A, B, F> BatchKernel for PerElementFilter<A, B, F>
where
    A: Send + 'static,
    B: Send + 'static,
    F: FnMut(A) -> Option<B> + Clone + Send + 'static,
{
    type In = A;
    type Out = B;
    fn run_batch(&mut self, input: Vec<A>, out: &mut Vec<B>) {
        out.extend(input.into_iter().filter_map(&mut self.f));
    }
    fn stage_name(&self) -> String {
        self.label.to_string()
    }
    fn fork(&self) -> Option<Self> {
        Some(PerElementFilter {
            f: self.f.clone(),
            label: self.label,
            _marker: std::marker::PhantomData,
        })
    }
}

/// Erased filtering per-element stage (see [`PerElementFilter`]).
pub fn per_element_filter<A, B, F>(label: &'static str, f: F) -> Box<dyn ErasedBatchStage>
where
    A: Send + 'static,
    B: Send + 'static,
    F: FnMut(A) -> Option<B> + Clone + Send + 'static,
{
    Box::new(PerElementFilter {
        f,
        label,
        _marker: std::marker::PhantomData,
    })
}

/// A kernel's full port declaration.
#[derive(Debug, Default)]
pub struct PortSpec {
    /// Input (consuming) ports, in declaration order.
    pub inputs: Vec<PortDef>,
    /// Output (producing) ports, in declaration order.
    pub outputs: Vec<PortDef>,
}

impl PortSpec {
    /// Empty spec (a kernel with no ports is legal only as a whole-app
    /// placeholder and will fail `exe()` validation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an input port of element type `T` — the analog of
    /// `input.addPort<T>("name")` in the paper's Figure 2. `T: Clone` is
    /// the stream-type contract (see [`PortDef::of`]).
    pub fn input<T: Send + Clone + 'static>(mut self, name: impl Into<String>) -> Self {
        let def = PortDef::of::<T>(name);
        assert!(
            self.inputs.iter().all(|p| p.name != def.name),
            "duplicate input port {:?}",
            def.name
        );
        self.inputs.push(def);
        self
    }

    /// Add an output port of element type `T`. `T: Clone` is the
    /// stream-type contract (see [`PortDef::of`]).
    pub fn output<T: Send + Clone + 'static>(mut self, name: impl Into<String>) -> Self {
        let def = PortDef::of::<T>(name);
        assert!(
            self.outputs.iter().all(|p| p.name != def.name),
            "duplicate output port {:?}",
            def.name
        );
        self.outputs.push(def);
        self
    }
}

/// A sequential compute kernel.
///
/// Implementations hold their own state (`&mut self` in `run`); all
/// communication goes through the [`Context`]'s ports, which is what makes
/// kernels safely parallelizable (the paper's "share nothing" property).
pub trait Kernel: Send + 'static {
    /// Declare this kernel's ports. Called once, before execution; must be
    /// deterministic.
    fn ports(&self) -> PortSpec;

    /// One scheduling quantum. Pop/peek inputs, push outputs, return
    /// [`KStatus::Proceed`] to be called again or [`KStatus::Stop`] when
    /// done (sources: data exhausted; intermediate kernels: inputs closed).
    fn run(&mut self, ctx: &Context) -> KStatus;

    /// Display name (diagnostics, mapping reports). Defaults to the type
    /// name.
    fn name(&self) -> String {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full).to_string()
    }

    /// Produce a fresh replica of this kernel for automatic parallelization
    /// (§4.1: kernels are replicated when the graph allows it). Return
    /// `None` (the default) if the kernel carries non-replicable state.
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        None
    }

    /// Whether the kernel is pure with respect to its stream: its output for
    /// an item does not depend on previously-seen items. Stateless kernels
    /// are safe to restart after a panic and safe to replicate behind an
    /// out-of-order split. Defaults to `false` (conservative); override, or
    /// declare per-instance via [`crate::map::RaftMap::declare_stateless`].
    fn is_stateless(&self) -> bool {
        false
    }

    /// Whether this kernel can compile into a batch stage of a fused chain
    /// (see [`crate::analysis::fusion`]). Contract: returning `true` here
    /// promises that [`Kernel::batch_stage`] returns `Some`. Defaults to
    /// `false`; per-element transforms implement it via [`per_element`].
    fn is_fusable(&self) -> bool {
        false
    }

    /// Produce this kernel's batch-stage body for fusion, or `None` (the
    /// default). The fusion pass calls this at most once and then discards
    /// the kernel, so implementations may move or clone their transform
    /// into the stage.
    fn batch_stage(&mut self) -> Option<Box<dyn ErasedBatchStage>> {
        None
    }
}

impl Kernel for Box<dyn Kernel> {
    fn ports(&self) -> PortSpec {
        (**self).ports()
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        (**self).run(ctx)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        (**self).clone_replica()
    }
    fn is_stateless(&self) -> bool {
        (**self).is_stateless()
    }
    fn is_fusable(&self) -> bool {
        (**self).is_fusable()
    }
    fn batch_stage(&mut self) -> Option<Box<dyn ErasedBatchStage>> {
        (**self).batch_stage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Kernel for Nop {
        fn ports(&self) -> PortSpec {
            PortSpec::new()
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    #[test]
    fn default_name_strips_path() {
        assert_eq!(Nop.name(), "Nop");
    }

    #[test]
    fn port_spec_builder() {
        let spec = PortSpec::new()
            .input::<i64>("input_a")
            .input::<i64>("input_b")
            .output::<i64>("sum");
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.outputs.len(), 1);
        assert_eq!(spec.inputs[0].name, "input_a");
        assert_eq!(spec.inputs[0].type_id, TypeId::of::<i64>());
        assert_eq!(spec.outputs[0].name, "sum");
    }

    #[test]
    fn type_ids_distinguish_types() {
        let spec = PortSpec::new().input::<i64>("a").input::<u64>("b");
        assert_ne!(spec.inputs[0].type_id, spec.inputs[1].type_id);
    }

    #[test]
    #[should_panic(expected = "duplicate input port")]
    fn duplicate_port_name_panics() {
        let _ = PortSpec::new().input::<i64>("x").input::<u8>("x");
    }

    #[test]
    fn fifo_factory_produces_working_endpoints() {
        let def = PortDef::of::<String>("s");
        let (prod, cons, monitor) = (def.fifo_factory)(FifoConfig::starting_at(4));
        let mut p = prod.downcast::<raft_buffer::Producer<String>>().unwrap();
        let mut c = cons.downcast::<raft_buffer::Consumer<String>>().unwrap();
        p.try_push("hi".to_string()).unwrap();
        assert_eq!(monitor.occupancy(), 1);
        assert_eq!(c.try_pop().unwrap(), "hi");
    }

    #[test]
    fn default_clone_replica_is_none() {
        assert!(Nop.clone_replica().is_none());
    }

    #[test]
    fn default_kernel_is_not_fusable() {
        assert!(!Nop.is_fusable());
        assert!(Nop.batch_stage().is_none());
    }

    #[test]
    fn per_element_stage_maps_a_batch() {
        let mut stage = per_element("dbl", |x: u32| u64::from(x) * 2);
        assert_eq!(stage.in_type(), TypeId::of::<u32>());
        assert_eq!(stage.out_type(), TypeId::of::<u64>());
        assert_eq!(stage.stage_name(), "dbl");
        let out = stage.run_batch_erased(Box::new(vec![1u32, 2, 3]));
        assert_eq!(*out.downcast::<Vec<u64>>().unwrap(), vec![2, 4, 6]);
        // fork gives an independent, equivalent stage
        let mut forked = stage.fork().expect("Clone closure forks");
        let out = forked.run_batch_erased(Box::new(vec![5u32]));
        assert_eq!(*out.downcast::<Vec<u64>>().unwrap(), vec![10]);
    }

    #[test]
    fn per_element_filter_drops_none() {
        let mut stage = per_element_filter("evens", |x: u32| x.is_multiple_of(2).then_some(x));
        let out = stage.run_batch_erased(Box::new(vec![1u32, 2, 3, 4]));
        assert_eq!(*out.downcast::<Vec<u32>>().unwrap(), vec![2, 4]);
    }

    #[test]
    fn port_def_batch_erasers_roundtrip() {
        use std::sync::atomic::AtomicBool;
        let def = PortDef::of::<u64>("x");
        let (fifo, producer, consumer) = raft_buffer::fifo_with::<u64>(FifoConfig::starting_at(8));
        let monitor: Arc<dyn Monitorable> = Arc::new(fifo);
        let in_ctx = Context::new(
            "t".into(),
            vec![("x".into(), Box::new(consumer), monitor)],
            vec![("x".into(), Box::new(producer))],
            Arc::new(AtomicBool::new(false)),
        );
        assert_eq!(
            (def.batch_push)(&in_ctx, 0, Box::new(vec![7u64, 8, 9])),
            Some(3)
        );
        let (batch, n) = (def.batch_pop)(&in_ctx, 0, 16).unwrap();
        assert_eq!(n, 3);
        assert_eq!(*batch.downcast::<Vec<u64>>().unwrap(), vec![7, 8, 9]);
    }
}
