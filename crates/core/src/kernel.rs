//! The compute-kernel abstraction.
//!
//! A RaftLib application is a set of sequential compute kernels joined by
//! streams (§1). A kernel extends `raft::kernel` in C++; here it implements
//! [`Kernel`]: declare ports in [`Kernel::ports`], do the work in
//! [`Kernel::run`], which the scheduler calls repeatedly until it returns
//! [`KStatus::Stop`].
//!
//! Port declarations are *typed*: [`PortSpec::input`]/[`PortSpec::output`]
//! capture the element type's `TypeId` plus monomorphized factory functions
//! so the (type-erased) runtime can later allocate the right FIFO and the
//! right split/reduce adapters for each link — the reproduction of C++
//! RaftLib's template machinery.

use std::any::TypeId;

use raft_buffer::fifo::Monitorable;
use raft_buffer::{fifo_with, FifoConfig};
use std::sync::Arc;

use crate::parallel::{adapter_factories, AdapterFactories};
use crate::port::{AnyEndpoint, Context};

/// What a kernel's `run()` tells the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KStatus {
    /// Call `run()` again — more work to do (the paper's `raft::proceed`).
    Proceed,
    /// The kernel is finished; close its output streams (`raft::stop`).
    Stop,
}

/// Type-erased FIFO construction result: `(producer, consumer, monitor
/// handle)`. The producer/consumer boxes hold `raft_buffer::Producer<T>` /
/// `Consumer<T>` and are downcast inside [`Context`].
pub type ErasedFifo = (AnyEndpoint, AnyEndpoint, Arc<dyn Monitorable>);

/// Monomorphized FIFO factory, captured at port-declaration time.
pub type FifoFactory = fn(FifoConfig) -> ErasedFifo;

fn make_fifo<T: Send + 'static>(cfg: FifoConfig) -> ErasedFifo {
    let (fifo, producer, consumer) = fifo_with::<T>(cfg);
    (Box::new(producer), Box::new(consumer), Arc::new(fifo))
}

/// Declaration of one port: name, element type, and the factories the
/// erased runtime needs for this type.
pub struct PortDef {
    /// Port name, unique within its direction on the kernel.
    pub name: String,
    /// Element type id (checked for equality at link time).
    pub type_id: TypeId,
    /// Human-readable element type (for error messages).
    pub type_name: &'static str,
    /// FIFO constructor for this element type.
    pub fifo_factory: FifoFactory,
    /// Split/reduce adapter constructors for this element type (used when
    /// the auto-parallelizer replicates the kernel behind this port).
    pub adapters: fn() -> AdapterFactories,
}

impl std::fmt::Debug for PortDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortDef")
            .field("name", &self.name)
            .field("type", &self.type_name)
            .finish()
    }
}

impl PortDef {
    /// Declare a port of element type `T`.
    pub fn of<T: Send + 'static>(name: impl Into<String>) -> Self {
        PortDef {
            name: name.into(),
            type_id: TypeId::of::<T>(),
            type_name: std::any::type_name::<T>(),
            fifo_factory: make_fifo::<T>,
            adapters: adapter_factories::<T>,
        }
    }
}

/// A kernel's full port declaration.
#[derive(Debug, Default)]
pub struct PortSpec {
    /// Input (consuming) ports, in declaration order.
    pub inputs: Vec<PortDef>,
    /// Output (producing) ports, in declaration order.
    pub outputs: Vec<PortDef>,
}

impl PortSpec {
    /// Empty spec (a kernel with no ports is legal only as a whole-app
    /// placeholder and will fail `exe()` validation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an input port of element type `T` — the analog of
    /// `input.addPort<T>("name")` in the paper's Figure 2.
    pub fn input<T: Send + 'static>(mut self, name: impl Into<String>) -> Self {
        let def = PortDef::of::<T>(name);
        assert!(
            self.inputs.iter().all(|p| p.name != def.name),
            "duplicate input port {:?}",
            def.name
        );
        self.inputs.push(def);
        self
    }

    /// Add an output port of element type `T`.
    pub fn output<T: Send + 'static>(mut self, name: impl Into<String>) -> Self {
        let def = PortDef::of::<T>(name);
        assert!(
            self.outputs.iter().all(|p| p.name != def.name),
            "duplicate output port {:?}",
            def.name
        );
        self.outputs.push(def);
        self
    }
}

/// A sequential compute kernel.
///
/// Implementations hold their own state (`&mut self` in `run`); all
/// communication goes through the [`Context`]'s ports, which is what makes
/// kernels safely parallelizable (the paper's "share nothing" property).
pub trait Kernel: Send + 'static {
    /// Declare this kernel's ports. Called once, before execution; must be
    /// deterministic.
    fn ports(&self) -> PortSpec;

    /// One scheduling quantum. Pop/peek inputs, push outputs, return
    /// [`KStatus::Proceed`] to be called again or [`KStatus::Stop`] when
    /// done (sources: data exhausted; intermediate kernels: inputs closed).
    fn run(&mut self, ctx: &Context) -> KStatus;

    /// Display name (diagnostics, mapping reports). Defaults to the type
    /// name.
    fn name(&self) -> String {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full).to_string()
    }

    /// Produce a fresh replica of this kernel for automatic parallelization
    /// (§4.1: kernels are replicated when the graph allows it). Return
    /// `None` (the default) if the kernel carries non-replicable state.
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        None
    }

    /// Whether the kernel is pure with respect to its stream: its output for
    /// an item does not depend on previously-seen items. Stateless kernels
    /// are safe to restart after a panic and safe to replicate behind an
    /// out-of-order split. Defaults to `false` (conservative); override, or
    /// declare per-instance via [`crate::map::RaftMap::declare_stateless`].
    fn is_stateless(&self) -> bool {
        false
    }
}

impl Kernel for Box<dyn Kernel> {
    fn ports(&self) -> PortSpec {
        (**self).ports()
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        (**self).run(ctx)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        (**self).clone_replica()
    }
    fn is_stateless(&self) -> bool {
        (**self).is_stateless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Kernel for Nop {
        fn ports(&self) -> PortSpec {
            PortSpec::new()
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    #[test]
    fn default_name_strips_path() {
        assert_eq!(Nop.name(), "Nop");
    }

    #[test]
    fn port_spec_builder() {
        let spec = PortSpec::new()
            .input::<i64>("input_a")
            .input::<i64>("input_b")
            .output::<i64>("sum");
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.outputs.len(), 1);
        assert_eq!(spec.inputs[0].name, "input_a");
        assert_eq!(spec.inputs[0].type_id, TypeId::of::<i64>());
        assert_eq!(spec.outputs[0].name, "sum");
    }

    #[test]
    fn type_ids_distinguish_types() {
        let spec = PortSpec::new().input::<i64>("a").input::<u64>("b");
        assert_ne!(spec.inputs[0].type_id, spec.inputs[1].type_id);
    }

    #[test]
    #[should_panic(expected = "duplicate input port")]
    fn duplicate_port_name_panics() {
        let _ = PortSpec::new().input::<i64>("x").input::<u8>("x");
    }

    #[test]
    fn fifo_factory_produces_working_endpoints() {
        let def = PortDef::of::<String>("s");
        let (prod, cons, monitor) = (def.fifo_factory)(FifoConfig::starting_at(4));
        let mut p = prod.downcast::<raft_buffer::Producer<String>>().unwrap();
        let mut c = cons.downcast::<raft_buffer::Consumer<String>>().unwrap();
        p.try_push("hi".to_string()).unwrap();
        assert_eq!(monitor.occupancy(), 1);
        assert_eq!(c.try_pop().unwrap(), "hi");
    }

    #[test]
    fn default_clone_replica_is_none() {
        assert!(Nop.clone_replica().is_none());
    }
}
