//! Kernel scheduling.
//!
//! The paper: "The initial scheduling algorithm for threads and processes is
//! simply the default thread-level scheduler provided by the underlying
//! operating system. ... RaftLib, of course, allows the substitution of any
//! scheduler desired." (§4.1)
//!
//! The schedulers ship here behind the [`Scheduler`] trait:
//!
//! * [`ThreadPerKernel`] — the paper's default: every kernel is an
//!   independent execution unit (an OS thread); blocking port operations
//!   simply block that thread and the OS multiplexes.
//! * [`CooperativePool`] — a fixed pool of workers that round-robin ready
//!   kernels. "Ready" = every input stream has data or ended, so a
//!   well-behaved kernel (consuming at most one item per input per `run`)
//!   never blocks a worker on an empty queue. This is both the pluggable
//!   scheduler showcase and the way to emulate k-way placement on hosts
//!   with few cores.
//! * [`ChainedPool`] / [`PartitionedPool`] — cache-aware and mapper-driven
//!   variants of the cooperative pool.
//! * [`crate::stealing::WorkStealing`] — event-driven work stealing:
//!   readiness arrives through the FIFOs' [`raft_buffer::WakerSlot`]s as
//!   O(1) task enqueues instead of the pools' O(kernels × ports) occupancy
//!   sweeps; per-worker Chase–Lev deques with a global FIFO injector,
//!   adaptive spin → yield → park idling, optional core pinning.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use raft_buffer::fifo::Monitorable;
use raft_buffer::{WaitStrategy, Waiter};

use crate::kernel::{JournalCtlFn, JournalOp, KStatus, Kernel};
use crate::port::Context;
use crate::supervise::{KernelOutcome, SupervisorPolicy};

/// Idle-wait policy shared by the polling pool workers: adaptive spin →
/// yield, then 100 µs sleeps (the pools have no wake signal to park on, so
/// the sleep doubles as their re-poll period). The work-stealing scheduler
/// parks on a condvar instead and uses a much longer backstop.
pub(crate) const POOL_IDLE: WaitStrategy =
    WaitStrategy::parking(std::time::Duration::from_micros(100));

/// Which scheduler `exe()` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// One OS thread per kernel (the paper's default).
    ThreadPerKernel,
    /// Cooperative pool with a fixed worker count.
    Pool {
        /// Number of worker threads.
        workers: usize,
    },
    /// Cache-aware cooperative pool (the paper's anticipated Agrawal,
    /// Fineman & Maglalang \[3\] direction): after a kernel produces, the
    /// worker immediately runs its downstream consumer so freshly written
    /// stream data is consumed while still cache-hot.
    Chained {
        /// Number of worker threads.
        workers: usize,
    },
    /// Mapper-driven pool: the kernel graph is partitioned across workers
    /// with the paper's latency-priority bisection (§4.1's mapping
    /// algorithm); each worker owns its partition exclusively, so heavily
    /// communicating kernels share a worker ("place the fewest number of
    /// streams over high latency connections").
    Partitioned {
        /// Number of worker threads (= partitions).
        workers: usize,
    },
    /// Event-driven work-stealing pool: kernels become runnable through
    /// FIFO wakers (no occupancy polling), run from per-worker Chase–Lev
    /// deques fed by a global injector, and idle workers steal before
    /// parking. The mapper's partition assignment seeds the initial
    /// per-worker placement.
    Stealing {
        /// Number of worker threads.
        workers: usize,
        /// Pin worker `w` to core `w % cores` (Linux; best-effort no-op
        /// elsewhere) so placement survives OS migration.
        pin: bool,
    },
}

/// Per-kernel execution counters (service statistics for the optimizer and
/// health signals for the watchdog).
#[derive(Debug, Default)]
pub struct KernelTelemetry {
    /// Number of completed `run()` invocations.
    pub runs: AtomicU64,
    /// Nanoseconds spent inside `run()`.
    pub busy_ns: AtomicU64,
    /// Number of *entered* `run()` invocations. `entered > runs` means the
    /// kernel is inside `run()` right now; the monitor's deadline watchdog
    /// uses an unchanged `(entered, runs)` pair across its run-budget
    /// window as the "stuck inside one invocation" signal.
    pub entered: AtomicU64,
    /// Journal transactions committed: `run()` invocations whose consumed
    /// inputs were acknowledged and staged outputs published (only counted
    /// for kernels with at least one journaled link).
    pub commits: AtomicU64,
    /// Journal rewinds: panicked `run()` invocations whose in-flight
    /// elements were re-queued for replay and staged outputs discarded —
    /// each one is a recovery event the final report surfaces.
    pub rewinds: AtomicU64,
}

/// Everything needed to execute one kernel to completion.
pub struct KernelRunner {
    /// Display name.
    pub name: String,
    /// The kernel itself.
    pub kernel: Box<dyn Kernel>,
    /// Its bound ports.
    pub ctx: Context,
    /// Monitor handles of its input streams (readiness checks).
    pub input_fifos: Vec<Arc<dyn Monitorable>>,
    /// Service counters.
    pub telemetry: Arc<KernelTelemetry>,
    /// Indices (into the runner table) of downstream kernels — used by the
    /// cache-aware chained scheduler to run consumers right after their
    /// producer.
    pub successors: Vec<usize>,
    /// Monitor handles of this kernel's *output* streams: on panic the
    /// runtime posts `Signal::Error` on each, so downstream kernels can
    /// observe the failure out-of-band — the paper's "asynchronous
    /// signaling pathway for global exception handling" (§4.2).
    pub output_fifos: Vec<Arc<dyn Monitorable>>,
    /// What to do when `run()` panics (default: abort the map).
    pub policy: SupervisorPolicy,
    /// Restarts consumed so far under a `Restart`/`Replace` policy.
    pub restarts: u32,
    /// Journaled endpoints of this kernel as `(is_input, port_index,
    /// eraser)`: one `run()` is one transaction over all of them —
    /// committed after a clean return, rewound when a panic is absorbed by
    /// a `Restart`/`Replace` policy. Empty for kernels without journaled
    /// links (the overwhelmingly common case), which skips the whole path.
    pub journal_ports: Vec<(bool, usize, JournalCtlFn)>,
    /// Successful `run()` calls folded into one journal transaction before
    /// the scheduler commits (min of the journaled links'
    /// [`raft_buffer::JournalConfig::commit_interval`], clamped so
    /// unacknowledged pops can never fill a fixed-capacity input ring).
    /// `1` = commit every run; irrelevant when `journal_ports` is empty.
    pub journal_interval: u32,
    /// Successful runs since the last commit (the open transaction's size).
    pub journal_uncommitted: u32,
}

impl KernelRunner {
    /// Commit the open transaction: publish staged outputs, acknowledge
    /// consumed inputs.
    fn journal_commit(&mut self) {
        for &(is_input, idx, ctl) in &self.journal_ports {
            ctl(&self.ctx, is_input, idx, JournalOp::Commit);
        }
        self.journal_uncommitted = 0;
        self.telemetry.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful run into the open transaction, committing when
    /// the interval fills.
    fn journal_tick(&mut self) {
        if self.journal_ports.is_empty() {
            return;
        }
        self.journal_uncommitted += 1;
        if self.journal_uncommitted >= self.journal_interval {
            self.journal_commit();
        }
    }

    /// Commit whatever the open transaction holds — called whenever the
    /// kernel stops making progress (clean completion, wind-down, an idle
    /// park in a pool scheduler) so staged outputs never sit unpublished
    /// while the kernel waits.
    pub(crate) fn journal_flush(&mut self) {
        if self.journal_uncommitted > 0 {
            self.journal_commit();
        }
    }

    /// Abort the open transaction: re-queue consumed inputs for replay,
    /// discard staged outputs. The restarted kernel re-pops exactly the
    /// elements the failed (and any earlier uncommitted) invocations
    /// consumed, oldest first; none of their outputs were published.
    fn journal_rewind(&mut self) {
        for &(is_input, idx, ctl) in &self.journal_ports {
            ctl(&self.ctx, is_input, idx, JournalOp::Rewind);
        }
        self.journal_uncommitted = 0;
        if !self.journal_ports.is_empty() {
            self.telemetry.rewinds.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What happened to one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerOutcome {
    /// Kernel display name.
    pub name: String,
    /// How the kernel's execution ended.
    pub outcome: KernelOutcome,
    /// `true` when the failure must fail the whole map (an `Abort`-policy
    /// panic): the scheduler raises the global stop flag and `exe()`
    /// returns `ExeError::KernelPanicked`.
    pub fatal: bool,
}

/// Terminal result of [`step`] for one kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepDone {
    pub(crate) outcome: KernelOutcome,
    pub(crate) fatal: bool,
}

/// Per-worker execution telemetry reported by pool-style schedulers
/// (currently populated by [`crate::stealing::WorkStealing`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Core this worker pinned itself to, if pinning was requested and
    /// succeeded.
    pub pinned_core: Option<usize>,
    /// Task claims executed (quanta, not kernel `run()` calls).
    pub runs: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Times the worker parked after exhausting spin and yield budgets.
    pub parks: u64,
    /// Wake-to-run latency samples observed (tasks claimed that carried a
    /// waker timestamp; self-requeues don't count).
    pub woken_tasks: u64,
    /// Total wake-to-run latency across those samples, nanoseconds.
    pub wake_to_run_ns: u64,
    /// Idle-but-ready tasks re-queued by the park-timeout safety sweep —
    /// nonzero means a wakeup was delivered late by the net, not lost.
    pub rescues: u64,
}

/// Everything a scheduler hands back to `exe()`: one outcome per kernel
/// plus optional per-worker telemetry.
#[derive(Debug, Default)]
pub struct SchedulerOutput {
    /// One entry per kernel.
    pub outcomes: Vec<RunnerOutcome>,
    /// Per-worker telemetry; empty for schedulers that don't track it.
    pub workers: Vec<WorkerReport>,
}

impl From<Vec<RunnerOutcome>> for SchedulerOutput {
    fn from(outcomes: Vec<RunnerOutcome>) -> Self {
        SchedulerOutput {
            outcomes,
            workers: Vec::new(),
        }
    }
}

/// A scheduler executes a set of kernels to completion.
pub trait Scheduler {
    /// Run all kernels; return one outcome per kernel (plus any worker
    /// telemetry). `stop` is the cooperative shutdown flag (set on panic or
    /// deadline).
    fn execute(&self, runners: Vec<KernelRunner>, stop: Arc<AtomicBool>) -> SchedulerOutput;
}

/// Drive a kernel for one quantum. Returns `None` while it wants more
/// (`Proceed`, or a panic the supervision policy absorbed), `Some(done)`
/// when it stopped, was skipped, or failed for good.
///
/// Panic path invariants (regression-tested in `tests/supervision.rs`):
/// the caller must drop (or take-and-drop) the runner on `Some(_)`, which
/// drops its [`Context`] and closes every endpoint — so the monitor
/// handles of a panicked kernel's output streams observe `is_finished()`
/// even when `run()` panicked before its first push (the zero-iteration
/// case of the drain loops below).
pub(crate) fn step(runner: &mut KernelRunner, timing: bool) -> Option<StepDone> {
    let started = timing.then(Instant::now);
    runner.telemetry.entered.fetch_add(1, Ordering::Relaxed);
    // The failpoint runs inside the unwind guard so an injected panic takes
    // exactly the policy-handled path a kernel panic would.
    let result = catch_unwind(AssertUnwindSafe(|| {
        raft_buffer::failpoint!("core::scheduler::step");
        runner.kernel.run(&runner.ctx)
    }));
    if let Some(t0) = started {
        runner
            .telemetry
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    runner.telemetry.runs.fetch_add(1, Ordering::Relaxed);
    match result {
        Ok(status) => {
            // Clean return: the run joins the open transaction; when the
            // commit interval fills (or the kernel stops) its effects become
            // visible — staged outputs publish, consumed inputs are
            // acknowledged.
            runner.journal_tick();
            if matches!(status, KStatus::Stop) {
                runner.journal_flush();
            }
            match status {
                KStatus::Proceed => None,
                KStatus::Stop => Some(StepDone {
                    outcome: match runner.restarts {
                        0 => KernelOutcome::Completed,
                        n => KernelOutcome::Restarted(n),
                    },
                    fatal: false,
                }),
            }
        }
        Err(_) => {
            let done = handle_panic(runner);
            if done.is_none() {
                // The policy absorbed the panic (Restart/Replace with
                // budget left): roll the transaction back so the fresh
                // instance re-pops exactly what the failed run consumed.
                // Terminal outcomes skip this — their staged outputs are
                // simply dropped with the runner, never published.
                runner.journal_rewind();
            }
            done
        }
    }
}

/// Cooperative wind-down: on global stop (watchdog deadline, fatal panic
/// elsewhere) or a level-1 drain request, sources must finish instead of
/// producing forever; kernels with inputs drain naturally as upstream EoS
/// arrives. Every scheduler consults this after an inconclusive step.
pub(crate) fn stop_winddown(runner: &mut KernelRunner, stop: &AtomicBool) -> Option<StepDone> {
    let wind_down = stop.load(Ordering::Relaxed) || runner.ctx.drain_requested();
    if wind_down && runner.ctx.input_count() == 0 {
        // Publish anything still staged before the runner is dropped.
        runner.journal_flush();
        Some(StepDone {
            outcome: KernelOutcome::Completed,
            fatal: false,
        })
    } else {
        None
    }
}

/// Apply the runner's supervision policy to a caught panic.
fn handle_panic(runner: &mut KernelRunner) -> Option<StepDone> {
    let post_error = |runner: &KernelRunner| {
        // Asynchronous error propagation (§4.2's exception pathway):
        // downstream kernels see Signal::Error out-of-band, ahead of
        // whatever data is still queued.
        for f in &runner.output_fifos {
            f.post_async(raft_buffer::Signal::Error(1));
        }
    };
    let exhausted = |runner: &KernelRunner| {
        post_error(runner);
        Some(StepDone {
            outcome: KernelOutcome::Aborted,
            fatal: false,
        })
    };
    match runner.policy.clone() {
        SupervisorPolicy::Abort => {
            post_error(runner);
            Some(StepDone {
                outcome: KernelOutcome::Aborted,
                fatal: true,
            })
        }
        // Skip-and-drain: no error signal — the kernel's ports close when
        // the caller drops the runner, EoS propagates, and downstream
        // stages flush whatever made it through.
        SupervisorPolicy::Skip => Some(StepDone {
            outcome: KernelOutcome::Skipped,
            fatal: false,
        }),
        SupervisorPolicy::Restart { max_restarts, .. } => {
            if runner.restarts >= max_restarts {
                return exhausted(runner);
            }
            // Clean-slate restart when the kernel supports replication;
            // otherwise re-enter the surviving instance in place.
            if let Some(fresh) = runner.kernel.clone_replica() {
                runner.kernel = fresh;
            }
            backoff_and_count(runner);
            None
        }
        SupervisorPolicy::Replace {
            max_restarts,
            factory,
            ..
        } => {
            if runner.restarts >= max_restarts {
                return exhausted(runner);
            }
            runner.kernel = factory();
            backoff_and_count(runner);
            None
        }
    }
}

fn backoff_and_count(runner: &mut KernelRunner) {
    if let Some(delay) = runner.policy.backoff_for(runner.restarts) {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
    runner.restarts += 1;
}

/// One OS thread per kernel.
pub struct ThreadPerKernel {
    /// Record per-run timing into [`KernelTelemetry::busy_ns`].
    pub timing: bool,
}

impl Scheduler for ThreadPerKernel {
    fn execute(&self, runners: Vec<KernelRunner>, stop: Arc<AtomicBool>) -> SchedulerOutput {
        let timing = self.timing;
        let handles: Vec<_> = runners
            .into_iter()
            .map(|mut runner| {
                let stop = stop.clone();
                std::thread::Builder::new()
                    .name(format!("raft-{}", runner.name))
                    .spawn(move || {
                        let done = loop {
                            match step(&mut runner, timing) {
                                Some(done) => break done,
                                None => {
                                    // Sources wind down on global stop or
                                    // drain; other kernels drain naturally.
                                    if let Some(done) = stop_winddown(&mut runner, &stop) {
                                        break done;
                                    }
                                }
                            }
                        };
                        if done.fatal {
                            stop.store(true, Ordering::Relaxed);
                        }
                        // Dropping the runner drops its Context, closing all
                        // endpoint handles: EoS propagates downstream.
                        let name = runner.name.clone();
                        drop(runner);
                        RunnerOutcome {
                            name,
                            outcome: done.outcome,
                            fatal: done.fatal,
                        }
                    })
                    .expect("spawn kernel thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(RunnerOutcome {
                    name: "<unknown>".into(),
                    outcome: KernelOutcome::Aborted,
                    fatal: true,
                })
            })
            .collect::<Vec<_>>()
            .into()
    }
}

/// Cooperative fixed-size worker pool with readiness gating.
pub struct CooperativePool {
    /// Worker thread count.
    pub workers: usize,
    /// Record per-run timing.
    pub timing: bool,
    /// `run()` calls per claim (amortizes queue locking).
    pub quantum: u32,
}

struct PoolSlot {
    runner: Option<KernelRunner>,
}

/// The readiness rule shared by every pool-style scheduler: sources are
/// always ready; everything else needs data (or EoS, or a pending async
/// signal — e.g. the `Signal::Error` a panicked upstream posts with no
/// accompanying data) on *all* inputs.
pub(crate) fn inputs_ready(input_fifos: &[Arc<dyn Monitorable>]) -> bool {
    if input_fifos.is_empty() {
        return true; // sources are always ready
    }
    input_fifos
        .iter()
        .all(|f| f.occupancy() > 0 || f.is_finished() || f.has_async())
}

impl CooperativePool {
    pub(crate) fn ready(runner: &KernelRunner) -> bool {
        inputs_ready(&runner.input_fifos)
    }
}

impl Scheduler for CooperativePool {
    fn execute(&self, runners: Vec<KernelRunner>, stop: Arc<AtomicBool>) -> SchedulerOutput {
        let n = runners.len();
        let slots: Arc<Vec<Mutex<PoolSlot>>> = Arc::new(
            runners
                .into_iter()
                .map(|r| Mutex::new(PoolSlot { runner: Some(r) }))
                .collect(),
        );
        let outcomes: Arc<Mutex<Vec<RunnerOutcome>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        let remaining = Arc::new(AtomicU64::new(n as u64));
        let timing = self.timing;
        let quantum = self.quantum.max(1);

        let workers: Vec<_> = (0..self.workers.max(1))
            .map(|w| {
                let slots = slots.clone();
                let outcomes = outcomes.clone();
                let remaining = remaining.clone();
                let stop = stop.clone();
                std::thread::Builder::new()
                    .name(format!("raft-pool-{w}"))
                    .spawn(move || {
                        let mut waiter = Waiter::new(POOL_IDLE);
                        while remaining.load(Ordering::Relaxed) > 0 {
                            let mut progressed = false;
                            for slot in slots.iter() {
                                // Claim without blocking: busy slots are
                                // being run by another worker.
                                let Some(mut guard) = slot.try_lock() else {
                                    continue;
                                };
                                let Some(runner) = guard.runner.as_mut() else {
                                    continue;
                                };
                                if !Self::ready(runner) {
                                    // Idle: don't hold staged outputs (or
                                    // unacknowledged pops) across the wait.
                                    runner.journal_flush();
                                    continue;
                                }
                                let mut finished: Option<StepDone> = None;
                                for _ in 0..quantum {
                                    match step(runner, timing) {
                                        Some(done) => {
                                            finished = Some(done);
                                            break;
                                        }
                                        None => {
                                            progressed = true;
                                            if let Some(done) = stop_winddown(runner, &stop) {
                                                finished = Some(done);
                                                break;
                                            }
                                            if !Self::ready(runner) {
                                                runner.journal_flush();
                                                break;
                                            }
                                        }
                                    }
                                }
                                if let Some(done) = finished {
                                    let runner = guard.runner.take().unwrap();
                                    let name = runner.name.clone();
                                    drop(runner); // close endpoints -> EoS
                                    if done.fatal {
                                        stop.store(true, Ordering::Relaxed);
                                    }
                                    outcomes.lock().push(RunnerOutcome {
                                        name,
                                        outcome: done.outcome,
                                        fatal: done.fatal,
                                    });
                                    remaining.fetch_sub(1, Ordering::Relaxed);
                                    progressed = true;
                                }
                            }
                            if progressed {
                                waiter.reset();
                            } else {
                                waiter.pause();
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        for w in workers {
            let _ = w.join();
        }
        // Every worker holding a clone has been joined, so this handle must
        // be the last one — losing outcomes here would silently report an
        // empty run (the old `try_unwrap(..).unwrap_or_default()` bug).
        assert_eq!(
            Arc::strong_count(&outcomes),
            1,
            "pool worker leaked an outcomes handle past join"
        );
        let collected = std::mem::take(&mut *outcomes.lock());
        collected.into()
    }
}

/// Mapper-partitioned pool: worker `w` exclusively runs the kernels whose
/// partition is `w` (no cross-worker claiming, so no slot contention); each
/// worker round-robins its own kernels with readiness gating.
pub struct PartitionedPool {
    /// `partition[k]` = worker index owning kernel `k`.
    pub partition: Vec<usize>,
    /// Number of worker threads.
    pub workers: usize,
    /// Record per-run timing.
    pub timing: bool,
    /// `run()` calls per visit.
    pub quantum: u32,
}

impl Scheduler for PartitionedPool {
    fn execute(&self, runners: Vec<KernelRunner>, stop: Arc<AtomicBool>) -> SchedulerOutput {
        assert_eq!(self.partition.len(), runners.len());
        let workers = self.workers.max(1);
        // Group runners per worker.
        let mut groups: Vec<Vec<KernelRunner>> = (0..workers).map(|_| Vec::new()).collect();
        for (runner, &p) in runners.into_iter().zip(&self.partition) {
            groups[p.min(workers - 1)].push(runner);
        }
        let timing = self.timing;
        let quantum = self.quantum.max(1);
        let threads: Vec<_> = groups
            .into_iter()
            .enumerate()
            .map(|(w, mut mine)| {
                let stop = stop.clone();
                std::thread::Builder::new()
                    .name(format!("raft-part-{w}"))
                    .spawn(move || {
                        let mut outcomes = Vec::with_capacity(mine.len());
                        let mut waiter = Waiter::new(POOL_IDLE);
                        while !mine.is_empty() {
                            let mut progressed = false;
                            let mut i = 0;
                            while i < mine.len() {
                                if !CooperativePool::ready(&mine[i]) {
                                    mine[i].journal_flush();
                                    i += 1;
                                    continue;
                                }
                                let mut finished: Option<StepDone> = None;
                                for _ in 0..quantum {
                                    match step(&mut mine[i], timing) {
                                        Some(done) => {
                                            finished = Some(done);
                                            break;
                                        }
                                        None => {
                                            progressed = true;
                                            if let Some(done) = stop_winddown(&mut mine[i], &stop) {
                                                finished = Some(done);
                                                break;
                                            }
                                            if !CooperativePool::ready(&mine[i]) {
                                                mine[i].journal_flush();
                                                break;
                                            }
                                        }
                                    }
                                }
                                if let Some(done) = finished {
                                    let runner = mine.swap_remove(i);
                                    let name = runner.name.clone();
                                    drop(runner);
                                    if done.fatal {
                                        stop.store(true, Ordering::Relaxed);
                                    }
                                    outcomes.push(RunnerOutcome {
                                        name,
                                        outcome: done.outcome,
                                        fatal: done.fatal,
                                    });
                                    progressed = true;
                                } else {
                                    i += 1;
                                }
                            }
                            if progressed {
                                waiter.reset();
                            } else {
                                waiter.pause();
                            }
                        }
                        outcomes
                    })
                    .expect("spawn partition worker")
            })
            .collect();
        let mut all = Vec::new();
        for t in threads {
            if let Ok(mut o) = t.join() {
                all.append(&mut o);
            }
        }
        all.into()
    }
}

/// Cache-aware chained pool: identical claiming/readiness machinery to
/// [`CooperativePool`], but after a kernel makes progress the worker jumps
/// straight to that kernel's successors (depth-first down the pipeline)
/// instead of resuming the round-robin sweep — data written to a stream is
/// consumed while the cache lines are still warm.
pub struct ChainedPool {
    /// Worker thread count.
    pub workers: usize,
    /// Record per-run timing.
    pub timing: bool,
    /// `run()` calls per claim.
    pub quantum: u32,
}

impl Scheduler for ChainedPool {
    fn execute(&self, runners: Vec<KernelRunner>, stop: Arc<AtomicBool>) -> SchedulerOutput {
        let n = runners.len();
        let successors: Vec<Vec<usize>> = runners.iter().map(|r| r.successors.clone()).collect();
        let slots: Arc<Vec<Mutex<PoolSlot>>> = Arc::new(
            runners
                .into_iter()
                .map(|r| Mutex::new(PoolSlot { runner: Some(r) }))
                .collect(),
        );
        let outcomes: Arc<Mutex<Vec<RunnerOutcome>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        let remaining = Arc::new(AtomicU64::new(n as u64));
        let timing = self.timing;
        let quantum = self.quantum.max(1);
        let successors = Arc::new(successors);

        let workers: Vec<_> = (0..self.workers.max(1))
            .map(|w| {
                let slots = slots.clone();
                let outcomes = outcomes.clone();
                let remaining = remaining.clone();
                let stop = stop.clone();
                let successors = successors.clone();
                std::thread::Builder::new()
                    .name(format!("raft-chain-{w}"))
                    .spawn(move || {
                        let mut waiter = Waiter::new(POOL_IDLE);
                        // Start each worker at a different offset so they
                        // begin on different chains.
                        let mut cursor = w % slots.len().max(1);
                        while remaining.load(Ordering::Relaxed) > 0 {
                            let mut progressed = false;
                            // One full sweep, but each productive kernel
                            // chains into its successors first.
                            for probe in 0..slots.len() {
                                let start = (cursor + probe) % slots.len();
                                // Depth-first chain walk from `start`.
                                let mut chain = vec![start];
                                while let Some(i) = chain.pop() {
                                    let Some(mut guard) = slots[i].try_lock() else {
                                        continue;
                                    };
                                    let Some(runner) = guard.runner.as_mut() else {
                                        continue;
                                    };
                                    if !CooperativePool::ready(runner) {
                                        runner.journal_flush();
                                        continue;
                                    }
                                    let mut finished: Option<StepDone> = None;
                                    for _ in 0..quantum {
                                        match step(runner, timing) {
                                            Some(done) => {
                                                finished = Some(done);
                                                break;
                                            }
                                            None => {
                                                progressed = true;
                                                if let Some(done) = stop_winddown(runner, &stop) {
                                                    finished = Some(done);
                                                    break;
                                                }
                                                if !CooperativePool::ready(runner) {
                                                    runner.journal_flush();
                                                    break;
                                                }
                                            }
                                        }
                                    }
                                    if let Some(done) = finished {
                                        let runner = guard.runner.take().unwrap();
                                        let name = runner.name.clone();
                                        drop(runner);
                                        if done.fatal {
                                            stop.store(true, Ordering::Relaxed);
                                        }
                                        outcomes.lock().push(RunnerOutcome {
                                            name,
                                            outcome: done.outcome,
                                            fatal: done.fatal,
                                        });
                                        remaining.fetch_sub(1, Ordering::Relaxed);
                                        progressed = true;
                                    } else if progressed {
                                        // Chase the data downstream: the
                                        // cache-aware step.
                                        for &s in &successors[i] {
                                            chain.push(s);
                                        }
                                    }
                                    drop(guard);
                                }
                            }
                            cursor = (cursor + 1) % slots.len().max(1);
                            if progressed {
                                waiter.reset();
                            } else {
                                waiter.pause();
                            }
                        }
                    })
                    .expect("spawn chained worker")
            })
            .collect();
        for w in workers {
            let _ = w.join();
        }
        // See CooperativePool: all clones joined, so losing outcomes here
        // is a bug, not a condition to default away.
        assert_eq!(
            Arc::strong_count(&outcomes),
            1,
            "chained worker leaked an outcomes handle past join"
        );
        let collected = std::mem::take(&mut *outcomes.lock());
        collected.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kind_is_copy() {
        let k = SchedulerKind::Pool { workers: 2 };
        let k2 = k;
        assert_eq!(k, k2);
        let c = SchedulerKind::Chained { workers: 1 };
        assert_ne!(k, c);
    }
}
