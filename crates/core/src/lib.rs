#![warn(missing_docs)]

//! # raftlib
//!
//! A Rust stream-parallel processing runtime reproducing **RaftLib: A C++
//! Template Library for High Performance Stream Parallel Processing**
//! (Beard, Li & Chamberlain, PMAM'15).
//!
//! An application is a set of sequential [`Kernel`]s joined by FIFO streams.
//! Kernels declare typed, named ports; a [`RaftMap`] wires them together
//! ([`RaftMap::link`], with link-time type checking) and [`RaftMap::exe`]
//! runs the graph: streams are allocated, kernels are scheduled (one OS
//! thread each by default, or a cooperative pool), a monitor thread resizes
//! queues dynamically (writer blocked ≥ 3δ → grow; read request beyond
//! capacity → grow; sustained emptiness → shrink), and eligible kernels are
//! replicated automatically behind split/reduce adapters.
//!
//! ```
//! use raftlib::prelude::*;
//!
//! // The paper's Figure 1-3 "sum" application.
//! struct Sum;
//! impl Kernel for Sum {
//!     fn ports(&self) -> PortSpec {
//!         PortSpec::new()
//!             .input::<i64>("input_a")
//!             .input::<i64>("input_b")
//!             .output::<i64>("sum")
//!     }
//!     fn run(&mut self, ctx: &Context) -> KStatus {
//!         let mut a = ctx.input::<i64>("input_a");
//!         let mut b = ctx.input::<i64>("input_b");
//!         match (a.pop(), b.pop()) {
//!             (Ok(x), Ok(y)) => {
//!                 drop((a, b));
//!                 let mut out = ctx.output::<i64>("sum");
//!                 if out.push(x + y).is_err() { return KStatus::Stop; }
//!                 KStatus::Proceed
//!             }
//!             _ => KStatus::Stop,
//!         }
//!     }
//! }
//!
//! let mut map = RaftMap::new();
//! let mut n = 0i64;
//! let gen_a = map.add(lambda_source(move || { n += 1; (n <= 5).then_some(n) }));
//! let mut m = 0i64;
//! let gen_b = map.add(lambda_source(move || { m += 1; (m <= 5).then_some(m * 10) }));
//! let sum = map.add(Sum);
//! let sink = map.add(lambda_sink(|v: i64| println!("{v}")));
//! map.link(gen_a, "0", sum, "input_a").unwrap();
//! map.link(gen_b, "0", sum, "input_b").unwrap();
//! map.link(sum, "sum", sink, "0").unwrap();
//! let report = map.exe().unwrap();
//! assert_eq!(report.edge("sum").unwrap().stats.popped, 5);
//! ```
//!
//! The crates around this one complete the reproduction: `raft-buffer`
//! (resizable lock-free FIFOs), `raft-kernels` (standard kernel library),
//! `raft-algos` (search algorithms & workloads), `raft-model` (queueing /
//! flow models), `raft-net` (TCP links and the "oar" mesh), `raft-bench`
//! (every table and figure of the paper's evaluation).

pub mod affinity;
pub mod algoset;
pub mod analysis;
pub mod check;
pub mod diagnostics;
pub mod error;
pub mod kernel;
pub mod lambda;
pub mod map;
pub mod mapper;
pub mod monitor;
pub mod parallel;
pub mod port;
pub mod proc;
pub mod report;
pub mod runtime;
pub mod scheduler;
pub mod steal;
pub mod stealing;
pub mod supervise;

pub use algoset::{AlgoSet, AlgoSwitch};
pub use analysis::{
    classify, Analysis, CycleInfo, CycleVerdict, FusedGroupReport, FusionConfig, FusionGroup,
    GraphView, KernelClassification,
};
pub use check::{passes, CheckConfig, LintPass};
pub use diagnostics::{Diagnostic, Severity};
pub use error::{ExeError, LinkError, PortClosed};
pub use kernel::{
    per_element, per_element_filter, BatchKernel, ErasedBatchStage, KStatus, Kernel, PortDef,
    PortSpec,
};
pub use lambda::{lambda_map, lambda_sink, lambda_source, LambdaKernel};
pub use map::{ExeOpts, KernelId, MapConfig, ParallelConfig, RaftMap, StopHandle};
pub use monitor::{
    MonitorConfig, ResizeEvent, ResizeReason, WatchdogEvent, WatchdogKind, WidthEvent,
};
pub use parallel::{Reduce, Split, SplitStrategy, WidthControl};
pub use port::{Context, InPort, OutPort};
pub use proc::{
    DescLink, JournaledRingLink, ProcLink, ProcPolicy, ProcReport, ProcSupervisor, SegmentLink,
    WorkerSpec,
};
pub use report::render as render_report;
pub use runtime::{DrainEvent, DrainReason, EdgeReport, ExeReport, KernelReport};
pub use scheduler::{SchedulerKind, WorkerReport};
pub use supervise::{KernelOutcome, SupervisorPolicy};

// Re-export the signal and FIFO config types users meet at the API surface.
pub use raft_buffer::{AdmissionPolicy, FifoConfig, JournalConfig, LinkAlloc, Signal};

/// Everything needed to write and run a streaming application.
pub mod prelude {
    pub use crate::algoset::{AlgoSet, AlgoSwitch};
    pub use crate::analysis::KernelClassification;
    pub use crate::analysis::{FusedGroupReport, FusionConfig};
    pub use crate::check::CheckConfig;
    pub use crate::diagnostics::{Diagnostic, Severity};
    pub use crate::error::{ExeError, LinkError, PortClosed};
    pub use crate::kernel::{BatchKernel, KStatus, Kernel, PortSpec};
    pub use crate::lambda::{lambda_map, lambda_sink, lambda_source, LambdaKernel};
    pub use crate::map::{ExeOpts, KernelId, MapConfig, ParallelConfig, RaftMap, StopHandle};
    pub use crate::monitor::{MonitorConfig, WatchdogEvent, WatchdogKind};
    pub use crate::parallel::SplitStrategy;
    pub use crate::port::{Context, InPort, OutPort};
    pub use crate::proc::{ProcPolicy, ProcReport, ProcSupervisor, WorkerSpec};
    pub use crate::runtime::{DrainEvent, DrainReason, ExeReport};
    pub use crate::scheduler::SchedulerKind;
    pub use crate::supervise::{KernelOutcome, SupervisorPolicy};
    pub use raft_buffer::{AdmissionPolicy, FifoConfig, JournalConfig, LinkAlloc, Signal};
}
