//! Best-effort CPU affinity for pinned scheduler workers.
//!
//! `SchedulerKind::Stealing { pin: true, .. }` asks each worker thread to
//! pin itself to one core so the mapper's placement survives OS migration
//! (cache affinity for the kernels initially placed there). The workspace
//! carries no libc binding, so on Linux this issues the `sched_setaffinity`
//! syscall directly; everywhere else it is a no-op returning `false`.
//! Pinning is a hint — failure (e.g. a cpuset that excludes the requested
//! core) degrades to an unpinned worker, never an error.

/// Pin the *calling thread* to `core` (0-based). Returns `true` on success,
/// `false` when pinning is unsupported on this platform or the kernel
/// rejected the mask.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(core: usize) -> bool {
    // cpu_set_t is 1024 bits = 128 bytes = 16 u64 words on Linux.
    let mut mask = [0u64; 16];
    if core >= 1024 {
        return false;
    }
    mask[core / 64] = 1u64 << (core % 64);
    let ret: isize;
    // SAFETY: sched_setaffinity(pid=0 → calling thread, len, *mask) reads
    // `len` bytes from the pointer and touches nothing else; the mask is a
    // live, properly sized stack array, and the asm clobbers match the
    // x86_64 Linux syscall ABI (rcx/r11 clobbered, rax returns).
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,                 // pid 0 = current thread
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Pinning is unsupported on this platform; always `false`.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

/// Number of cores available for pinning (parallelism hint).
pub fn core_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_core_zero_succeeds_or_degrades() {
        // Core 0 always exists; on Linux this should pin, elsewhere return
        // false. Either way the call must not crash or error out the test.
        let pinned = pin_current_thread(0);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(pinned, "pinning to core 0 failed on Linux");
        } else {
            assert!(!pinned);
        }
    }

    #[test]
    fn out_of_range_core_is_rejected() {
        assert!(!pin_current_thread(100_000));
    }

    #[test]
    fn core_count_is_positive() {
        assert!(core_count() >= 1);
    }
}
