//! Application topology assembly — the paper's `raft::map`.
//!
//! Kernels are added to a [`RaftMap`] and wired with [`RaftMap::link`]
//! (Figure 3). Linking performs the checks the paper describes for `exe()`:
//! the port must exist, must not be double-connected, and the element types
//! at both ends must match (template-level type checking in C++; `TypeId`
//! equality here, so a mismatch is an `Err` at link time rather than a
//! runtime fault).
//!
//! Streams are *ordered* by default; [`RaftMap::link_unordered`] marks a
//! stream as safe for out-of-order delivery, which is the user-supplied
//! signal (§4.1: "indicated by the user at link type") that lets the
//! auto-parallelizer replicate the kernels on either end.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use raft_buffer::{FifoConfig, DRAIN_DRAINING, DRAIN_QUIESCED};

use crate::analysis::fusion::FusionConfig;
use crate::check::CheckConfig;
use crate::diagnostics::{Diagnostic, Severity};
use crate::error::LinkError;
use crate::kernel::{Kernel, PortSpec};
use crate::monitor::MonitorConfig;
use crate::parallel::SplitStrategy;
use crate::runtime;
use crate::runtime::ExeReport;
use crate::scheduler::SchedulerKind;
use crate::supervise::SupervisorPolicy;

/// Handle to a kernel inside a [`RaftMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelId(pub(crate) usize);

/// Global execution configuration.
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// Default FIFO configuration for every stream (overridable per link).
    pub fifo: FifoConfig,
    /// Monitor thread configuration (δ, resize rules, optimizer).
    pub monitor: MonitorConfig,
    /// Which scheduler executes the kernels.
    pub scheduler: SchedulerKind,
    /// Automatic parallelization settings.
    pub parallel: ParallelConfig,
    /// Static checker settings (lint severities and thresholds).
    pub check: CheckConfig,
    /// Kernel-fusion pass settings (chains of stateless single-in/
    /// single-out kernels collapse into one batch-executed kernel).
    pub fusion: FusionConfig,
    /// Grace period of the drain ladder: how long the runtime waits after
    /// raising drain level 1 (sources stop, in-flight data flushes) before
    /// escalating to level 2 (FIFOs fail fast) when the graph has not
    /// finished on its own. Applies to watchdog deadlines and
    /// [`StopHandle`] requests alike.
    pub drain_grace: Duration,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            fifo: FifoConfig::default(),
            monitor: MonitorConfig::default(),
            scheduler: SchedulerKind::ThreadPerKernel,
            parallel: ParallelConfig::default(),
            check: CheckConfig::default(),
            fusion: FusionConfig::default(),
            drain_grace: Duration::from_millis(500),
        }
    }
}

/// Cooperative shutdown lever for a live graph.
///
/// Obtained from [`RaftMap::stop_handle`] *before* `exe()` consumes the
/// map; cloneable and `Send`, so a controller thread can stop a running
/// pipeline from outside. Requests are monotonic — the drain ladder only
/// ever goes up:
///
/// 1. [`StopHandle::drain`] — sources stop producing, in-flight data
///    flushes to the sinks (clean, lossless).
/// 2. [`StopHandle::quiesce`] — additionally, blocked FIFO operations fail
///    fast (pushes error, pops observe end-of-stream), unsticking kernels
///    that would never drain on their own. The runtime escalates from 1 to
///    2 by itself after [`MapConfig::drain_grace`].
#[derive(Debug, Clone)]
pub struct StopHandle {
    requested: Arc<AtomicU8>,
}

impl StopHandle {
    /// Request a cooperative drain (ladder level 1).
    pub fn drain(&self) {
        self.requested.fetch_max(DRAIN_DRAINING, Ordering::SeqCst);
    }

    /// Request an immediate quiesce (ladder level 2).
    pub fn quiesce(&self) {
        self.requested.fetch_max(DRAIN_QUIESCED, Ordering::SeqCst);
    }

    /// Highest level requested so far.
    pub fn requested_level(&self) -> u8 {
        self.requested.load(Ordering::SeqCst)
    }
}

/// Per-execution overrides applied on top of [`MapConfig`] by
/// [`RaftMap::exe_opts`] — the A/B-benchmarking surface: run the same map
/// fused and unfused without rebuilding it or touching the environment.
/// (`RAFT_FUSION` / `RAFT_FUSION_BATCH` environment variables override
/// both in turn, so a deployed binary can be flipped without recompiling.)
#[derive(Debug, Clone, Default)]
pub struct ExeOpts {
    /// Override [`FusionConfig::enabled`] for this run.
    pub fusion: Option<bool>,
    /// Override [`FusionConfig::batch`] for this run (clamped to ≥ 1).
    pub fusion_batch: Option<usize>,
    /// Watchdog deadline, as in [`RaftMap::exe_with_timeout`].
    pub deadline: Option<Duration>,
}

/// Auto-parallelization settings (§4.1).
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Replicate eligible kernels automatically at `exe()`.
    pub enabled: bool,
    /// Maximum replica count per kernel (defaults to available
    /// parallelism).
    pub max_width: u32,
    /// How split adapters distribute work.
    pub strategy: SplitStrategy,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            enabled: false,
            max_width: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            strategy: SplitStrategy::RoundRobin,
        }
    }
}

pub(crate) struct KernelEntry {
    pub kernel: Box<dyn Kernel>,
    pub spec: PortSpec,
    pub name: String,
    /// User-requested replica width (None = let the runtime decide when
    /// auto-parallelization is on).
    pub width_hint: Option<u32>,
    /// Initial *active* width when a range was requested (replicas are
    /// built to `width_hint`, the optimizer widens from here).
    pub start_width: Option<u32>,
    /// Declared steady-state service rate (items/sec) for the `RC0007`
    /// capacity-feasibility lint; `None` = undeclared (pass skips).
    pub service_rate: Option<f64>,
    /// What the scheduler does if this kernel's `run()` panics
    /// (default: abort the whole map — the pre-supervision behavior).
    pub policy: SupervisorPolicy,
    /// Per-instance statelessness override for the `RC0009`/`RC0010`
    /// analysis passes; `None` defers to [`Kernel::is_stateless`].
    pub stateless: Option<bool>,
}

impl KernelEntry {
    /// Effective statelessness: the per-instance declaration when present,
    /// otherwise the kernel's own [`Kernel::is_stateless`].
    pub fn is_stateless(&self) -> bool {
        self.stateless.unwrap_or_else(|| self.kernel.is_stateless())
    }
}

#[derive(Debug, Clone)]
pub(crate) struct LinkEntry {
    pub src: usize,
    pub src_port: usize,
    pub dst: usize,
    pub dst_port: usize,
    /// `false` once the user declared the stream out-of-order safe.
    pub ordered: bool,
    /// Per-link FIFO override.
    pub fifo: Option<FifoConfig>,
}

/// The application map: kernels + streams + configuration.
pub struct RaftMap {
    pub(crate) kernels: Vec<KernelEntry>,
    pub(crate) links: Vec<LinkEntry>,
    pub(crate) cfg: MapConfig,
    /// Drain level requested through [`StopHandle`]s (the runtime's ladder
    /// polls this while the graph runs).
    pub(crate) drain_request: Arc<AtomicU8>,
}

impl Default for RaftMap {
    fn default() -> Self {
        Self::new()
    }
}

impl RaftMap {
    /// Empty map with default configuration.
    pub fn new() -> Self {
        Self::with_config(MapConfig::default())
    }

    /// Empty map with explicit configuration.
    pub fn with_config(cfg: MapConfig) -> Self {
        RaftMap {
            kernels: Vec::new(),
            links: Vec::new(),
            cfg,
            drain_request: Arc::new(AtomicU8::new(0)),
        }
    }

    /// A [`StopHandle`] for shutting this map down after `exe()` starts.
    /// Take as many as needed before calling `exe()`; they all drive the
    /// same drain ladder.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            requested: self.drain_request.clone(),
        }
    }

    /// Mutable access to the configuration (before `exe`).
    pub fn config_mut(&mut self) -> &mut MapConfig {
        &mut self.cfg
    }

    /// Add a kernel; returns its handle. The analog of `kernel::make<>` in
    /// Figure 3.
    pub fn add<K: Kernel>(&mut self, kernel: K) -> KernelId {
        self.add_boxed(Box::new(kernel))
    }

    /// Add an already-boxed kernel.
    pub fn add_boxed(&mut self, kernel: Box<dyn Kernel>) -> KernelId {
        let spec = kernel.ports();
        let name = format!("{}#{}", kernel.name(), self.kernels.len());
        self.kernels.push(KernelEntry {
            kernel,
            spec,
            name,
            width_hint: None,
            start_width: None,
            service_rate: None,
            policy: SupervisorPolicy::Abort,
            stateless: None,
        });
        KernelId(self.kernels.len() - 1)
    }

    /// Set the supervision policy for `kernel`: what the scheduler does if
    /// its `run()` panics. The default, [`SupervisorPolicy::Abort`], fails
    /// the whole map; [`SupervisorPolicy::Skip`] drops the kernel and lets
    /// the pipeline drain; [`SupervisorPolicy::restart`] /
    /// [`SupervisorPolicy::replace`] rebuild it in place on its live
    /// streams.
    ///
    /// ```
    /// # use raftlib::prelude::*;
    /// # use raftlib::SupervisorPolicy;
    /// # let mut map = RaftMap::new();
    /// # let k = map.add(lambda_source(|| None::<i64>));
    /// map.supervise(k, SupervisorPolicy::restart(3));
    /// ```
    pub fn supervise(&mut self, kernel: KernelId, policy: SupervisorPolicy) {
        self.kernels[kernel.0].policy = policy;
    }

    /// The supervision policy currently set for `kernel`.
    pub fn policy(&self, kernel: KernelId) -> &SupervisorPolicy {
        &self.kernels[kernel.0].policy
    }

    /// Declare the expected steady-state service rate of `kernel`
    /// (items/sec). Purely advisory: the `RC0007` capacity lint uses the
    /// declared rates of a stream's two endpoints to estimate, via an
    /// M/M/1/K model, whether the stream's configured capacity ceiling can
    /// sustain the flow — turning a runtime stall into a pre-`exe()`
    /// warning.
    pub fn declare_service_rate(&mut self, kernel: KernelId, items_per_sec: f64) {
        self.kernels[kernel.0].service_rate = Some(items_per_sec);
    }

    /// Declare that `kernel` is stateless: its output for an item does not
    /// depend on previously-seen items. The `RC0009` replication-safety and
    /// `RC0010` supervision-soundness passes treat stateless kernels as safe
    /// to restart after a panic and safe to replicate behind an
    /// out-of-order split. Overrides [`Kernel::is_stateless`] for this
    /// instance only.
    pub fn declare_stateless(&mut self, kernel: KernelId) {
        self.kernels[kernel.0].stateless = Some(true);
    }

    /// Request that `kernel` run with `width` parallel replicas (subject to
    /// eligibility: single in/out, replicable, unordered links). A width
    /// hint of 1 pins the kernel sequential even under auto-parallelism.
    pub fn prefer_width(&mut self, kernel: KernelId, width: u32) {
        self.kernels[kernel.0].width_hint = Some(width.max(1));
        self.kernels[kernel.0].start_width = None;
    }

    /// Like [`RaftMap::prefer_width`], but start with only `start` replicas
    /// active: the monitor's optimizer widens toward `max` while the
    /// kernel's input stream stays backed up — the paper's dynamic
    /// bottleneck elimination (§3: "Raft dynamically monitors the system to
    /// eliminate the bottlenecks where possible").
    pub fn prefer_width_range(&mut self, kernel: KernelId, start: u32, max: u32) {
        let max = max.max(1);
        self.kernels[kernel.0].width_hint = Some(max);
        self.kernels[kernel.0].start_width = Some(start.clamp(1, max));
    }

    /// Display name of a kernel (for reports).
    pub fn kernel_name(&self, kernel: KernelId) -> &str {
        &self.kernels[kernel.0].name
    }

    fn resolve(
        &self,
        id: KernelId,
        port: &str,
        is_input: bool,
    ) -> Result<(usize, usize), LinkError> {
        let entry = self
            .kernels
            .get(id.0)
            .ok_or_else(|| LinkError::NoSuchKernel(format!("#{}", id.0)))?;
        let defs = if is_input {
            &entry.spec.inputs
        } else {
            &entry.spec.outputs
        };
        let idx =
            defs.iter()
                .position(|p| p.name == port)
                .ok_or_else(|| LinkError::NoSuchPort {
                    kernel: entry.name.clone(),
                    port: port.to_string(),
                    available: defs.iter().map(|p| p.name.clone()).collect(),
                })?;
        Ok((id.0, idx))
    }

    fn link_inner(
        &mut self,
        src: KernelId,
        src_port: &str,
        dst: KernelId,
        dst_port: &str,
        ordered: bool,
        fifo: Option<FifoConfig>,
    ) -> Result<(), LinkError> {
        if src == dst {
            return Err(LinkError::SelfLoop(self.kernels[src.0].name.clone()));
        }
        let (s, sp) = self.resolve(src, src_port, false)?;
        let (d, dp) = self.resolve(dst, dst_port, true)?;
        // One stream per port end.
        for l in &self.links {
            if l.src == s && l.src_port == sp {
                return Err(LinkError::AlreadyLinked {
                    kernel: self.kernels[s].name.clone(),
                    port: src_port.to_string(),
                });
            }
            if l.dst == d && l.dst_port == dp {
                return Err(LinkError::AlreadyLinked {
                    kernel: self.kernels[d].name.clone(),
                    port: dst_port.to_string(),
                });
            }
        }
        // Link-time type checking (§4.2).
        let so = &self.kernels[s].spec.outputs[sp];
        let di = &self.kernels[d].spec.inputs[dp];
        if so.type_id != di.type_id {
            return Err(LinkError::TypeMismatch {
                src: format!("{}.{}", self.kernels[s].name, src_port),
                dst: format!("{}.{}", self.kernels[d].name, dst_port),
                src_type: so.type_name,
                dst_type: di.type_name,
            });
        }
        self.links.push(LinkEntry {
            src: s,
            src_port: sp,
            dst: d,
            dst_port: dp,
            ordered,
            fifo,
        });
        Ok(())
    }

    /// Connect `src_port` of `src` to `dst_port` of `dst` with an ordered
    /// stream.
    pub fn link(
        &mut self,
        src: KernelId,
        src_port: &str,
        dst: KernelId,
        dst_port: &str,
    ) -> Result<(), LinkError> {
        self.link_inner(src, src_port, dst, dst_port, true, None)
    }

    /// Like [`RaftMap::link`], but declares the stream out-of-order safe —
    /// the eligibility signal for automatic kernel replication.
    pub fn link_unordered(
        &mut self,
        src: KernelId,
        src_port: &str,
        dst: KernelId,
        dst_port: &str,
    ) -> Result<(), LinkError> {
        self.link_inner(src, src_port, dst, dst_port, false, None)
    }

    /// Like [`RaftMap::link`] with a per-stream FIFO configuration
    /// (used by the Figure 4 harness to pin exact buffer sizes).
    pub fn link_with(
        &mut self,
        src: KernelId,
        src_port: &str,
        dst: KernelId,
        dst_port: &str,
        fifo: FifoConfig,
    ) -> Result<(), LinkError> {
        self.link_inner(src, src_port, dst, dst_port, true, Some(fifo))
    }

    /// Unordered link with a per-stream FIFO configuration.
    pub fn link_unordered_with(
        &mut self,
        src: KernelId,
        src_port: &str,
        dst: KernelId,
        dst_port: &str,
        fifo: FifoConfig,
    ) -> Result<(), LinkError> {
        self.link_inner(src, src_port, dst, dst_port, false, Some(fifo))
    }

    /// Apply a mapper placement to every link: classify each stream from
    /// the resources its endpoints landed on
    /// ([`crate::mapper::classify_link`] — heap within a process, shm
    /// across processes on one machine, TCP across machines) and record
    /// the choice in the link's FIFO configuration. Call after
    /// [`crate::mapper::map_kernels`], before `exe()`; `assignment[k]`
    /// is the resource of kernel `k` in insertion order.
    /// `RAFT_LINK_ALLOC` still overrides everything at `exe()` time.
    pub fn apply_placement(&mut self, assignment: &[crate::mapper::Resource]) {
        let default_fifo = self.cfg.fifo;
        for link in &mut self.links {
            let (Some(src), Some(dst)) = (assignment.get(link.src), assignment.get(link.dst))
            else {
                continue;
            };
            let alloc = crate::mapper::classify_link(src, dst);
            let cfg = link.fifo.get_or_insert(default_fifo);
            cfg.alloc = alloc;
        }
    }

    /// Convenience: connect two kernels that have exactly one output and
    /// one input port respectively (most pipeline stages).
    pub fn connect(&mut self, src: KernelId, dst: KernelId) -> Result<(), LinkError> {
        let sp = self.single_port_name(src, false)?;
        let dp = self.single_port_name(dst, true)?;
        self.link(src, &sp, dst, &dp)
    }

    /// [`RaftMap::connect`] with an out-of-order-safe stream.
    pub fn connect_unordered(&mut self, src: KernelId, dst: KernelId) -> Result<(), LinkError> {
        let sp = self.single_port_name(src, false)?;
        let dp = self.single_port_name(dst, true)?;
        self.link_unordered(src, &sp, dst, &dp)
    }

    fn single_port_name(&self, id: KernelId, is_input: bool) -> Result<String, LinkError> {
        let entry = self
            .kernels
            .get(id.0)
            .ok_or_else(|| LinkError::NoSuchKernel(format!("#{}", id.0)))?;
        let defs = if is_input {
            &entry.spec.inputs
        } else {
            &entry.spec.outputs
        };
        if defs.len() != 1 {
            return Err(LinkError::NoSuchPort {
                kernel: entry.name.clone(),
                port: "<single>".to_string(),
                available: defs.iter().map(|p| p.name.clone()).collect(),
            });
        }
        Ok(defs[0].name.clone())
    }

    /// Run every registered static-analysis pass over the topology and
    /// return the findings (errors first). `exe()` calls this and refuses
    /// to run when any [`Severity::Error`] diagnostic is present; calling
    /// it directly lets an application surface warnings (or render them
    /// with [`RaftMap::to_dot_with`]) before committing to execution.
    pub fn check(&self) -> Vec<Diagnostic> {
        crate::check::run_all(self)
    }

    /// Render the topology as Graphviz DOT — a quick visualization of what
    /// `exe()` will run (ports on edge labels, dashed = out-of-order-safe).
    pub fn to_dot(&self) -> String {
        self.to_dot_with(&[])
    }

    /// [`RaftMap::to_dot`], with diagnosed kernels and streams highlighted:
    /// anything named in an `Error` diagnostic is colored red, `Warn`
    /// orange, `Info` (e.g. an `RC0008` deadlock-freedom certificate) blue.
    /// Pass the output of [`RaftMap::check`]. A legend subgraph documents
    /// the edge styles (dashed = out-of-order-safe) and severity colors.
    pub fn to_dot_with(&self, diagnostics: &[Diagnostic]) -> String {
        use std::fmt::Write as _;
        // Worst severity per kernel/link index, if any.
        let mut kernel_sev: Vec<Option<Severity>> = vec![None; self.kernels.len()];
        let mut link_sev: Vec<Option<Severity>> = vec![None; self.links.len()];
        for d in diagnostics {
            for &k in &d.kernels {
                if let Some(slot) = kernel_sev.get_mut(k) {
                    *slot = Some(slot.map_or(d.severity, |s| s.max(d.severity)));
                }
            }
            for &l in &d.links {
                if let Some(slot) = link_sev.get_mut(l) {
                    *slot = Some(slot.map_or(d.severity, |s| s.max(d.severity)));
                }
            }
        }
        let color = |sev: Option<Severity>| match sev {
            Some(Severity::Error) => Some("red"),
            Some(Severity::Warn) => Some("orange"),
            Some(Severity::Info) => Some("blue"),
            None => None,
        };
        let mut out = String::from(
            "digraph raft {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(out, "  k{i} [label=\"{}\"", dot_escape(&k.name));
            if let Some(c) = color(kernel_sev[i]) {
                let _ = write!(out, ", color={c}, fontcolor={c}");
            }
            out.push_str("];\n");
        }
        for (li, l) in self.links.iter().enumerate() {
            let sp = &self.kernels[l.src].spec.outputs[l.src_port].name;
            let dp = &self.kernels[l.dst].spec.inputs[l.dst_port].name;
            let style = if l.ordered { "solid" } else { "dashed" };
            let _ = write!(
                out,
                "  k{} -> k{} [label=\"{}→{}\", style={}",
                l.src,
                l.dst,
                dot_escape(sp),
                dot_escape(dp),
                style
            );
            if let Some(c) = color(link_sev[li]) {
                let _ = write!(out, ", color={c}, fontcolor={c}");
            }
            out.push_str("];\n");
        }
        out.push_str(
            "  subgraph cluster_legend {\n    label=\"legend\";\n    fontsize=10;\n    \
             legend [shape=plaintext, label=\"solid edge: ordered stream\\l\
             dashed edge: out-of-order-safe stream\\l\
             red: error finding\\lorange: warning finding\\l\
             blue: info finding / RC0008 certificate\\l\"];\n  }\n",
        );
        out.push_str("}\n");
        out
    }

    /// Number of kernels currently in the map.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Number of streams currently in the map.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Validate, optimize, execute, and wait for completion — the paper's
    /// `map.exe()`. Consumes the map.
    pub fn exe(self) -> Result<ExeReport, crate::error::ExeError> {
        runtime::execute(self)
    }

    /// Execute with a watchdog: if the application does not finish within
    /// `timeout`, the cooperative stop flag is raised (sources observe it
    /// via `Context::stop_requested`) and execution joins as soon as the
    /// pipeline drains.
    pub fn exe_with_timeout(self, timeout: Duration) -> Result<ExeReport, crate::error::ExeError> {
        runtime::execute_with_deadline(self, Some(timeout))
    }

    /// [`RaftMap::exe`] with per-run overrides (fusion on/off, batch size,
    /// deadline) — see [`ExeOpts`].
    pub fn exe_opts(mut self, opts: ExeOpts) -> Result<ExeReport, crate::error::ExeError> {
        if let Some(enabled) = opts.fusion {
            self.cfg.fusion.enabled = enabled;
        }
        if let Some(batch) = opts.fusion_batch {
            self.cfg.fusion.batch = batch.max(1);
        }
        runtime::execute_with_deadline(self, opts.deadline)
    }
}

/// Escape a string for use inside a double-quoted DOT label: `\` and `"`
/// would otherwise terminate or corrupt the label. Newlines become DOT
/// line breaks. Used for both node and edge labels.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KStatus, PortSpec};
    use crate::port::Context;

    struct Producer1;
    impl Kernel for Producer1 {
        fn ports(&self) -> PortSpec {
            PortSpec::new().output::<u32>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    struct Consumer1;
    impl Kernel for Consumer1 {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u32>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    struct ConsumerI64;
    impl Kernel for ConsumerI64 {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<i64>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    #[test]
    fn link_happy_path() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        m.link(p, "out", c, "in").unwrap();
        assert_eq!(m.link_count(), 1);
    }

    #[test]
    fn connect_single_ports() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        m.connect(p, c).unwrap();
        assert_eq!(m.link_count(), 1);
    }

    #[test]
    fn type_mismatch_detected_at_link_time() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(ConsumerI64);
        let err = m.link(p, "out", c, "in").unwrap_err();
        assert!(matches!(err, LinkError::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn unknown_port_rejected() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        let err = m.link(p, "nope", c, "in").unwrap_err();
        assert!(matches!(err, LinkError::NoSuchPort { .. }), "{err}");
    }

    #[test]
    fn double_link_rejected() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c1 = m.add(Consumer1);
        let c2 = m.add(Consumer1);
        m.link(p, "out", c1, "in").unwrap();
        let err = m.link(p, "out", c2, "in").unwrap_err();
        assert!(matches!(err, LinkError::AlreadyLinked { .. }), "{err}");
    }

    #[test]
    fn self_loop_rejected() {
        struct Loopy;
        impl Kernel for Loopy {
            fn ports(&self) -> PortSpec {
                PortSpec::new().input::<u32>("in").output::<u32>("out")
            }
            fn run(&mut self, _ctx: &Context) -> KStatus {
                KStatus::Stop
            }
        }
        let mut m = RaftMap::new();
        let k = m.add(Loopy);
        let err = m.link(k, "out", k, "in").unwrap_err();
        assert!(matches!(err, LinkError::SelfLoop(_)));
    }

    #[test]
    fn dot_export_includes_kernels_and_edges() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        m.link(p, "out", c, "in").unwrap();
        let dot = m.to_dot();
        assert!(dot.starts_with("digraph raft {"));
        assert!(dot.contains("k0 -> k1"));
        assert!(dot.contains("out→in"));
        assert!(dot.contains("style=solid"));
    }

    #[test]
    fn dot_marks_unordered_links_dashed() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        m.link_unordered(p, "out", c, "in").unwrap();
        assert!(m.to_dot().contains("style=dashed"));
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut m = RaftMap::new();
        let a = m.add(Producer1);
        let b = m.add(Producer1);
        assert_ne!(m.kernel_name(a), m.kernel_name(b));
    }

    #[test]
    fn dot_escape_handles_quotes_backslashes_newlines() {
        assert_eq!(dot_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(dot_escape(r"a\b"), r"a\\b");
        assert_eq!(dot_escape("a\nb"), r"a\nb");
        assert_eq!(dot_escape("plain"), "plain");
    }

    #[test]
    fn dot_export_escapes_hostile_kernel_names() {
        struct Evil;
        impl Kernel for Evil {
            fn ports(&self) -> PortSpec {
                PortSpec::new().output::<u32>("out")
            }
            fn run(&mut self, _ctx: &Context) -> KStatus {
                KStatus::Stop
            }
            fn name(&self) -> String {
                "ev\"il\\k".to_string()
            }
        }
        let mut m = RaftMap::new();
        let e = m.add(Evil);
        let c = m.add(Consumer1);
        m.link(e, "out", c, "in").unwrap();
        let dot = m.to_dot();
        assert!(dot.contains(r#"ev\"il\\k"#), "{dot}");
        // No unescaped quote may remain inside the label.
        assert!(!dot.contains(r#"label="ev"il"#), "{dot}");
    }

    #[test]
    fn dot_with_diagnostics_colors_offenders() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        m.link(p, "out", c, "in").unwrap();
        let diags = vec![
            crate::diagnostics::Diagnostic::new(
                "RC0003",
                "cycle",
                crate::diagnostics::Severity::Error,
                "test",
            )
            .with_kernel(0)
            .with_link(0),
            crate::diagnostics::Diagnostic::new(
                "RC0007",
                "capacity",
                crate::diagnostics::Severity::Warn,
                "test",
            )
            .with_kernel(1),
        ];
        let dot = m.to_dot_with(&diags);
        assert!(
            dot.contains("k0 [label=\"Producer1#0\", color=red"),
            "{dot}"
        );
        assert!(
            dot.contains("k1 [label=\"Consumer1#1\", color=orange"),
            "{dot}"
        );
        assert!(dot.contains("style=solid, color=red"), "{dot}");
        // Plain export stays uncolored.
        assert!(!m.to_dot().contains("color=red"));
    }

    #[test]
    fn declared_rates_are_stored() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        m.declare_service_rate(p, 1000.0);
        assert_eq!(m.kernels[p.0].service_rate, Some(1000.0));
    }

    #[test]
    fn dot_info_findings_color_blue_and_legend_present() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        let c = m.add(Consumer1);
        m.link(p, "out", c, "in").unwrap();
        let diags = vec![crate::diagnostics::Diagnostic::new(
            "RC0008",
            "feedback-deadlock",
            crate::diagnostics::Severity::Info,
            "certified",
        )
        .with_kernel(0)
        .with_link(0)];
        let dot = m.to_dot_with(&diags);
        assert!(
            dot.contains("k0 [label=\"Producer1#0\", color=blue"),
            "{dot}"
        );
        assert!(dot.contains("style=solid, color=blue"), "{dot}");
        // Legend is always emitted, documenting dashed OOO edges.
        assert!(dot.contains("cluster_legend"), "{dot}");
        assert!(
            dot.contains("dashed edge: out-of-order-safe stream"),
            "{dot}"
        );
        assert!(m.to_dot().contains("cluster_legend"));
    }

    #[test]
    fn declared_statelessness_overrides_trait_default() {
        let mut m = RaftMap::new();
        let p = m.add(Producer1);
        assert!(!m.kernels[p.0].is_stateless());
        m.declare_stateless(p);
        assert!(m.kernels[p.0].is_stateless());
    }
}
