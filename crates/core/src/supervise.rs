//! Per-kernel supervision policies — what the runtime does when a kernel
//! misbehaves.
//!
//! The paper's runtime assumes well-behaved kernels; a panic inside `run()`
//! historically tore down the whole map. Streaming deployments need bounded
//! reactions instead (cf. "Run Time Approximation of Non-blocking Service
//! Rates for Streaming Systems" and "Pacing Types: Safe Monitoring of
//! Asynchronous Streams"): restart the stage, or drop it and let the rest
//! of the pipeline drain. [`SupervisorPolicy`] is configured per kernel via
//! [`RaftMap::supervise`](crate::map::RaftMap::supervise); the default
//! [`SupervisorPolicy::Abort`] preserves the original fail-fast behavior
//! exactly.
//!
//! The scheduler consults the policy inside its `step()` loop, so recovery
//! happens in place: the kernel's [`Context`](crate::port::Context) — its
//! live ports — is untouched, and a restarted/replaced kernel resumes on
//! the same streams with whatever data is still queued.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::kernel::Kernel;

/// Factory producing a fresh kernel instance for [`SupervisorPolicy::Replace`].
pub type KernelFactory = Arc<dyn Fn() -> Box<dyn Kernel> + Send + Sync>;

/// What the scheduler does when a kernel's `run()` panics.
#[derive(Clone, Default)]
pub enum SupervisorPolicy {
    /// Fail fast (the default): post `Signal::Error` downstream, raise the
    /// global stop flag, and make `exe()` return
    /// [`ExeError::KernelPanicked`](crate::error::ExeError::KernelPanicked).
    #[default]
    Abort,
    /// Drop the kernel but keep the pipeline alive: its output streams
    /// close, EoS propagates, downstream kernels drain and sinks flush
    /// partial results. The kernel is reported as
    /// [`KernelOutcome::Skipped`].
    Skip,
    /// Restart the kernel in place, up to `max_restarts` times, sleeping
    /// `backoff * 2^attempt` between attempts. A fresh instance is built
    /// with [`Kernel::clone_replica`] when the kernel supports it;
    /// otherwise the existing instance is re-entered (its state is
    /// whatever the panic left behind — implement `clone_replica` for
    /// clean-slate restarts). Exhausting the budget degrades to [`Skip`]
    /// with a [`KernelOutcome::Aborted`] report.
    ///
    /// [`Skip`]: SupervisorPolicy::Skip
    Restart {
        /// Maximum number of restarts before giving up.
        max_restarts: u32,
        /// Base delay between attempts (doubled each attempt).
        backoff: Duration,
    },
    /// Like [`Restart`](SupervisorPolicy::Restart), but every restart
    /// installs a brand-new kernel from the factory — for kernels whose
    /// state cannot be cloned or must be rebuilt from scratch.
    Replace {
        /// Maximum number of replacements before giving up.
        max_restarts: u32,
        /// Base delay between attempts (doubled each attempt).
        backoff: Duration,
        /// Builds each replacement instance.
        factory: KernelFactory,
    },
}

impl SupervisorPolicy {
    /// Restart up to `max_restarts` times with a 1 ms base backoff.
    pub fn restart(max_restarts: u32) -> Self {
        SupervisorPolicy::Restart {
            max_restarts,
            backoff: Duration::from_millis(1),
        }
    }

    /// Restart with an explicit base backoff.
    pub fn restart_with_backoff(max_restarts: u32, backoff: Duration) -> Self {
        SupervisorPolicy::Restart {
            max_restarts,
            backoff,
        }
    }

    /// Replace from `factory` up to `max_restarts` times (1 ms base
    /// backoff).
    pub fn replace(
        max_restarts: u32,
        factory: impl Fn() -> Box<dyn Kernel> + Send + Sync + 'static,
    ) -> Self {
        SupervisorPolicy::Replace {
            max_restarts,
            backoff: Duration::from_millis(1),
            factory: Arc::new(factory),
        }
    }

    /// Restart budget, if this policy has one.
    pub fn max_restarts(&self) -> Option<u32> {
        match self {
            SupervisorPolicy::Restart { max_restarts, .. }
            | SupervisorPolicy::Replace { max_restarts, .. } => Some(*max_restarts),
            _ => None,
        }
    }

    /// Backoff before restart attempt `attempt` (0-based), doubling per
    /// attempt and saturating at 1 s.
    pub(crate) fn backoff_for(&self, attempt: u32) -> Option<Duration> {
        let base = match self {
            SupervisorPolicy::Restart { backoff, .. }
            | SupervisorPolicy::Replace { backoff, .. } => *backoff,
            _ => return None,
        };
        Some(
            base.saturating_mul(1u32 << attempt.min(16))
                .min(Duration::from_secs(1)),
        )
    }
}

impl fmt::Debug for SupervisorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorPolicy::Abort => write!(f, "Abort"),
            SupervisorPolicy::Skip => write!(f, "Skip"),
            SupervisorPolicy::Restart {
                max_restarts,
                backoff,
            } => write!(f, "Restart(max {max_restarts}, backoff {backoff:?})"),
            SupervisorPolicy::Replace {
                max_restarts,
                backoff,
                ..
            } => write!(f, "Replace(max {max_restarts}, backoff {backoff:?})"),
        }
    }
}

/// How one kernel's execution ended, as reported in
/// [`KernelReport`](crate::runtime::KernelReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOutcome {
    /// Ran to `KStatus::Stop` without incident.
    Completed,
    /// Panicked, was restarted/replaced this many times, and then ran to
    /// completion.
    Restarted(u32),
    /// Panicked under [`SupervisorPolicy::Skip`]; the pipeline drained
    /// without it.
    Skipped,
    /// Panicked fatally: under [`SupervisorPolicy::Abort`], or after
    /// exhausting a restart budget.
    Aborted,
}

impl KernelOutcome {
    /// `true` for any outcome that involved at least one panic.
    pub fn panicked(&self) -> bool {
        !matches!(self, KernelOutcome::Completed)
    }
}

impl fmt::Display for KernelOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelOutcome::Completed => write!(f, "completed"),
            KernelOutcome::Restarted(n) => write!(f, "restarted x{n}"),
            KernelOutcome::Skipped => write!(f, "skipped"),
            KernelOutcome::Aborted => write!(f, "aborted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = SupervisorPolicy::restart_with_backoff(8, Duration::from_millis(2));
        assert_eq!(p.backoff_for(0), Some(Duration::from_millis(2)));
        assert_eq!(p.backoff_for(1), Some(Duration::from_millis(4)));
        assert_eq!(p.backoff_for(3), Some(Duration::from_millis(16)));
        assert_eq!(p.backoff_for(30), Some(Duration::from_secs(1)));
        assert_eq!(SupervisorPolicy::Abort.backoff_for(0), None);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", SupervisorPolicy::Abort), "Abort");
        let r = SupervisorPolicy::restart(3);
        assert!(format!("{r:?}").starts_with("Restart(max 3"));
        let rep = SupervisorPolicy::replace(2, || unreachable!());
        assert!(format!("{rep:?}").starts_with("Replace(max 2"));
    }

    #[test]
    fn outcome_panicked_classification() {
        assert!(!KernelOutcome::Completed.panicked());
        assert!(KernelOutcome::Restarted(1).panicked());
        assert!(KernelOutcome::Skipped.panicked());
        assert!(KernelOutcome::Aborted.panicked());
        assert_eq!(KernelOutcome::Restarted(2).to_string(), "restarted x2");
    }
}
