//! `raft-check` — static analysis of a [`RaftMap`] before execution.
//!
//! The paper's `exe()` validates the topology (connectivity, link types)
//! before running anything; Pacing Types (Kohn et al.) and Parameterized
//! Dataflow (Duggan & Yao) push further and show that static
//! well-formedness analysis of stream graphs catches deadlocks and rate
//! mismatches that a bounded-FIFO runtime can otherwise only hit at run
//! time — as a hang. This module is the stable facade over the
//! [`crate::analysis`] framework: a registry of named lint passes, each
//! with a stable code, all consuming one shared [`Analysis`] context
//! (adjacency, Tarjan SCCs, cycle solver verdicts) built once per check:
//!
//! | code     | lint                     | default severity | finding |
//! |----------|--------------------------|------------------|---------|
//! | `RC0001` | `unconnected-port`       | error            | a declared port has no stream |
//! | `RC0002` | `missing-endpoint`       | error            | graph has no source / no sink |
//! | `RC0003` | `cycle`                  | error (config)   | a directed cycle of bounded FIFOs (deadlock risk) |
//! | `RC0004` | `unreachable`            | error            | kernel not reachable from any source |
//! | `RC0005` | `duplicate-link`         | error            | two streams share a port endpoint |
//! | `RC0006` | `type-mismatch`          | error            | stream endpoint element types differ |
//! | `RC0007` | `capacity`               | warn             | configured capacity cannot sustain declared rates |
//! | `RC0008` | `feedback-deadlock`      | error (config)   | certify-or-counterexample for every bounded-FIFO cycle |
//! | `RC0009` | `replication-safety`     | warn (config)    | statelessness/ordering contradictions around replication |
//! | `RC0010` | `supervision-soundness`  | warn (config)    | recovery policy unsound for the kernel or graph shape |
//! | `RC0011` | `fusion`                 | info             | chains the fusion pass will collapse into one batch kernel |
//!
//! [`RaftMap::check`] runs every pass and returns the findings in a
//! deterministic order (severity, then code, then involved kernels/links,
//! then message — so snapshot tests and CI logs are stable); `exe()`
//! refuses to run when any [`Severity::Error`] finding exists
//! ([`crate::error::ExeError::CheckFailed`]).
//!
//! `RC0008` implements the certify-or-counterexample contract: for every
//! bounded-FIFO cycle, `raft-model`'s `min_capacity_for_blocking` solves
//! for the minimal capacity assignment under which no cycle stream can
//! stay full, and the pass emits either an informational certificate (the
//! `RC0003` finding then downgrades to info) or a concrete token-flow
//! showing how the cycle wedges.

use crate::analysis::Analysis;
use crate::diagnostics::{Diagnostic, Severity};
use crate::map::RaftMap;

/// Configuration for the static checker (part of
/// [`crate::map::MapConfig`]).
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Severity of the `RC0003` cycle lint (and of a *refuted* `RC0008`
    /// certification). A cycle of bounded FIFOs is a deadlock risk, so
    /// this defaults to [`Severity::Error`]; downgrade to
    /// [`Severity::Warn`] for graphs with feedback edges that are known to
    /// be drained (e.g. credit loops). A cycle `RC0008` *certifies*
    /// deadlock-free is reported at [`Severity::Info`] regardless.
    pub cycle_severity: Severity,
    /// `RC0007` warns (and the `RC0008` solver certifies) when the
    /// steady-state producer blocking probability at the configured
    /// capacity ceiling exceeds this fraction.
    pub capacity_blocking_warn: f64,
    /// Severity of `RC0009` replication-safety findings. Defaults to
    /// [`Severity::Warn`]: the contradictions are real but the runtime
    /// degrades safely (it skips expansion); raise to [`Severity::Error`]
    /// to make `exe()` refuse such graphs.
    pub replication_severity: Severity,
    /// Severity of `RC0010` supervision-soundness findings, except Replace
    /// factory port mismatches which are always [`Severity::Error`].
    /// Defaults to [`Severity::Warn`].
    pub supervision_severity: Severity,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            cycle_severity: Severity::Error,
            capacity_blocking_warn: 0.05,
            replication_severity: Severity::Warn,
            supervision_severity: Severity::Warn,
        }
    }
}

/// One named lint pass in the registry.
pub struct LintPass {
    /// Stable code, e.g. `"RC0003"`.
    pub code: &'static str,
    /// Short name, e.g. `"cycle"`.
    pub name: &'static str,
    /// One-line description of what the pass finds.
    pub summary: &'static str,
    run: fn(&Analysis) -> Vec<Diagnostic>,
}

/// The full lint registry, in code order.
pub fn passes() -> &'static [LintPass] {
    &PASSES
}

static PASSES: [LintPass; 11] = [
    LintPass {
        code: "RC0001",
        name: "unconnected-port",
        summary: "every declared port must be connected to a stream",
        run: crate::analysis::structure::lint_unconnected_ports,
    },
    LintPass {
        code: "RC0002",
        name: "missing-endpoint",
        summary: "the graph needs at least one source and one sink",
        run: crate::analysis::structure::lint_missing_endpoints,
    },
    LintPass {
        code: "RC0003",
        name: "cycle",
        summary: "a directed cycle of bounded FIFOs can deadlock",
        run: crate::analysis::structure::lint_cycles,
    },
    LintPass {
        code: "RC0004",
        name: "unreachable",
        summary: "every kernel must be reachable from a source",
        run: crate::analysis::structure::lint_unreachable,
    },
    LintPass {
        code: "RC0005",
        name: "duplicate-link",
        summary: "no two streams may share a port endpoint",
        run: crate::analysis::structure::lint_duplicate_links,
    },
    LintPass {
        code: "RC0006",
        name: "type-mismatch",
        summary: "stream endpoints must carry the same element type",
        run: crate::analysis::structure::lint_type_mismatches,
    },
    LintPass {
        code: "RC0007",
        name: "capacity",
        summary: "configured capacity must sustain the declared rates",
        run: crate::analysis::capacity::lint_capacity,
    },
    LintPass {
        code: "RC0008",
        name: "feedback-deadlock",
        summary: "every bounded-FIFO cycle is certified deadlock-free or refuted \
                  with a counterexample token-flow",
        run: crate::analysis::capacity::lint_deadlock_certification,
    },
    LintPass {
        code: "RC0009",
        name: "replication-safety",
        summary: "statelessness and out-of-order safety must be consistent with \
                  the requested replication",
        run: crate::analysis::replication::lint_replication_safety,
    },
    LintPass {
        code: "RC0010",
        name: "supervision-soundness",
        summary: "each kernel's recovery policy must be sound for its state and \
                  graph position",
        run: crate::analysis::supervision::lint_supervision_soundness,
    },
    LintPass {
        code: "RC0011",
        name: "fusion",
        summary: "report the kernel chains the fusion pass will collapse into \
                  single batch-executed kernels at exe()",
        run: crate::analysis::fusion::lint_fusion,
    },
];

/// Run every registered pass over one shared [`Analysis`] context and
/// return the findings in a deterministic order: errors first, then within
/// a severity by code, involved kernels, involved links, and finally
/// message — byte-for-byte stable across runs for snapshot tests and CI
/// logs.
pub(crate) fn run_all(map: &RaftMap) -> Vec<Diagnostic> {
    let analysis = Analysis::new(map);
    let mut out = Vec::new();
    for pass in &PASSES {
        out.extend((pass.run)(&analysis));
    }
    out.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.kernels.cmp(&b.kernels))
            .then_with(|| a.links.cmp(&b.links))
            .then_with(|| a.message.cmp(&b.message))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_distinct_codes() {
        let codes: std::collections::BTreeSet<&str> = passes().iter().map(|p| p.code).collect();
        assert_eq!(codes.len(), 11, "expected 11 lint passes, got {codes:?}");
        assert_eq!(codes.len(), passes().len(), "codes must be unique");
        for p in passes() {
            assert!(p.code.starts_with("RC"), "{}", p.code);
            assert!(!p.name.is_empty() && !p.summary.is_empty());
        }
    }

    #[test]
    fn run_all_is_deterministic_and_sorted() {
        use crate::kernel::{KStatus, Kernel, PortSpec};
        use crate::port::Context;

        struct Src;
        impl Kernel for Src {
            fn ports(&self) -> PortSpec {
                PortSpec::new().output::<u32>("out")
            }
            fn run(&mut self, _ctx: &Context) -> KStatus {
                KStatus::Stop
            }
        }
        struct Sink;
        impl Kernel for Sink {
            fn ports(&self) -> PortSpec {
                PortSpec::new().input::<u32>("in")
            }
            fn run(&mut self, _ctx: &Context) -> KStatus {
                KStatus::Stop
            }
        }

        // A graph with several findings: an overloaded stream (RC0007 warn)
        // plus two dangling ports (RC0001 errors).
        let mut m = RaftMap::new();
        let s = m.add(Src);
        let k = m.add(Sink);
        let _lonely_src = m.add(Src);
        let _lonely_sink = m.add(Sink);
        m.link(s, "out", k, "in").unwrap();
        m.declare_service_rate(s, 100.0);
        m.declare_service_rate(k, 10.0);

        let first = run_all(&m);
        for _ in 0..5 {
            assert_eq!(run_all(&m), first, "check output must be deterministic");
        }
        // Sorted: severity desc, then code asc, then kernels asc.
        for w in first.windows(2) {
            let key = |d: &Diagnostic| {
                (
                    std::cmp::Reverse(d.severity),
                    d.code,
                    d.kernels.clone(),
                    d.links.clone(),
                    d.message.clone(),
                )
            };
            assert!(key(&w[0]) <= key(&w[1]), "{:?} > {:?}", w[0], w[1]);
        }
    }
}
