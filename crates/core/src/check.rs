//! `raft-check` — static analysis of a [`RaftMap`] before execution.
//!
//! The paper's `exe()` validates the topology (connectivity, link types)
//! before running anything; Pacing Types (Kohn et al.) and Parameterized
//! Dataflow (Duggan & Yao) push further and show that static
//! well-formedness analysis of stream graphs catches deadlocks and rate
//! mismatches that a bounded-FIFO runtime can otherwise only hit at run
//! time — as a hang. This module generalizes the seed's single
//! connectivity scan into a registry of named lint passes, each with a
//! stable code:
//!
//! | code     | lint               | default severity | finding |
//! |----------|--------------------|------------------|---------|
//! | `RC0001` | `unconnected-port` | error            | a declared port has no stream |
//! | `RC0002` | `missing-endpoint` | error            | graph has no source / no sink |
//! | `RC0003` | `cycle`            | error (config)   | a directed cycle of bounded FIFOs (deadlock risk) |
//! | `RC0004` | `unreachable`      | error            | kernel not reachable from any source |
//! | `RC0005` | `duplicate-link`   | error            | two streams share a port endpoint |
//! | `RC0006` | `type-mismatch`    | error            | stream endpoint element types differ |
//! | `RC0007` | `capacity`         | warn             | configured capacity cannot sustain declared rates |
//!
//! [`RaftMap::check`] runs every pass and returns the findings sorted by
//! severity; `exe()` refuses to run when any [`Severity::Error`] finding
//! exists ([`crate::error::ExeError::CheckFailed`]).
//!
//! Cycle detection uses Tarjan's strongly-connected-components algorithm
//! (iterative, so deep pipelines cannot overflow the stack). The capacity
//! pass calls into `raft-model`'s M/M/1/K queueing estimates: when both
//! ends of a stream have declared service rates
//! ([`RaftMap::declare_service_rate`]), the steady-state producer blocking
//! probability at the stream's configured capacity ceiling is computed and
//! compared against [`CheckConfig::capacity_blocking_warn`].

use raft_model::queues::{min_capacity_for_blocking, MM1K};

use crate::diagnostics::{Diagnostic, Severity};
use crate::map::RaftMap;

/// Configuration for the static checker (part of
/// [`crate::map::MapConfig`]).
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Severity of the `RC0003` cycle lint. A cycle of bounded FIFOs is a
    /// deadlock risk, so this defaults to [`Severity::Error`]; downgrade to
    /// [`Severity::Warn`] for graphs with feedback edges that are known to
    /// be drained (e.g. credit loops).
    pub cycle_severity: Severity,
    /// `RC0007` warns when the steady-state producer blocking probability
    /// at the configured capacity ceiling exceeds this fraction.
    pub capacity_blocking_warn: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            cycle_severity: Severity::Error,
            capacity_blocking_warn: 0.05,
        }
    }
}

/// One named lint pass in the registry.
pub struct LintPass {
    /// Stable code, e.g. `"RC0003"`.
    pub code: &'static str,
    /// Short name, e.g. `"cycle"`.
    pub name: &'static str,
    /// One-line description of what the pass finds.
    pub summary: &'static str,
    run: fn(&RaftMap) -> Vec<Diagnostic>,
}

/// The full lint registry, in code order.
pub fn passes() -> &'static [LintPass] {
    &PASSES
}

static PASSES: [LintPass; 7] = [
    LintPass {
        code: "RC0001",
        name: "unconnected-port",
        summary: "every declared port must be connected to a stream",
        run: lint_unconnected_ports,
    },
    LintPass {
        code: "RC0002",
        name: "missing-endpoint",
        summary: "the graph needs at least one source and one sink",
        run: lint_missing_endpoints,
    },
    LintPass {
        code: "RC0003",
        name: "cycle",
        summary: "a directed cycle of bounded FIFOs can deadlock",
        run: lint_cycles,
    },
    LintPass {
        code: "RC0004",
        name: "unreachable",
        summary: "every kernel must be reachable from a source",
        run: lint_unreachable,
    },
    LintPass {
        code: "RC0005",
        name: "duplicate-link",
        summary: "no two streams may share a port endpoint",
        run: lint_duplicate_links,
    },
    LintPass {
        code: "RC0006",
        name: "type-mismatch",
        summary: "stream endpoints must carry the same element type",
        run: lint_type_mismatches,
    },
    LintPass {
        code: "RC0007",
        name: "capacity",
        summary: "configured capacity must sustain the declared rates",
        run: lint_capacity,
    },
];

/// Run every registered pass and return the findings, errors first.
pub(crate) fn run_all(map: &RaftMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pass in &PASSES {
        out.extend((pass.run)(map));
    }
    // Errors first, then warnings, then info; stable within a severity so
    // pass order (code order) is preserved.
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// Display name of kernel `i` ("name#i").
fn kname(map: &RaftMap, i: usize) -> &str {
    &map.kernels[i].name
}

/// `src.port -> dst.port` label for link `li`.
fn link_label(map: &RaftMap, li: usize) -> String {
    let l = &map.links[li];
    format!(
        "{}.{} -> {}.{}",
        kname(map, l.src),
        map.kernels[l.src].spec.outputs[l.src_port].name,
        kname(map, l.dst),
        map.kernels[l.dst].spec.inputs[l.dst_port].name,
    )
}

/// RC0001: every declared input and output port must be linked (the seed's
/// `validate_connected`, migrated into the registry).
fn lint_unconnected_ports(map: &RaftMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (ki, entry) in map.kernels.iter().enumerate() {
        for (pi, def) in entry.spec.inputs.iter().enumerate() {
            if !map.links.iter().any(|l| l.dst == ki && l.dst_port == pi) {
                out.push(
                    Diagnostic::new(
                        "RC0001",
                        "unconnected-port",
                        Severity::Error,
                        format!(
                            "input port {:?} of kernel {:?} is not connected",
                            def.name, entry.name
                        ),
                    )
                    .with_kernel(ki),
                );
            }
        }
        for (pi, def) in entry.spec.outputs.iter().enumerate() {
            if !map.links.iter().any(|l| l.src == ki && l.src_port == pi) {
                out.push(
                    Diagnostic::new(
                        "RC0001",
                        "unconnected-port",
                        Severity::Error,
                        format!(
                            "output port {:?} of kernel {:?} is not connected",
                            def.name, entry.name
                        ),
                    )
                    .with_kernel(ki),
                );
            }
        }
    }
    out
}

/// RC0002: a runnable dataflow graph needs at least one source (a kernel
/// with no input ports) and one sink (no output ports); otherwise nothing
/// can start, or nothing can finish draining.
fn lint_missing_endpoints(map: &RaftMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if map.kernels.is_empty() {
        out.push(Diagnostic::new(
            "RC0002",
            "missing-endpoint",
            Severity::Error,
            "map contains no kernels",
        ));
        return out;
    }
    if !map.kernels.iter().any(|k| k.spec.inputs.is_empty()) {
        out.push(Diagnostic::new(
            "RC0002",
            "missing-endpoint",
            Severity::Error,
            "graph has no source kernel (every kernel has input ports): \
             nothing can produce the first element",
        ));
    }
    if !map.kernels.iter().any(|k| k.spec.outputs.is_empty()) {
        out.push(Diagnostic::new(
            "RC0002",
            "missing-endpoint",
            Severity::Error,
            "graph has no sink kernel (every kernel has output ports): \
             backpressure has nowhere to drain",
        ));
    }
    out
}

/// Iterative Tarjan SCC over the kernel graph. Returns the strongly
/// connected components in reverse-topological order.
fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames (node, next-child cursor) — deep pipelines must
    // not overflow the call stack.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));

        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1];
                frame.1 += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] && index[w] < lowlink[v] {
                    lowlink[v] = index[w];
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    if lowlink[v] < lowlink[parent] {
                        lowlink[parent] = lowlink[v];
                    }
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

fn adjacency(map: &RaftMap) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); map.kernels.len()];
    for l in &map.links {
        if !adj[l.src].contains(&l.dst) {
            adj[l.src].push(l.dst);
        }
    }
    adj
}

/// RC0003: Tarjan-SCC cycle detection. A directed cycle of bounded FIFOs
/// deadlocks as soon as every queue on the cycle fills (each kernel blocks
/// pushing to the next). Severity comes from
/// [`CheckConfig::cycle_severity`].
fn lint_cycles(map: &RaftMap) -> Vec<Diagnostic> {
    let adj = adjacency(map);
    let mut out = Vec::new();
    for scc in tarjan_sccs(map.kernels.len(), &adj) {
        let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
        if !cyclic {
            continue;
        }
        let mut members = scc.clone();
        members.sort_unstable();
        let names: Vec<&str> = members.iter().map(|&i| kname(map, i)).collect();
        let links: Vec<usize> = map
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| members.contains(&l.src) && members.contains(&l.dst))
            .map(|(i, _)| i)
            .collect();
        out.push(
            Diagnostic::new(
                "RC0003",
                "cycle",
                map.cfg.check.cycle_severity,
                format!(
                    "cycle of bounded streams through {{{}}}: once every queue \
                     on the cycle fills, all {} kernels block forever \
                     (downgrade via MapConfig::check.cycle_severity if the \
                     feedback edge is provably drained)",
                    names.join(", "),
                    members.len(),
                ),
            )
            .with_kernels(members)
            .with_links(links),
        );
    }
    out
}

/// RC0004: BFS from the sources; kernels no token can ever reach will
/// starve forever. Skipped when the graph has no sources at all — RC0002
/// already reports that, and flagging every kernel would be noise.
fn lint_unreachable(map: &RaftMap) -> Vec<Diagnostic> {
    let sources: Vec<usize> = map
        .kernels
        .iter()
        .enumerate()
        .filter(|(_, k)| k.spec.inputs.is_empty())
        .map(|(i, _)| i)
        .collect();
    if sources.is_empty() || map.kernels.is_empty() {
        return Vec::new();
    }
    let adj = adjacency(map);
    let mut seen = vec![false; map.kernels.len()];
    let mut queue: std::collections::VecDeque<usize> = sources.into_iter().collect();
    for &s in &queue {
        seen[s] = true;
    }
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    let unreached: Vec<usize> = (0..map.kernels.len()).filter(|&i| !seen[i]).collect();
    if unreached.is_empty() {
        return Vec::new();
    }
    let names: Vec<&str> = unreached.iter().map(|&i| kname(map, i)).collect();
    vec![Diagnostic::new(
        "RC0004",
        "unreachable",
        Severity::Error,
        format!(
            "kernel(s) {{{}}} are not reachable from any source: their \
             inputs will never receive data",
            names.join(", ")
        ),
    )
    .with_kernels(unreached)]
}

/// RC0005: no two streams may share a port endpoint. `link()` enforces
/// this at construction; the pass is defense in depth for maps assembled
/// or rewritten through crate-internal paths (e.g. replica expansion).
fn lint_duplicate_links(map: &RaftMap) -> Vec<Diagnostic> {
    use std::collections::HashMap;
    let mut out = Vec::new();
    let mut by_src: HashMap<(usize, usize), usize> = HashMap::new();
    let mut by_dst: HashMap<(usize, usize), usize> = HashMap::new();
    for (li, l) in map.links.iter().enumerate() {
        if let Some(&prev) = by_src.get(&(l.src, l.src_port)) {
            out.push(
                Diagnostic::new(
                    "RC0005",
                    "duplicate-link",
                    Severity::Error,
                    format!(
                        "output port {:?} of kernel {:?} feeds two streams \
                         ({} and {})",
                        map.kernels[l.src].spec.outputs[l.src_port].name,
                        kname(map, l.src),
                        link_label(map, prev),
                        link_label(map, li),
                    ),
                )
                .with_kernel(l.src)
                .with_links([prev, li]),
            );
        } else {
            by_src.insert((l.src, l.src_port), li);
        }
        if let Some(&prev) = by_dst.get(&(l.dst, l.dst_port)) {
            out.push(
                Diagnostic::new(
                    "RC0005",
                    "duplicate-link",
                    Severity::Error,
                    format!(
                        "input port {:?} of kernel {:?} is fed by two streams \
                         ({} and {}): an ordered port admits exactly one \
                         producer",
                        map.kernels[l.dst].spec.inputs[l.dst_port].name,
                        kname(map, l.dst),
                        link_label(map, prev),
                        link_label(map, li),
                    ),
                )
                .with_kernel(l.dst)
                .with_links([prev, li]),
            );
        } else {
            by_dst.insert((l.dst, l.dst_port), li);
        }
    }
    out
}

/// RC0006: re-verify element types across every stream. `link()` checks
/// this too; the pass re-runs the comparison on the final link table with
/// kernel+port names in the message.
fn lint_type_mismatches(map: &RaftMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (li, l) in map.links.iter().enumerate() {
        let so = &map.kernels[l.src].spec.outputs[l.src_port];
        let di = &map.kernels[l.dst].spec.inputs[l.dst_port];
        if so.type_id != di.type_id {
            out.push(
                Diagnostic::new(
                    "RC0006",
                    "type-mismatch",
                    Severity::Error,
                    format!(
                        "stream {}.{} -> {}.{} connects element type {} to {}",
                        kname(map, l.src),
                        so.name,
                        kname(map, l.dst),
                        di.name,
                        so.type_name,
                        di.type_name,
                    ),
                )
                .with_kernels([l.src, l.dst])
                .with_link(li),
            );
        }
    }
    out
}

/// RC0007: capacity feasibility. For every stream whose two kernels have
/// declared service rates, model the queue as M/M/1/K at the stream's
/// capacity *ceiling* and warn when the steady-state producer blocking
/// probability exceeds the configured threshold — the static version of
/// the monitor's 3δ "writer blocked" resize trigger.
fn lint_capacity(map: &RaftMap) -> Vec<Diagnostic> {
    let threshold = map.cfg.check.capacity_blocking_warn;
    let mut out = Vec::new();
    for (li, l) in map.links.iter().enumerate() {
        let (Some(lambda), Some(mu)) = (
            map.kernels[l.src].service_rate,
            map.kernels[l.dst].service_rate,
        ) else {
            continue;
        };
        if !(lambda > 0.0 && mu > 0.0) {
            continue;
        }
        let cap = l.fifo.unwrap_or(map.cfg.fifo).max_capacity;
        let cap = cap.clamp(1, u32::MAX as usize) as u32;
        let blocking = MM1K::new(lambda, mu, cap).blocking_probability();
        if blocking <= threshold {
            continue;
        }
        let suggestion = match min_capacity_for_blocking(lambda, mu, threshold) {
            Some(k) => format!(
                "a capacity ceiling of {k} would keep blocking under {:.0}%",
                threshold * 100.0
            ),
            None => "no finite capacity suffices (λ ≥ μ): widen the consumer \
                     or lower the producer rate"
                .to_string(),
        };
        out.push(
            Diagnostic::new(
                "RC0007",
                "capacity",
                Severity::Warn,
                format!(
                    "stream {} (capacity ceiling {cap}) cannot sustain the \
                     declared rates λ={lambda}/s -> μ={mu}/s: steady-state \
                     producer blocking ≈ {:.1}%; {suggestion}",
                    link_label(map, li),
                    blocking * 100.0,
                ),
            )
            .with_kernels([l.src, l.dst])
            .with_link(li),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KStatus, Kernel, PortSpec};
    use crate::map::LinkEntry;
    use crate::port::Context;

    struct Src;
    impl Kernel for Src {
        fn ports(&self) -> PortSpec {
            PortSpec::new().output::<u32>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    struct Sink;
    impl Kernel for Sink {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u32>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    struct SinkI64;
    impl Kernel for SinkI64 {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<i64>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    #[test]
    fn registry_has_seven_distinct_codes() {
        let codes: std::collections::BTreeSet<&str> = passes().iter().map(|p| p.code).collect();
        assert!(codes.len() >= 7, "expected >= 7 lint passes, got {codes:?}");
        assert_eq!(codes.len(), passes().len(), "codes must be unique");
        for p in passes() {
            assert!(p.code.starts_with("RC"), "{}", p.code);
            assert!(!p.name.is_empty() && !p.summary.is_empty());
        }
    }

    #[test]
    fn tarjan_finds_simple_cycle() {
        // 0 -> 1 -> 2 -> 0, 3 isolated
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let sccs = tarjan_sccs(4, &adj);
        let big: Vec<_> = sccs.iter().filter(|s| s.len() > 1).collect();
        assert_eq!(big.len(), 1);
        let mut members = big[0].clone();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2]);
    }

    #[test]
    fn tarjan_handles_deep_chain_iteratively() {
        // 10_000-node chain: recursive Tarjan would risk stack overflow.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        assert_eq!(tarjan_sccs(n, &adj).len(), n);
    }

    /// Duplicate-link and type-mismatch findings require a malformed link
    /// table, which the public API refuses to build — push raw entries.
    #[test]
    fn duplicate_link_pass_flags_shared_endpoints() {
        let mut m = crate::map::RaftMap::new();
        let s = m.add(Src);
        let a = m.add(Sink);
        let b = m.add(Sink);
        let s2 = m.add(Src);
        m.link(s, "out", a, "in").unwrap();
        // Bypass link(): second stream from s's already-used output, and a
        // second stream (from s2) into a's already-fed input.
        m.links.push(LinkEntry {
            src: s.0,
            src_port: 0,
            dst: b.0,
            dst_port: 0,
            ordered: true,
            fifo: None,
        });
        m.links.push(LinkEntry {
            src: s2.0,
            src_port: 0,
            dst: a.0,
            dst_port: 0,
            ordered: true,
            fifo: None,
        });
        let dups = lint_duplicate_links(&m);
        assert_eq!(dups.len(), 2, "{dups:?}");
        assert!(dups.iter().all(|d| d.code == "RC0005"));
        assert!(dups.iter().any(|d| d.message.contains("feeds two streams")));
        assert!(dups
            .iter()
            .any(|d| d.message.contains("fed by two streams")));
    }

    #[test]
    fn type_mismatch_pass_names_kernels_and_ports() {
        let mut m = crate::map::RaftMap::new();
        let s = m.add(Src);
        let t = m.add(SinkI64);
        // link() would reject; push the raw entry.
        m.links.push(LinkEntry {
            src: s.0,
            src_port: 0,
            dst: t.0,
            dst_port: 0,
            ordered: true,
            fifo: None,
        });
        let diags = lint_type_mismatches(&m);
        assert_eq!(diags.len(), 1);
        let msg = &diags[0].message;
        assert!(msg.contains("Src#0.out"), "{msg}");
        assert!(msg.contains("SinkI64#1.in"), "{msg}");
        assert!(msg.contains("u32") && msg.contains("i64"), "{msg}");
    }
}
