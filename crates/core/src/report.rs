//! Human-readable telemetry rendering — the paper's visualization
//! direction: "Future work in visualization could determine the best way
//! to display this information to the user in order to improve their
//! ability to act upon it" (§4.1).
//!
//! [`render`] turns an [`ExeReport`] into a fixed-width text dashboard:
//! per-kernel service statistics, per-stream occupancy (mean, utilization,
//! log2 histogram sparkline), the resize and width-change logs. Everything
//! is plain text so it works in terminals, logs, and CI output.

use std::fmt::Write as _;

use crate::runtime::ExeReport;

/// Bars used for the occupancy-histogram sparkline (8 levels).
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a log2 occupancy histogram as a sparkline (one glyph per
/// occupied bucket range, `·` for empty buckets up to the last used one).
pub fn sparkline(hist: &[u64]) -> String {
    let last_used = match hist.iter().rposition(|&c| c > 0) {
        Some(i) => i,
        None => return String::from("(no samples)"),
    };
    let max = *hist.iter().max().unwrap() as f64;
    hist[..=last_used]
        .iter()
        .map(|&c| {
            if c == 0 {
                '·'
            } else {
                let level = ((c as f64 / max) * 7.0).round() as usize;
                SPARKS[level.min(7)]
            }
        })
        .collect()
}

/// Render the full dashboard.
pub fn render(report: &ExeReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "══ raftlib run report ({:?}) ══", report.elapsed);

    let _ = writeln!(out, "\nkernels ({}):", report.kernels.len());
    let _ = writeln!(
        out,
        "  {:<28} {:>10} {:>12} {:>12}",
        "name", "runs", "busy", "ns/run"
    );
    for k in &report.kernels {
        let ns_per_run = (k.busy.as_nanos() as u64).checked_div(k.runs).unwrap_or(0);
        let flag = match k.outcome {
            crate::supervise::KernelOutcome::Completed => String::new(),
            other => format!("  ⚠ {other}"),
        };
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>12?} {:>12}{}",
            truncate(&k.name, 28),
            k.runs,
            k.busy,
            ns_per_run,
            flag
        );
    }

    let _ = writeln!(out, "\nstreams ({}):", report.edges.len());
    let _ = writeln!(
        out,
        "  {:<44} {:>5} {:>9} {:>7} {:>9} {:>8}  occupancy (log2 buckets)",
        "edge", "alloc", "items", "cap", "mean occ", "resizes"
    );
    for e in &report.edges {
        let _ = writeln!(
            out,
            "  {:<44} {:>5} {:>9} {:>7} {:>9.1} {:>8}  {}",
            truncate(&e.name, 44),
            e.alloc,
            e.stats.popped,
            e.stats.capacity,
            e.stats.mean_occupancy,
            e.stats.resizes,
            sparkline(&e.stats.occupancy_hist)
        );
    }

    if !report.replicated.is_empty() {
        let _ = writeln!(out, "\nreplicated kernels:");
        for (name, w) in &report.replicated {
            let _ = writeln!(out, "  {name} × {w}");
        }
    }
    if !report.fused.is_empty() {
        let _ = writeln!(out, "\nfused groups ({}):", report.fused.len());
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>9} {:>10} {:>10}  members",
            "group", "batch", "batches", "items in", "items out"
        );
        for g in &report.fused {
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>9} {:>10} {:>10}  {}",
                truncate(&g.name, 28),
                g.batch,
                g.batches,
                g.items_in,
                g.items_out,
                g.members.join(" -> ")
            );
        }
    }
    if !report.kernel_classes.is_empty() {
        let _ = writeln!(
            out,
            "\nreplication classification ({}):",
            report.kernel_classes.len()
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>9} {:>10} {:>5} {:>6} {:>5}",
            "kernel", "stateless", "replicable", "safe", "width", "ooo"
        );
        for c in &report.kernel_classes {
            let _ = writeln!(
                out,
                "  {:<28} {:>9} {:>10} {:>5} {:>6} {:>5}",
                truncate(&c.name, 28),
                c.stateless,
                c.replicable,
                c.replication_safe,
                c.planned_width,
                c.ooo_inputs
            );
        }
    }
    if !report.resize_events.is_empty() {
        let _ = writeln!(out, "\nresize log ({} events):", report.resize_events.len());
        for ev in report.resize_events.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:>10.3?}  {:<44} {:>6} → {:<6} {:?}",
                ev.at,
                truncate(&ev.edge_name, 44),
                ev.old_capacity,
                ev.new_capacity,
                ev.reason
            );
        }
        if report.resize_events.len() > 12 {
            let _ = writeln!(out, "  … {} more", report.resize_events.len() - 12);
        }
    }
    if !report.width_events.is_empty() {
        let _ = writeln!(out, "\nwidth changes:");
        for ev in &report.width_events {
            let _ = writeln!(
                out,
                "  {:>10.3?}  {} {} → {}",
                ev.at, ev.split, ev.old_width, ev.new_width
            );
        }
    }
    if !report.watchdog_events.is_empty() {
        let _ = writeln!(out, "\nwatchdog firings:");
        for ev in &report.watchdog_events {
            let _ = writeln!(out, "  {:>10.3?}  {:?}", ev.at, ev.kind);
        }
    }
    // Recovery section: only rendered when the run had journaled links or
    // degradation policies doing something (the common fault-free,
    // unjournaled run stays visually unchanged).
    let commits: u64 = report.kernels.iter().map(|k| k.commits).sum();
    if commits > 0 || report.total_rewinds() > 0 || report.total_shed() > 0 {
        let _ = writeln!(out, "\nrecovery (journaled links):");
        let _ = writeln!(out, "  {:<28} {:>9} {:>9}", "kernel", "commits", "rewinds");
        for k in report.kernels.iter().filter(|k| k.commits + k.rewinds > 0) {
            let _ = writeln!(
                out,
                "  {:<28} {:>9} {:>9}",
                truncate(&k.name, 28),
                k.commits,
                k.rewinds
            );
        }
        let _ = writeln!(
            out,
            "  totals: {} rewinds, {} elements replayed, {} shed",
            report.total_rewinds(),
            report.total_replayed(),
            report.total_shed()
        );
    }
    if !report.drain_events.is_empty() {
        let _ = writeln!(out, "\ndrain ladder:");
        for ev in &report.drain_events {
            let what = match ev.level {
                1 => "level 1 (draining: sources stopped)",
                _ => "level 2 (quiesced: FIFOs fail fast)",
            };
            let _ = writeln!(out, "  {:>10.3?}  {}  [{:?}]", ev.at, what, ev.reason);
        }
    }
    if !report.procs.is_empty() {
        let _ = writeln!(out, "\nworker processes ({}):", report.procs.len());
        let _ = writeln!(
            out,
            "  {:<16} {:>14} {:>8} {:>7} {:>9} {:>7}",
            "worker", "outcome", "crashes", "wedges", "respawns", "status"
        );
        for p in &report.procs {
            let status = p
                .last_status
                .map_or_else(|| "signal".to_string(), |c| c.to_string());
            let _ = writeln!(
                out,
                "  {:<16} {:>14} {:>8} {:>7} {:>9} {:>7}",
                truncate(&p.name, 16),
                p.outcome.to_string(),
                p.crashes,
                p.wedges,
                p.respawns,
                status
            );
        }
    }
    if !report.workers.is_empty() {
        let _ = writeln!(out, "\nworkers ({}):", report.workers.len());
        let _ = writeln!(
            out,
            "  {:<8} {:>6} {:>10} {:>8} {:>7} {:>7} {:>8} {:>14}",
            "worker", "core", "runs", "steals", "parks", "wakes", "rescues", "wake→run ns"
        );
        for w in &report.workers {
            let mean_wake_ns = w.wake_to_run_ns.checked_div(w.woken_tasks).unwrap_or(0);
            let core = w
                .pinned_core
                .map_or_else(|| "-".to_string(), |c| c.to_string());
            let _ = writeln!(
                out,
                "  {:<8} {:>6} {:>10} {:>8} {:>7} {:>7} {:>8} {:>14}",
                w.worker, core, w.runs, w.steals, w.parks, w.woken_tasks, w.rescues, mean_wake_ns
            );
        }
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0, 0, 0]), "(no samples)");
        let s = sparkline(&[8, 0, 4, 1]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('█'));
        assert!(s.contains('·'));
        // trailing empty buckets are dropped
        assert_eq!(sparkline(&[1, 0, 0, 0]).chars().count(), 1);
    }

    #[test]
    fn truncate_behaviour() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("exactly-10", 10), "exactly-10");
        let t = truncate("much-longer-than-ten", 10);
        assert_eq!(t.chars().count(), 10);
        assert!(t.ends_with('…'));
    }

    #[test]
    fn renders_a_real_report() {
        use crate::lambda::{lambda_sink, lambda_source};
        use crate::prelude::*;
        let mut map = RaftMap::new();
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            (i <= 100).then_some(i)
        }));
        let sink = map.add(lambda_sink(|_v: u64| {}));
        map.link(src, "0", sink, "0").unwrap();
        let report = map.exe().unwrap();
        let text = render(&report);
        assert!(text.contains("raftlib run report"));
        assert!(text.contains("lambda-source"));
        assert!(text.contains("streams (1):"));
        assert!(text.contains("100")); // item count appears
                                       // Thread-per-kernel has no pool workers → no workers section.
        assert!(!text.contains("workers ("));
    }

    #[test]
    fn report_exposes_replication_classification() {
        use crate::lambda::{lambda_map, lambda_sink, lambda_source};
        use crate::prelude::*;
        let mut map = RaftMap::new();
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            (i <= 10).then_some(i)
        }));
        let work = map.add(lambda_map(|v: u64| v * 2));
        let sink = map.add(lambda_sink(|_v: u64| {}));
        map.link(src, "0", work, "0").unwrap();
        map.link(work, "0", sink, "0").unwrap();
        map.declare_stateless(work);
        let report = map.exe().unwrap();
        // Every pre-expansion kernel is classified in the report...
        assert_eq!(report.kernel_classes.len(), 3);
        let w = report
            .kernel_classes
            .iter()
            .find(|c| c.name.contains("lambda-map"))
            .unwrap();
        assert!(w.stateless && w.replicable);
        // ...and the rendered dashboard shows the table.
        let text = render(&report);
        assert!(text.contains("replication classification (3):"));
        assert!(text.contains("stateless"));
    }

    #[test]
    fn renders_worker_telemetry_under_stealing() {
        use crate::lambda::{lambda_sink, lambda_source};
        use crate::prelude::*;
        let mut map = RaftMap::new();
        map.config_mut().scheduler = SchedulerKind::Stealing {
            workers: 2,
            pin: false,
        };
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            (i <= 100).then_some(i)
        }));
        let sink = map.add(lambda_sink(|_v: u64| {}));
        map.link(src, "0", sink, "0").unwrap();
        let report = map.exe().unwrap();
        let text = render(&report);
        assert!(text.contains("workers (2):"));
        assert!(text.contains("wake→run ns"));
    }
}
