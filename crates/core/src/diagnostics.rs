//! Diagnostics emitted by the static graph checker (`raft-check`).
//!
//! The paper's `exe()` "checks the graph to ensure it is fully connected,
//! then type checking is performed across each link" before anything runs.
//! [`crate::check`] generalizes that into a registry of named lint passes;
//! each finding is a [`Diagnostic`]: a stable lint code (`RC0003`), a
//! [`Severity`], a rendered message, and the kernel/link indices involved so
//! tooling (DOT export, dashboards) can highlight the offending subgraph.

use std::fmt;

/// How serious a diagnostic is. `Error` diagnostics abort `exe()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only; never blocks execution.
    Info,
    /// Suspicious but runnable; reported and ignored by `exe()`.
    Warn,
    /// The graph is malformed; `exe()` refuses to run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from a lint pass over a [`crate::map::RaftMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `"RC0003"`. Codes never change meaning across
    /// releases; new lints get new codes.
    pub code: &'static str,
    /// Short lint name, e.g. `"cycle"`.
    pub lint: &'static str,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Optional actionable suggestion, rendered on its own `help:` line —
    /// what to change (a concrete capacity, an API call) rather than what
    /// is wrong.
    pub help: Option<String>,
    /// Indices of the kernels involved (positions in the map's kernel
    /// table), for graph highlighting.
    pub kernels: Vec<usize>,
    /// Indices of the links involved (positions in the map's link table).
    pub links: Vec<usize>,
}

impl Diagnostic {
    /// A new diagnostic with no kernels/links attached yet.
    pub fn new(
        code: &'static str,
        lint: &'static str,
        severity: Severity,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            lint,
            severity,
            message: message.into(),
            help: None,
            kernels: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Attach an actionable `help:` suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attach an involved kernel index.
    pub fn with_kernel(mut self, idx: usize) -> Self {
        self.kernels.push(idx);
        self
    }

    /// Attach several involved kernel indices.
    pub fn with_kernels(mut self, idxs: impl IntoIterator<Item = usize>) -> Self {
        self.kernels.extend(idxs);
        self
    }

    /// Attach an involved link index.
    pub fn with_link(mut self, idx: usize) -> Self {
        self.links.push(idx);
        self
    }

    /// Attach several involved link indices.
    pub fn with_links(mut self, idxs: impl IntoIterator<Item = usize>) -> Self {
        self.links.extend(idxs);
        self
    }

    /// `true` iff this diagnostic blocks execution.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.lint, self.message
        )?;
        if let Some(help) = &self.help {
            write!(f, "\n    help: {help}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    #[test]
    fn display_includes_code_lint_and_message() {
        let d = Diagnostic::new("RC0003", "cycle", Severity::Error, "a -> b -> a")
            .with_kernel(0)
            .with_kernel(1)
            .with_link(2);
        let s = d.to_string();
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("RC0003"), "{s}");
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("a -> b -> a"), "{s}");
        assert_eq!(d.kernels, vec![0, 1]);
        assert_eq!(d.links, vec![2]);
    }

    #[test]
    fn display_renders_help_on_its_own_line() {
        let d = Diagnostic::new("RC0007", "capacity", Severity::Warn, "too small")
            .with_help("use a ceiling of 128");
        let s = d.to_string();
        assert!(
            s.contains("too small\n    help: use a ceiling of 128"),
            "{s}"
        );
        // Without help, no dangling line.
        let bare = Diagnostic::new("RC0007", "capacity", Severity::Warn, "too small");
        assert!(!bare.to_string().contains("help:"));
    }
}
