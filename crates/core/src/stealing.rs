//! Event-driven work-stealing scheduler.
//!
//! The polling pools in [`crate::scheduler`] discover runnable kernels by
//! sweeping every slot and re-reading every input stream's occupancy —
//! O(kernels × ports) per pass, plus a 100 µs sleep loop whenever the graph
//! goes quiet. [`WorkStealing`] inverts the flow:
//!
//! * **Readiness is pushed, not polled.** Each kernel is a *task* with a
//!   tiny state machine (`IDLE → QUEUED → RUNNING`). When a task blocks on
//!   empty inputs, the owning worker *arms* the consumer-side
//!   [`raft_buffer::WakerSlot`] of every input stream and steps away; the
//!   producer endpoint that next pushes data (or EoS, or an async signal)
//!   re-queues the task in O(1) from its own thread. The FIFO's internal
//!   `PARK_TIMEOUT` condvar stops being a polling rate and becomes a pure
//!   safety net.
//! * **Per-worker deques, global injector.** A worker pushes its own
//!   re-runnable tasks onto a Chase–Lev deque (LIFO for itself: hot
//!   caches) and drains the FIFO injector that waker callbacks feed; idle
//!   workers steal the *oldest* entry from a victim's deque before even
//!   thinking about parking.
//! * **Unified idle strategy.** Between "no work anywhere" and "parked on
//!   the condvar" sits the same adaptive spin → yield ladder
//!   ([`raft_buffer::Waiter`]) the blocking FIFO endpoints use.
//! * **Optional core pinning.** `pin: true` makes worker `w` pin itself to
//!   core `w % cores` ([`crate::affinity`]), so the mapper-seeded initial
//!   placement survives OS migration.
//!
//! ## No lost wakeups
//!
//! The park protocol is: arm every input's waker slot → re-check readiness
//! → CAS `RUNNING → IDLE`. The slot's SeqCst fence pairing (see
//! `raft-buffer`'s `waker.rs` proof) guarantees a producer that published
//! data either is seen by the re-check or sees the arm and fires the wake;
//! a wake firing *during* the run window lands as `NOTIFIED` and forces a
//! self-requeue instead of parking. Spurious wakes (stale arms from an
//! earlier park round) are absorbed by the state machine: waking a `QUEUED`
//! task is a no-op, and every claim starts by disarming the inputs.

use std::sync::atomic::{
    fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize,
    Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst},
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use raft_buffer::{FifoWaker, WaitAction, WaitStrategy, Waiter};

use crate::affinity;
use crate::scheduler::{
    step, CooperativePool, KernelRunner, RunnerOutcome, Scheduler, SchedulerOutput, StepDone,
    WorkerReport,
};
use crate::supervise::KernelOutcome;

/// Task is not queued anywhere and not running; only a waker (or initial
/// seeding) may move it to `QUEUED`.
const IDLE: u8 = 0;
/// Task sits in exactly one queue (a worker deque or the injector).
const QUEUED: u8 = 1;
/// A worker holds the task's runner right now.
const RUNNING: u8 = 2;
/// A wake arrived while `RUNNING`: the worker must requeue instead of
/// going idle.
const NOTIFIED: u8 = 3;

/// How long a parked worker sleeps before re-checking on its own — purely
/// a safety net against scheduler bugs, not a polling period (wakes arrive
/// through the condvar, so this can be long without adding wake latency —
/// unlike the polling pool, whose sleep interval *is* its readiness
/// latency).
const WORKER_PARK_TIMEOUT: Duration = Duration::from_millis(10);

std::thread_local! {
    /// Set while this thread is a stealing-pool worker: the pool's `Core`
    /// address plus the worker index. Wakes that fire on a worker thread
    /// (the common case — kernels run on workers, and their pushes fire
    /// the peer's waker inline) are routed to that worker's own deque,
    /// skipping the injector and the condvar syscall.
    static WORKER_CTX: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// Pre-park backoff for workers: a short spin/yield ladder before touching
/// the condvar. Fewer yield rounds than the default parking ladder — an
/// idle worker that found nothing after spinning almost never finds work
/// by yielding (wakes arrive through the condvar), and on a loaded box
/// every yield is a context-switch round trip of pure overhead.
const WORKER_IDLE: WaitStrategy = WaitStrategy {
    spin_rounds: 6,
    yield_rounds: 4,
    park_timeout: Some(WORKER_PARK_TIMEOUT),
};

/// One kernel's scheduling state.
struct TaskSlot {
    /// `IDLE`/`QUEUED`/`RUNNING`/`NOTIFIED` — see the constants above.
    state: AtomicU8,
    /// The runner, present until the kernel finishes. The mutex is
    /// uncontended in steady state (the state machine admits one claimant);
    /// it exists so a claim that races a stale queue entry blocks briefly
    /// instead of aliasing.
    runner: Mutex<Option<KernelRunner>>,
    /// Nanoseconds-since-epoch timestamp of the wake that queued this task;
    /// 0 = queued by self-requeue (not a waker). Feeds wake-to-run latency.
    woken_at_ns: AtomicU64,
    /// Monitor handles of the task's input streams, readable without the
    /// runner mutex — the wake-side readiness filter (see [`Core::wake_task`])
    /// checks these on every waker fire.
    inputs: Vec<Arc<dyn raft_buffer::fifo::Monitorable>>,
}

/// State shared by workers and waker callbacks.
struct Core {
    tasks: Vec<TaskSlot>,
    injector: crate::steal::Injector,
    deques: Vec<crate::steal::WorkerDeque>,
    /// Kernels not yet finished.
    remaining: AtomicUsize,
    /// Workers currently inside the park protocol (incremented before the
    /// under-lock recheck). Enqueuers skip the condvar entirely while 0.
    sleepers: AtomicUsize,
    park_lock: Mutex<()>,
    unpark: Condvar,
    /// Latency epoch for `woken_at_ns`.
    epoch: Instant,
}

impl Core {
    #[inline]
    fn now_ns(&self) -> u64 {
        // Saturate to 1 so a 0 timestamp still means "self-requeue".
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }

    /// Anything claimable anywhere? Racy — used only under the park lock
    /// (where it is exact enough: a concurrent enqueuer either sees our
    /// sleeper count or we see its queue entry) and in idle heuristics.
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.deques.iter().any(|d| !d.is_empty())
    }

    /// Wake one parked worker if any are parked. Callers must have already
    /// made the new work visible (queue push) *before* calling; the SeqCst
    /// fence pairs with the one in the worker's park protocol so the
    /// sleeper-count check and the worker's work re-check cannot both miss.
    fn wake_worker(&self) {
        fence(SeqCst);
        if self.sleepers.load(Relaxed) > 0 {
            // Take the lock so the notify cannot slot between a parking
            // worker's re-check and its wait.
            let _g = self.park_lock.lock();
            self.unpark.notify_one();
        }
    }

    /// Move `task` to `QUEUED` and make it claimable. `via_waker` stamps
    /// the wake time for latency telemetry.
    fn enqueue(&self, task: usize, via_waker: bool) {
        if via_waker {
            self.tasks[task].woken_at_ns.store(self.now_ns(), Relaxed);
        }
        // Worker-local fast path: the wake fired on one of *this* pool's
        // worker threads, so the task can go LIFO onto that worker's own
        // deque — the worker drains it before it can ever park, so no
        // condvar wake is needed unless entries are piling up behind it
        // (then a parked sibling is worth the futex: it can steal).
        if let Some((core_addr, me)) = WORKER_CTX.get() {
            if core_addr == self as *const Core as usize {
                self.deques[me].push(task);
                if self.deques[me].len() > 1 {
                    self.wake_worker();
                }
                return;
            }
        }
        self.injector.push(task);
        self.wake_worker();
    }

    /// Waker/state-machine entry: called with the task in any state.
    ///
    /// Wake-side readiness filter: a waker fires when *one* input gains
    /// data, but a multi-input kernel (join, reduce) is only runnable when
    /// *all* inputs have data — enqueueing early just burns a claim → not
    /// ready → re-arm → park cycle per lane (O(width²) churn across a
    /// row).
    ///
    /// Dropping the wake is only lossless if somebody is guaranteed to fire
    /// again: the notify that got us here already *consumed* this input's
    /// arm, so if the filter's view was stale (the data IS there, or lands
    /// right after the check) no later push would ever re-fire — the
    /// certified claim-time-disarm lost wakeup (`loom_stealing.rs`). So on
    /// filter failure we re-arm every input (the arm's SeqCst fence pairs
    /// with the producer's notify fence) and re-check once: either the
    /// re-check sees the data and we fall through to enqueue, or any
    /// subsequent push finds a fresh arm and re-enters here. Spurious arms
    /// are absorbed at claim time (every claim disarms first).
    fn wake_task(&self, task: usize) {
        if !crate::scheduler::inputs_ready(&self.tasks[task].inputs) {
            for f in &self.tasks[task].inputs {
                f.consumer_waker().arm();
            }
            if !crate::scheduler::inputs_ready(&self.tasks[task].inputs) {
                return;
            }
        }
        let state = &self.tasks[task].state;
        let mut cur = state.load(Relaxed);
        loop {
            match cur {
                IDLE => match state.compare_exchange_weak(IDLE, QUEUED, AcqRel, Relaxed) {
                    Ok(_) => {
                        self.enqueue(task, true);
                        return;
                    }
                    Err(c) => cur = c,
                },
                RUNNING => match state.compare_exchange_weak(RUNNING, NOTIFIED, AcqRel, Relaxed) {
                    // The running worker sees NOTIFIED at park time and
                    // requeues; nothing to push here.
                    Ok(_) => return,
                    Err(c) => cur = c,
                },
                // Already queued or already flagged: the wake is coalesced.
                _ => return,
            }
        }
    }

    /// Safety-net sweep run by a worker whose park timed out: a task that
    /// is `IDLE` with ready inputs is the signature of a lost wakeup, so
    /// re-queue it. [`wake_task`](Self::wake_task)'s re-arm + re-check
    /// closes every hole the loom model covers; this sweep bounds the
    /// damage of any residual one to a single park period instead of a
    /// permanent hang, and turns "flaky after hours" into telemetry
    /// (`rescues` in the worker report).
    fn rescue_idle_ready(&self) -> u64 {
        let mut rescued = 0;
        for (task, slot) in self.tasks.iter().enumerate() {
            if slot.state.load(Acquire) != IDLE {
                continue;
            }
            // Skip finished kernels (runner taken); a held lock means the
            // task is mid-claim, which is not a lost wakeup.
            let live = slot.runner.try_lock().is_some_and(|g| g.is_some());
            if live && crate::scheduler::inputs_ready(&slot.inputs) {
                self.wake_task(task);
                rescued += 1;
            }
        }
        rescued
    }
}

/// The waker installed on every input stream of task `task`: an O(1)
/// enqueue running inline on the *producer's* thread.
struct TaskWaker {
    core: Arc<Core>,
    task: usize,
}

impl FifoWaker for TaskWaker {
    fn wake(&self) {
        self.core.wake_task(self.task);
    }
}

/// Event-driven work-stealing scheduler (see the module docs).
pub struct WorkStealing {
    /// Worker thread count.
    pub workers: usize,
    /// Record per-run timing into kernel telemetry.
    pub timing: bool,
    /// `run()` calls per claim.
    pub quantum: u32,
    /// Pin worker `w` to core `w % cores` (best-effort).
    pub pin: bool,
    /// `placement[k]` = worker whose deque initially holds kernel `k`
    /// (typically the mapper's partition assignment). Empty = all tasks
    /// start in the injector in graph order.
    pub placement: Vec<usize>,
}

/// Per-worker mutable telemetry, folded into [`WorkerReport`] at exit.
#[derive(Default)]
struct WorkerStats {
    runs: u64,
    steals: u64,
    parks: u64,
    woken_tasks: u64,
    wake_to_run_ns: u64,
    rescues: u64,
}

impl WorkStealing {
    /// Claim source: own deque (LIFO), then injector (FIFO), then steal
    /// from victims round-robin. Returns the task id and whether it was
    /// stolen.
    fn find_task(core: &Core, me: usize) -> Option<(usize, bool)> {
        if let Some(t) = core.deques[me].pop() {
            return Some((t, false));
        }
        if let Some(t) = core.injector.pop() {
            return Some((t, false));
        }
        let n = core.deques.len();
        for i in 1..n {
            let victim = (me + i) % n;
            loop {
                match core.deques[victim].steal() {
                    crate::steal::Steal::Success(t) => return Some((t, true)),
                    crate::steal::Steal::Retry => continue,
                    crate::steal::Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Drive one claimed task for up to a quantum. Returns `true` if the
    /// kernel finished (outcome recorded by the caller via the return).
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        core: &Core,
        me: usize,
        task: usize,
        timing: bool,
        quantum: u32,
        stop: &AtomicBool,
        stats: &mut WorkerStats,
    ) -> Option<RunnerOutcome> {
        let slot = &core.tasks[task];
        // Claim: QUEUED → RUNNING. A wake observing RUNNING from here on
        // lands as NOTIFIED instead of double-queueing.
        let prev = slot.state.swap(RUNNING, AcqRel);
        debug_assert_eq!(prev, QUEUED, "claimed task {task} was not QUEUED");

        let mut guard = slot.runner.lock();
        let Some(runner) = guard.as_mut() else {
            // Stale entry for an already-finished kernel (can't happen under
            // the one-queue invariant, but degrade gracefully).
            slot.state.store(IDLE, Release);
            return None;
        };

        stats.runs += 1;
        let woken_at = slot.woken_at_ns.swap(0, Relaxed);
        if woken_at != 0 {
            stats.woken_tasks += 1;
            stats.wake_to_run_ns += core.now_ns().saturating_sub(woken_at);
        }
        // Absorb arms left over from an earlier park round so this run's
        // consumption can't burn a stale edge later.
        for f in &runner.input_fifos {
            f.consumer_waker().disarm();
        }

        let mut finished: Option<StepDone> = None;
        for _ in 0..quantum {
            if !CooperativePool::ready(runner) {
                break;
            }
            match step(runner, timing) {
                Some(done) => {
                    finished = Some(done);
                    break;
                }
                None => {
                    if let Some(done) = crate::scheduler::stop_winddown(runner, stop) {
                        finished = Some(done);
                        break;
                    }
                }
            }
        }

        if let Some(done) = finished {
            let runner = guard.take().expect("runner present while RUNNING");
            drop(guard);
            let name = runner.name.clone();
            // Dropping the runner drops its Context, closing all endpoints:
            // EoS propagates and *their* wakers fire, re-queueing consumers.
            drop(runner);
            slot.state.store(IDLE, Release);
            if done.fatal {
                stop.store(true, Relaxed);
            }
            if core.remaining.fetch_sub(1, AcqRel) == 1 {
                // Last kernel done: release every parked worker for exit.
                let _g = core.park_lock.lock();
                core.unpark.notify_all();
            }
            return Some(RunnerOutcome {
                name,
                outcome: done.outcome,
                fatal: done.fatal,
            });
        }

        if CooperativePool::ready(runner) {
            // Quantum exhausted mid-stream: yield the worker but stay
            // runnable, LIFO on our own deque (inputs are cache-hot).
            drop(guard);
            slot.state.store(QUEUED, Release);
            core.deques[me].push(task);
            // Kick a parked sibling only when work is piling up behind this
            // worker — a lone requeued task is about to be re-popped right
            // here, and the futex round trip would be pure overhead.
            if core.deques[me].len() > 1 && core.sleepers.load(Relaxed) > 0 {
                core.wake_worker();
            }
            return None;
        }

        // Going idle: publish staged outputs / acknowledge pops before the
        // task leaves the deques, so downstream never waits on data held in
        // an open journal transaction.
        runner.journal_flush();
        // Blocked on empty inputs: arm every input's waker, then re-check —
        // the Dekker handshake that makes parking lossless (module docs).
        for f in &runner.input_fifos {
            f.consumer_waker().arm();
        }
        if CooperativePool::ready(runner) {
            // Data (or EoS) landed between the readiness check and the
            // arms; stay queued. Stale arms are absorbed at the next claim.
            drop(guard);
            slot.state.store(QUEUED, Release);
            core.deques[me].push(task);
            return None;
        }
        drop(guard);
        if slot
            .state
            .compare_exchange(RUNNING, IDLE, AcqRel, Acquire)
            .is_err()
        {
            // NOTIFIED: a waker fired during the run window; requeue rather
            // than park so the wake is never lost.
            slot.state.store(QUEUED, Release);
            core.deques[me].push(task);
        }
        None
    }
}

impl Scheduler for WorkStealing {
    fn execute(&self, runners: Vec<KernelRunner>, stop: Arc<AtomicBool>) -> SchedulerOutput {
        let n = runners.len();
        let workers = self.workers.max(1);
        if n == 0 {
            return SchedulerOutput::default();
        }
        let core = Arc::new(Core {
            tasks: runners
                .into_iter()
                .map(|r| TaskSlot {
                    state: AtomicU8::new(QUEUED),
                    woken_at_ns: AtomicU64::new(0),
                    inputs: r.input_fifos.clone(),
                    runner: Mutex::new(Some(r)),
                })
                .collect(),
            injector: crate::steal::Injector::new(n),
            deques: (0..workers)
                .map(|_| crate::steal::WorkerDeque::new(n))
                .collect(),
            remaining: AtomicUsize::new(n),
            sleepers: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            unpark: Condvar::new(),
            epoch: Instant::now(),
        });

        // Install a waker on every input stream. The Arc chain
        // (fifo → TaskWaker → Core → runner → fifo) is cyclic only while
        // the runner is alive; taking the runner out on completion breaks
        // it, so everything frees at map teardown.
        for (id, slot) in core.tasks.iter().enumerate() {
            let guard = slot.runner.lock();
            if let Some(r) = guard.as_ref() {
                let waker: Arc<dyn FifoWaker> = Arc::new(TaskWaker {
                    core: core.clone(),
                    task: id,
                });
                for f in &r.input_fifos {
                    f.consumer_waker().register(waker.clone());
                }
            }
        }

        // Seed initial placement: every task starts QUEUED. Workers have
        // not been spawned yet, so pushing into their deques from here is
        // single-threaded (the spawn below provides the happens-before).
        if self.placement.len() == n {
            for (id, &p) in self.placement.iter().enumerate() {
                core.deques[p % workers].push(id);
            }
        } else {
            for id in 0..n {
                core.injector.push(id);
            }
        }

        let timing = self.timing;
        let quantum = self.quantum.max(1);
        let pin = self.pin;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let core = core.clone();
                let stop = stop.clone();
                std::thread::Builder::new()
                    .name(format!("raft-steal-{w}"))
                    .spawn(move || {
                        let pinned_core = if pin {
                            let target = w % affinity::core_count();
                            affinity::pin_current_thread(target).then_some(target)
                        } else {
                            None
                        };
                        WORKER_CTX.set(Some((Arc::as_ptr(&core) as usize, w)));
                        let mut stats = WorkerStats::default();
                        let mut outcomes = Vec::new();
                        let mut waiter = Waiter::new(WORKER_IDLE);
                        while core.remaining.load(Acquire) > 0 {
                            if let Some((task, stolen)) = WorkStealing::find_task(&core, w) {
                                waiter.reset();
                                if stolen {
                                    stats.steals += 1;
                                }
                                if let Some(outcome) = WorkStealing::run_task(
                                    &core, w, task, timing, quantum, &stop, &mut stats,
                                ) {
                                    outcomes.push(outcome);
                                }
                                continue;
                            }
                            if waiter.pause_or_park() != WaitAction::Park {
                                continue;
                            }
                            // Park protocol: advertise, then re-check under
                            // the lock (enqueuers notify under the same
                            // lock, so no wake can slip between the check
                            // and the wait). The fence pairs with
                            // wake_worker's — see Core::wake_worker.
                            stats.parks += 1;
                            core.sleepers.fetch_add(1, SeqCst);
                            fence(SeqCst);
                            let mut g = core.park_lock.lock();
                            let mut timed_out = false;
                            if !core.has_work() && core.remaining.load(Acquire) > 0 {
                                timed_out = core
                                    .unpark
                                    .wait_for(&mut g, WORKER_PARK_TIMEOUT)
                                    .timed_out();
                            }
                            drop(g);
                            core.sleepers.fetch_sub(1, SeqCst);
                            if timed_out {
                                // Nobody woke us inside a full park period:
                                // sweep for lost wakeups before re-parking.
                                stats.rescues += core.rescue_idle_ready();
                            }
                            // No waiter.reset() here: if the wake was real,
                            // find_task succeeds next iteration and resets
                            // it; if it was the safety-net timeout, the
                            // waiter stays in its park phase so the worker
                            // re-parks without burning the spin/yield
                            // budget on nothing.
                        }
                        WORKER_CTX.set(None);
                        (w, pinned_core, stats, outcomes)
                    })
                    .expect("spawn stealing worker")
            })
            .collect();

        let mut outcomes = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(workers);
        for h in handles {
            let (w, pinned_core, stats, mut mine) = h.join().unwrap_or_else(|_| {
                // A worker thread itself panicking (not a kernel panic —
                // those are caught in step()) is a scheduler bug; surface
                // an empty report rather than wedging the join loop.
                (usize::MAX, None, WorkerStats::default(), Vec::new())
            });
            outcomes.append(&mut mine);
            reports.push(WorkerReport {
                worker: w,
                pinned_core,
                runs: stats.runs,
                steals: stats.steals,
                parks: stats.parks,
                woken_tasks: stats.woken_tasks,
                wake_to_run_ns: stats.wake_to_run_ns,
                rescues: stats.rescues,
            });
        }
        reports.sort_by_key(|r| r.worker);
        // A worker-thread panic could strand runners (never popped): drain
        // them as aborted so the outcome count always matches the kernel
        // count and their Contexts drop (EoS downstream).
        if outcomes.len() < n {
            for slot in &core.tasks {
                if let Some(runner) = slot.runner.lock().take() {
                    let name = runner.name.clone();
                    drop(runner);
                    outcomes.push(RunnerOutcome {
                        name,
                        outcome: KernelOutcome::Aborted,
                        fatal: true,
                    });
                }
            }
        }
        SchedulerOutput {
            outcomes,
            workers: reports,
        }
    }
}
