//! `exe()` — validation, parallelization planning, stream allocation,
//! execution, and the final report.
//!
//! The paper (§4): "When the user runs the exe() function of map object, the
//! graph is first checked to ensure it is fully connected, then type
//! checking is performed across each link. Before a link allocation type is
//! selected ... each kernel is mapped to a resource. ... Once memory is
//! allocated for each link, a thread continuously monitors all the queues
//! within the system and reallocates them as needed."
//!
//! Type checking already happened at `link` time; this module performs the
//! remaining steps in order: connectivity validation → automatic
//! parallelization (replica expansion with split/reduce insertion) → FIFO
//! allocation → monitor start → scheduling → join → report.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use raft_buffer::fifo::Monitorable;
use raft_buffer::{LinkAlloc, StatsSnapshot, DRAIN_DRAINING, DRAIN_QUIESCED};

use crate::error::ExeError;
use crate::kernel::Kernel;
use crate::map::{KernelEntry, LinkEntry, RaftMap};
use crate::monitor::{self, HealthTarget, ResizeEvent, WatchdogEvent, WidthEvent, WidthTarget};
use crate::parallel::WidthControl;
use crate::port::Context;
use crate::scheduler::{
    ChainedPool, CooperativePool, KernelRunner, KernelTelemetry, PartitionedPool, Scheduler,
    SchedulerKind, ThreadPerKernel,
};
use crate::supervise::KernelOutcome;

/// Named erased input endpoint plus its monitor handle.
type InputBinding = (String, crate::port::AnyEndpoint, Arc<dyn Monitorable>);

/// Final statistics of one stream.
#[derive(Debug, Clone)]
pub struct EdgeReport {
    /// `src.port -> dst.port`.
    pub name: String,
    /// Snapshot at shutdown.
    pub stats: StatsSnapshot,
    /// Which allocator actually backed this link's element storage
    /// (the configured choice after fallbacks — a link configured `Shm`
    /// on a platform without `memfd` reports `Heap`).
    pub alloc: LinkAlloc,
}

/// Final statistics of one kernel.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Display name.
    pub name: String,
    /// Completed `run()` calls.
    pub runs: u64,
    /// Time spent inside `run()` (zero if timing was disabled).
    pub busy: Duration,
    /// `true` if this kernel panicked at least once (even if a restart
    /// later recovered it).
    pub panicked: bool,
    /// How execution ended: completed, restarted N times, skipped, or
    /// aborted (see [`SupervisorPolicy`](crate::supervise::SupervisorPolicy)).
    pub outcome: KernelOutcome,
    /// Journal transactions committed (zero for kernels without journaled
    /// links).
    pub commits: u64,
    /// Journal rewinds — each one is a panicked `run()` whose in-flight
    /// elements were re-queued and replayed instead of lost.
    pub rewinds: u64,
}

/// Why the runtime raised the drain ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReason {
    /// The `exe_with_timeout` deadline elapsed.
    Deadline,
    /// A [`StopHandle`](crate::map::StopHandle) requested it.
    Caller,
    /// Level 1 did not finish the graph within
    /// [`MapConfig`](crate::map::MapConfig)`::drain_grace`; the runtime
    /// escalated to level 2 on its own.
    GraceExpired,
}

/// One rung of the drain ladder being applied to the live graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainEvent {
    /// When it fired, relative to execution start.
    pub at: Duration,
    /// The level applied: 1 = draining (sources stop), 2 = quiesced
    /// (FIFOs fail fast).
    pub level: u8,
    /// What triggered it.
    pub reason: DrainReason,
}

/// Everything `exe()` reports back (the paper's observable statistics:
/// queue occupancy, service rates, throughput, histograms, resize log).
#[derive(Debug, Clone)]
pub struct ExeReport {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Per-stream statistics.
    pub edges: Vec<EdgeReport>,
    /// Per-kernel statistics.
    pub kernels: Vec<KernelReport>,
    /// Dynamic resize log.
    pub resize_events: Vec<ResizeEvent>,
    /// Dynamic replication-width log.
    pub width_events: Vec<WidthEvent>,
    /// Deadline/stall watchdog firings (armed via
    /// [`MonitorConfig::run_budget`](crate::monitor::MonitorConfig::run_budget) /
    /// [`MonitorConfig::stall_timeout`](crate::monitor::MonitorConfig::stall_timeout)).
    pub watchdog_events: Vec<WatchdogEvent>,
    /// Kernels that were expanded, with their replica counts.
    pub replicated: Vec<(String, u32)>,
    /// The `RC0009` replication-safety classification of every kernel in
    /// the pre-expansion graph: statelessness, replicability, planned
    /// width, and whether the kernel sits behind an out-of-order split
    /// (see [`crate::analysis::classify`]).
    pub kernel_classes: Vec<crate::analysis::KernelClassification>,
    /// Per-worker scheduler telemetry (steals, parks, wake-to-run latency);
    /// empty for schedulers that don't report it.
    pub workers: Vec<crate::scheduler::WorkerReport>,
    /// Kernel chains the fusion pass collapsed into single batch-executed
    /// kernels, with per-group batch telemetry (empty when fusion is
    /// disabled or nothing was fusable). See
    /// [`crate::analysis::fusion`].
    pub fused: Vec<crate::analysis::fusion::FusedGroupReport>,
    /// Drain-ladder rungs applied during this execution (empty when the
    /// graph finished on its own).
    pub drain_events: Vec<DrainEvent>,
    /// Per-worker-**process** supervision outcomes. The in-process runtime
    /// never fills this itself — a caller running part of the graph in
    /// supervised worker processes ([`crate::proc::ProcSupervisor`])
    /// assigns the fleet's reports here so one report covers both scopes.
    pub procs: Vec<crate::proc::ProcReport>,
}

impl ExeReport {
    /// Total dynamic resizes across all streams.
    pub fn total_resizes(&self) -> u64 {
        self.edges.iter().map(|e| e.stats.resizes).sum()
    }

    /// Total elements that crossed all streams.
    pub fn total_items(&self) -> u64 {
        self.edges.iter().map(|e| e.stats.popped).sum()
    }

    /// Find an edge report whose name contains `needle`.
    pub fn edge(&self, needle: &str) -> Option<&EdgeReport> {
        self.edges.iter().find(|e| e.name.contains(needle))
    }

    /// Find a kernel report whose name contains `needle`.
    pub fn kernel(&self, needle: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.name.contains(needle))
    }

    /// Total elements redelivered from link journals after rewinds.
    pub fn total_replayed(&self) -> u64 {
        self.edges.iter().map(|e| e.stats.replayed).sum()
    }

    /// Total elements dropped by `Shed`/`BlockTimeout` admission policies.
    pub fn total_shed(&self) -> u64 {
        self.edges.iter().map(|e| e.stats.shed).sum()
    }

    /// Total journal rewinds (recovery events) across all kernels.
    pub fn total_rewinds(&self) -> u64 {
        self.kernels.iter().map(|k| k.rewinds).sum()
    }
}

/// Execute a map to completion (no deadline).
pub fn execute(map: RaftMap) -> Result<ExeReport, ExeError> {
    execute_with_deadline(map, None)
}

/// Execute a map; if `deadline` elapses first, raise the cooperative stop
/// flag so sources wind down.
pub fn execute_with_deadline(
    mut map: RaftMap,
    deadline: Option<Duration>,
) -> Result<ExeReport, ExeError> {
    if map.kernels.is_empty() {
        return Err(ExeError::EmptyMap);
    }
    // Static analysis before anything is allocated or spawned: the lint
    // registry in `crate::check` (connectivity, reachability, cycles,
    // types, capacity feasibility). Any Error-severity finding aborts —
    // turning would-be runtime hangs into fast, explained failures.
    let diagnostics = map.check();
    if diagnostics.iter().any(|d| d.is_error()) {
        return Err(ExeError::CheckFailed { diagnostics });
    }
    // Classify the user-visible graph before replica expansion rewrites it:
    // the report should speak about the kernels the user added, not the
    // split/reduce adapters the planner inserts.
    let kernel_classes = crate::analysis::classify(&map);
    // Fuse before replica expansion so the pass sees the user's graph (and
    // the expansion planner then sees the fused kernels — a fused group is
    // itself a stateless single-in/single-out kernel it may replicate).
    let (fusion_enabled, fusion_batch) = crate::analysis::fusion::resolve(&map.cfg.fusion);
    let fused_infos = if fusion_enabled {
        crate::analysis::fusion::apply(&mut map, fusion_batch)
    } else {
        Vec::new()
    };
    let planned_splits = expand_replicas(&mut map);
    let replicated = planned_splits
        .iter()
        .map(|p| (p.original_name.clone(), p.width))
        .collect::<Vec<_>>();

    // --- allocate one FIFO per link -------------------------------------
    let n_kernels = map.kernels.len();
    let mut inputs_of: Vec<Vec<InputBinding>> = (0..n_kernels).map(|_| Vec::new()).collect();
    let mut outputs_of: Vec<Vec<(String, crate::port::AnyEndpoint)>> =
        (0..n_kernels).map(|_| Vec::new()).collect();
    let mut edge_names: Vec<String> = Vec::new();
    let mut edge_fifos: Vec<Arc<dyn Monitorable>> = Vec::new();
    // (edge index of split input, split kernel idx) resolution for widths
    let mut edge_endpoints: Vec<(usize, usize)> = Vec::new(); // (src, dst)

    let mut out_fifos_of: Vec<Vec<Arc<dyn Monitorable>>> =
        (0..n_kernels).map(|_| Vec::new()).collect();
    // Journaled endpoints per kernel: `(is_input, port_index, eraser)` —
    // handed to the runners so one `run()` becomes one transaction.
    let mut journal_ports_of: Vec<Vec<(bool, usize, crate::kernel::JournalCtlFn)>> =
        (0..n_kernels).map(|_| Vec::new()).collect();
    // Per-kernel commit interval: the min across the kernel's journaled
    // links (u32::MAX = no journaled link yet).
    let mut journal_interval_of: Vec<u32> = vec![u32::MAX; n_kernels];
    // `RAFT_LINK_ALLOC` overrides every link's allocator choice (the
    // paper's "link allocation type is selected" step, §4) — a deployed
    // binary can be flipped to shm or back without recompiling. Invalid
    // values are ignored rather than fatal, like the other RAFT_* knobs.
    let env_alloc = std::env::var("RAFT_LINK_ALLOC")
        .ok()
        .and_then(|s| LinkAlloc::parse(&s));
    for link in &map.links {
        let src = &map.kernels[link.src];
        let dst = &map.kernels[link.dst];
        let out_def = &src.spec.outputs[link.src_port];
        let in_def = &dst.spec.inputs[link.dst_port];
        let mut cfg = link.fifo.unwrap_or(map.cfg.fifo);
        if let Some(alloc) = env_alloc {
            cfg.alloc = alloc;
        }
        let (producer, consumer, fifo) = (out_def.fifo_factory)(cfg);
        let name = format!(
            "{}.{} -> {}.{}",
            src.name, out_def.name, dst.name, in_def.name
        );
        edge_names.push(name);
        edge_fifos.push(fifo.clone());
        edge_endpoints.push((link.src, link.dst));
        if let Some(j) = cfg.journal {
            journal_ports_of[link.src].push((
                false,
                outputs_of[link.src].len(),
                out_def.journal_ctl,
            ));
            journal_ports_of[link.dst].push((true, inputs_of[link.dst].len(), in_def.journal_ctl));
            let interval = j.commit_interval.max(1);
            // Producer side: staged outputs live outside the ring, so the
            // interval needs no capacity clamp.
            let src_iv = &mut journal_interval_of[link.src];
            *src_iv = (*src_iv).min(interval);
            // Consumer side: unacknowledged pops still count into the
            // link's occupancy. Clamp the open transaction to half the
            // ring's ceiling so a batching consumer can never wedge a
            // blocked producer on a fixed-capacity link, and to the replay
            // bound so a full interval is always replayable.
            let cap = cfg.max_capacity.min(u32::MAX as usize) as u32;
            let bound = j.bound.min(u32::MAX as usize) as u32;
            let dst_iv = &mut journal_interval_of[link.dst];
            *dst_iv = (*dst_iv).min(interval).min((cap / 2).max(1)).min(bound);
        }
        outputs_of[link.src].push((out_def.name.clone(), producer));
        out_fifos_of[link.src].push(fifo.clone());
        inputs_of[link.dst].push((in_def.name.clone(), consumer, fifo));
    }

    // Batched commits are only sound for *fully* journaled kernels: if any
    // input link is unjournaled, a rewind cannot re-serve pops made in the
    // open transaction's earlier runs (their loss window would widen from
    // one run to the whole interval); if any output link is unjournaled,
    // those earlier runs already published their outputs, so replaying
    // their inputs would duplicate them. Partially journaled kernels keep
    // the one-run transaction of the base contract.
    for k in 0..n_kernels {
        if journal_ports_of[k].is_empty() {
            continue;
        }
        let jin = journal_ports_of[k].iter().filter(|(i, _, _)| *i).count();
        let jout = journal_ports_of[k].len() - jin;
        if jin < inputs_of[k].len() || jout < outputs_of[k].len() {
            journal_interval_of[k] = 1;
        }
    }

    // --- width targets for the optimizer ---------------------------------
    let width_targets: Vec<WidthTarget> = planned_splits
        .into_iter()
        .filter_map(|p| {
            let input_edge = map
                .links
                .iter()
                .position(|l| l.dst == p.split_idx)
                .map(|i| edge_fifos[i].clone())?;
            let replica_inputs: Vec<Arc<dyn Monitorable>> = map
                .links
                .iter()
                .enumerate()
                .filter(|(_, l)| l.src == p.split_idx)
                .map(|(i, _)| edge_fifos[i].clone())
                .collect();
            Some(WidthTarget {
                control: p.control,
                input: input_edge,
                replica_inputs,
                name: p.original_name,
            })
        })
        .collect();

    // --- contexts & runners ----------------------------------------------
    let stop = Arc::new(AtomicBool::new(false));
    // Graph-wide drain level, shared by every context; the ladder thread
    // below raises it.
    let drain_flag = Arc::new(AtomicU8::new(0));
    let drain_request = map.drain_request.clone();
    let drain_grace = map.cfg.drain_grace;
    let mut runners = Vec::with_capacity(n_kernels);
    let mut telemetries = Vec::with_capacity(n_kernels);
    let mut names = Vec::with_capacity(n_kernels);
    let input_iters = inputs_of.into_iter();
    let output_iters = outputs_of.into_iter();
    // Successor table for the cache-aware chained scheduler, plus a link
    // snapshot the partitioned scheduler maps over.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n_kernels];
    for link in &map.links {
        if !successors[link.src].contains(&link.dst) {
            successors[link.src].push(link.dst);
        }
    }
    let links_snapshot: Vec<(usize, usize)> = map.links.iter().map(|l| (l.src, l.dst)).collect();
    for ((((((entry, inputs), outputs), succ), out_fifos), journal_ports), journal_interval) in map
        .kernels
        .into_iter()
        .zip(input_iters)
        .zip(output_iters)
        .zip(successors)
        .zip(out_fifos_of)
        .zip(journal_ports_of)
        .zip(journal_interval_of)
    {
        let KernelEntry {
            kernel,
            name,
            policy,
            ..
        } = entry;
        let input_fifos: Vec<Arc<dyn Monitorable>> =
            inputs.iter().map(|(_, _, f)| f.clone()).collect();
        let mut ctx = Context::new(name.clone(), inputs, outputs, stop.clone());
        ctx.set_drain_flag(drain_flag.clone());
        let telemetry = Arc::new(KernelTelemetry::default());
        telemetries.push(telemetry.clone());
        names.push(name.clone());
        runners.push(KernelRunner {
            name,
            kernel,
            ctx,
            input_fifos,
            telemetry,
            successors: succ,
            output_fifos: out_fifos,
            policy,
            restarts: 0,
            journal_ports,
            journal_interval: if journal_interval == u32::MAX {
                1
            } else {
                journal_interval
            },
            journal_uncommitted: 0,
        });
    }

    // --- monitor -----------------------------------------------------------
    let monitor_fifos: Vec<(String, Arc<dyn Monitorable>)> = edge_names
        .iter()
        .cloned()
        .zip(edge_fifos.iter().cloned())
        .collect();
    let health_targets: Vec<HealthTarget> = names
        .iter()
        .zip(&telemetries)
        .map(|(name, t)| HealthTarget {
            name: name.clone(),
            telemetry: t.clone(),
        })
        .collect();
    let monitor_handle = monitor::spawn(
        map.cfg.monitor.clone(),
        monitor_fifos,
        width_targets,
        health_targets,
        Some(stop.clone()),
    );

    // --- drain ladder (watchdog deadline + StopHandle requests) ------------
    // One thread drives the graph-wide shutdown protocol: level 1 stops the
    // sources (cooperative, lossless — in-flight data flushes), and if the
    // graph still hasn't finished after `drain_grace` (or a handle asked
    // for level 2 outright), level 2 makes every FIFO fail fast so kernels
    // blocked mid-push/pop unstick. The watchdog deadline enters the same
    // ladder instead of just raising `stop`.
    let drain_events: Arc<Mutex<Vec<DrainEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let ladder = {
        let stop = stop.clone();
        let drain_flag = drain_flag.clone();
        let fifos: Vec<Arc<dyn Monitorable>> = edge_fifos.clone();
        let events = drain_events.clone();
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = cancel.clone();
        let handle = std::thread::Builder::new()
            .name("raft-drain".into())
            .spawn(move || {
                let t0 = Instant::now();
                let deadline_at = deadline.map(|d| t0 + d);
                let mut applied: u8 = 0;
                let mut escalate_at: Option<Instant> = None;
                while !cancel2.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    let mut want = drain_request.load(Ordering::SeqCst);
                    let mut reason = DrainReason::Caller;
                    if want < DRAIN_DRAINING && deadline_at.is_some_and(|at| now >= at) {
                        want = DRAIN_DRAINING;
                        reason = DrainReason::Deadline;
                    }
                    if want == DRAIN_DRAINING
                        && applied >= DRAIN_DRAINING
                        && escalate_at.is_some_and(|at| now >= at)
                    {
                        want = DRAIN_QUIESCED;
                        reason = DrainReason::GraceExpired;
                    }
                    while applied < want.min(DRAIN_QUIESCED) {
                        applied += 1;
                        drain_flag.store(applied, Ordering::SeqCst);
                        for f in &fifos {
                            f.set_drain_level(applied);
                        }
                        if applied == DRAIN_DRAINING {
                            // Level 1 doubles as the cooperative stop flag
                            // long-running sources already poll.
                            stop.store(true, Ordering::Relaxed);
                            escalate_at = Some(now + drain_grace);
                        }
                        events.lock().push(DrainEvent {
                            at: t0.elapsed(),
                            level: applied,
                            reason,
                        });
                    }
                    if applied >= DRAIN_QUIESCED {
                        return; // ladder fully applied; nothing left to do
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .expect("spawn drain ladder");
        (cancel, handle)
    };

    // --- run ---------------------------------------------------------------
    let timing = true;
    let started = Instant::now();
    let sched_out = match map.cfg.scheduler {
        SchedulerKind::ThreadPerKernel => ThreadPerKernel { timing }.execute(runners, stop.clone()),
        SchedulerKind::Pool { workers } => CooperativePool {
            workers,
            timing,
            quantum: 32,
        }
        .execute(runners, stop.clone()),
        SchedulerKind::Chained { workers } => ChainedPool {
            workers,
            timing,
            quantum: 32,
        }
        .execute(runners, stop.clone()),
        SchedulerKind::Partitioned { workers } => {
            // §4.1's mapping: partition the kernel graph across workers
            // (here each worker is one latency domain leaf).
            let mut comm = crate::mapper::CommGraph::new(runners.len());
            for l in &links_snapshot {
                if l.0 != l.1 {
                    comm.add_edge(l.0, l.1, 1);
                }
            }
            let topo = crate::mapper::Domain::symmetric_host("pool", workers.max(1), 100);
            let mapping = crate::mapper::map_kernels(&comm, &topo);
            let partition: Vec<usize> = mapping
                .assignment
                .iter()
                .map(|r| {
                    r.name
                        .rsplit("core")
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0)
                })
                .collect();
            PartitionedPool {
                partition,
                workers,
                timing,
                quantum: 32,
            }
            .execute(runners, stop.clone())
        }
        SchedulerKind::Stealing { workers, pin } => {
            // Seed initial placement from the same §4.1 mapping the
            // partitioned pool uses; stealing then rebalances dynamically.
            let mut comm = crate::mapper::CommGraph::new(runners.len());
            for l in &links_snapshot {
                if l.0 != l.1 {
                    comm.add_edge(l.0, l.1, 1);
                }
            }
            let topo = crate::mapper::Domain::symmetric_host("pool", workers.max(1), 100);
            let mapping = crate::mapper::map_kernels(&comm, &topo);
            let placement: Vec<usize> = mapping
                .assignment
                .iter()
                .map(|r| {
                    r.name
                        .rsplit("core")
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0)
                })
                .collect();
            crate::stealing::WorkStealing {
                workers,
                timing,
                quantum: 32,
                pin,
                placement,
            }
            .execute(runners, stop.clone())
        }
    };
    let outcomes = sched_out.outcomes;
    let workers = sched_out.workers;
    let elapsed = started.elapsed();
    {
        let (cancel, handle) = ladder;
        cancel.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    let (resize_events, width_events, watchdog_events) = monitor_handle.finish();

    // --- report ------------------------------------------------------------
    let edges = edge_names
        .into_iter()
        .zip(edge_fifos.iter())
        .map(|(name, f)| EdgeReport {
            name,
            stats: f.snapshot(),
            alloc: f.link_alloc(),
        })
        .collect();
    let _ = edge_endpoints;
    // Fatal = an Abort-policy panic: those (and only those) fail `exe()`.
    // Panics absorbed by Skip/Restart/Replace policies surface through the
    // per-kernel outcomes instead — graceful degradation.
    let mut fatal: Vec<String> = outcomes
        .iter()
        .filter(|o| o.fatal)
        .map(|o| o.name.clone())
        .collect();
    // Concurrent panics land in scheduler-dependent order; sort so callers
    // (and tests) see a deterministic list.
    fatal.sort();
    let outcome_of = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.outcome)
            .unwrap_or(KernelOutcome::Completed)
    };
    let kernels = names
        .into_iter()
        .zip(telemetries)
        .map(|(name, t)| {
            let outcome = outcome_of(&name);
            KernelReport {
                runs: t.runs.load(Ordering::Relaxed),
                busy: Duration::from_nanos(t.busy_ns.load(Ordering::Relaxed)),
                name,
                panicked: outcome.panicked(),
                outcome,
                commits: t.commits.load(Ordering::Relaxed),
                rewinds: t.rewinds.load(Ordering::Relaxed),
            }
        })
        .collect();

    let report = ExeReport {
        elapsed,
        edges,
        kernels,
        resize_events,
        width_events,
        watchdog_events,
        replicated,
        kernel_classes,
        workers,
        fused: fused_infos.iter().map(|i| i.report()).collect(),
        drain_events: std::mem::take(&mut *drain_events.lock()),
        procs: Vec::new(),
    };
    if fatal.is_empty() {
        Ok(report)
    } else {
        Err(ExeError::KernelPanicked { kernels: fatal })
    }
}

struct PlannedSplit {
    split_idx: usize,
    width: u32,
    control: WidthControl,
    original_name: String,
}

/// Expand every eligible kernel into `width` replicas with split/reduce
/// adapters (§4.1). Mutates the map's kernel and link tables in place.
fn expand_replicas(map: &mut RaftMap) -> Vec<PlannedSplit> {
    let mut planned = Vec::new();
    let auto = map.cfg.parallel.enabled;
    let default_width = map.cfg.parallel.max_width.max(1);
    let strategy = map.cfg.parallel.strategy;

    // Snapshot candidate list first; expansion appends kernels/links.
    let candidates: Vec<usize> = (0..map.kernels.len()).collect();
    for k in candidates {
        let width = match map.kernels[k].width_hint {
            Some(w) => w,
            None if auto => default_width,
            None => 1,
        };
        if width <= 1 {
            continue;
        }
        // Eligibility: exactly one input and one output...
        if map.kernels[k].spec.inputs.len() != 1 || map.kernels[k].spec.outputs.len() != 1 {
            continue;
        }
        // ...whose streams are both out-of-order safe...
        let in_link = map.links.iter().position(|l| l.dst == k);
        let out_link = map.links.iter().position(|l| l.src == k);
        let (Some(in_idx), Some(out_idx)) = (in_link, out_link) else {
            continue;
        };
        if map.links[in_idx].ordered || map.links[out_idx].ordered {
            continue;
        }
        // ...and the kernel can produce replicas.
        let Some(first_replica) = map.kernels[k].kernel.clone_replica() else {
            continue;
        };

        let original_name = map.kernels[k].name.clone();
        let in_def = &map.kernels[k].spec.inputs[0];
        let out_def = &map.kernels[k].spec.outputs[0];
        let in_adapters = (in_def.adapters)();
        let out_adapters = (out_def.adapters)();
        let in_port_name = in_def.name.clone();
        let out_port_name = out_def.name.clone();

        // Build adapters.
        let (split_kernel, control) = (in_adapters.split)(width as usize, strategy);
        if let Some(start) = map.kernels[k].start_width {
            control.set(start);
        }
        let reduce_kernel = (out_adapters.reduce)(width as usize);
        let split_idx = push_kernel(map, split_kernel, &format!("{original_name}-split"));
        let reduce_idx = push_kernel(map, reduce_kernel, &format!("{original_name}-reduce"));

        // Replicas: the original kernel is replica 0; the eligibility clone
        // becomes replica 1 and further clones fill the rest.
        let mut first_replica = Some(first_replica);
        let mut replica_idxs = vec![k];
        for r in 1..width {
            let replica = match first_replica.take() {
                Some(fr) => fr,
                None => map.kernels[k]
                    .kernel
                    .clone_replica()
                    .expect("clone_replica became None mid-expansion"),
            };
            let idx = push_kernel(map, replica, &format!("{original_name}-r{r}"));
            map.kernels[idx].policy = map.kernels[k].policy.clone();
            replica_idxs.push(idx);
        }

        // Rewire: upstream -> split
        let (in_ordered, in_fifo) = (map.links[in_idx].ordered, map.links[in_idx].fifo);
        let (out_ordered, out_fifo) = (map.links[out_idx].ordered, map.links[out_idx].fifo);
        map.links[in_idx].dst = split_idx;
        map.links[in_idx].dst_port = 0; // split's single input "in"
                                        // downstream <- reduce
        map.links[out_idx].src = reduce_idx;
        map.links[out_idx].src_port = 0; // reduce's single output "out"

        // split.i -> replica_i.in ; replica_i.out -> reduce.i
        for (i, &ri) in replica_idxs.iter().enumerate() {
            map.links.push(LinkEntry {
                src: split_idx,
                src_port: i,
                dst: ri,
                dst_port: 0,
                ordered: in_ordered,
                fifo: in_fifo,
            });
            map.links.push(LinkEntry {
                src: ri,
                src_port: 0,
                dst: reduce_idx,
                dst_port: i,
                ordered: out_ordered,
                fifo: out_fifo,
            });
        }
        let _ = (in_port_name, out_port_name);

        planned.push(PlannedSplit {
            split_idx,
            width,
            control,
            original_name,
        });
    }
    planned
}

fn push_kernel(map: &mut RaftMap, kernel: Box<dyn Kernel>, name: &str) -> usize {
    let spec = kernel.ports();
    map.kernels.push(KernelEntry {
        kernel,
        spec,
        name: format!("{name}#{}", map.kernels.len()),
        width_hint: None,
        start_width: None,
        service_rate: None,
        policy: crate::supervise::SupervisorPolicy::Abort,
        stateless: None,
    });
    map.kernels.len() - 1
}
