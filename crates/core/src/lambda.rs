//! Lambda kernels — full kernels from closures, no struct boilerplate.
//!
//! §4.2 / Figure 7 of the paper: "RaftLib brings lambda compute kernels,
//! which give the user the ability to declare a fully functional,
//! independent kernel while freeing him/her from the cruft that would
//! normally accompany such a declaration."
//!
//! Ports are named `"0"`, `"1"`, … in declaration order, exactly as in the
//! paper's figure. Three shapes cover the common cases, plus a fully
//! general constructor:
//!
//! * [`lambda_source`] — 0 inputs, 1 output; closure returns
//!   `Some(item)` or `None` for end-of-stream;
//! * [`lambda_map`] — 1 input, 1 output; item-to-item transform;
//! * [`lambda_sink`] — 1 input, 0 outputs; consumes items;
//! * [`LambdaKernel::new`] — explicit port counts with raw [`Context`]
//!   access (the paper's general form).
//!
//! The paper warns that capturing by reference breaks replication; Rust's
//! `move` closures and the `Send + 'static` bounds make that mistake a
//! compile error here. Closures that are also `Clone` yield replicable
//! lambda kernels automatically.

use crate::kernel::{KStatus, Kernel, PortSpec};
use crate::port::Context;

/// A kernel defined by a closure over the raw [`Context`].
pub struct LambdaKernel<F> {
    spec_builder: fn() -> PortSpec,
    body: F,
    label: &'static str,
}

impl<F> LambdaKernel<F>
where
    F: FnMut(&Context) -> KStatus + Send + 'static,
{
    /// Fully general lambda kernel: provide a `PortSpec` builder (a plain
    /// fn so the spec stays reproducible) and the body called per quantum.
    pub fn new(spec_builder: fn() -> PortSpec, body: F) -> Self {
        LambdaKernel {
            spec_builder,
            body,
            label: "lambda",
        }
    }
}

impl<F> Kernel for LambdaKernel<F>
where
    F: FnMut(&Context) -> KStatus + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        (self.spec_builder)()
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        (self.body)(ctx)
    }

    fn name(&self) -> String {
        self.label.to_string()
    }
}

/// Source lambda: yields items until the closure returns `None`.
pub fn lambda_source<T, F>(mut f: F) -> impl Kernel
where
    T: Send + Clone + 'static,
    F: FnMut() -> Option<T> + Send + 'static,
{
    SourceLambda {
        f: move |out: &mut crate::port::OutPort<'_, T>| match f() {
            Some(v) => {
                if out.push(v).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            None => KStatus::Stop,
        },
        _marker: std::marker::PhantomData,
    }
}

struct SourceLambda<T, G> {
    f: G,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T, G> Kernel for SourceLambda<T, G>
where
    T: Send + Clone + 'static,
    G: FnMut(&mut crate::port::OutPort<'_, T>) -> KStatus + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<T>("0")
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut out = ctx.output::<T>("0");
        (self.f)(&mut out)
    }
    fn name(&self) -> String {
        "lambda-source".to_string()
    }
}

/// Map lambda: one input, one output, item-at-a-time transform. If the
/// closure is `Clone`, the kernel is replicable by the auto-parallelizer.
pub fn lambda_map<A, B, F>(f: F) -> MapLambda<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    MapLambda {
        f,
        _marker: std::marker::PhantomData,
    }
}

/// See [`lambda_map`].
pub struct MapLambda<A, B, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(A) -> B>,
}

impl<A, B, F> Kernel for MapLambda<A, B, F>
where
    A: Send + Clone + 'static,
    B: Send + Clone + 'static,
    F: FnMut(A) -> B + Clone + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<A>("0").output::<B>("0")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<A>("0");
        match input.pop() {
            Ok(v) => {
                drop(input);
                let b = (self.f)(v);
                let mut out = ctx.output::<B>("0");
                if out.push(b).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "lambda-map".to_string()
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(MapLambda {
            f: self.f.clone(),
            _marker: std::marker::PhantomData,
        }))
    }

    // Fusable once the user asserts purity via `declare_stateless` (the
    // closure's `Clone` bound alone does not promise it is stateless).
    fn is_fusable(&self) -> bool {
        true
    }

    fn batch_stage(&mut self) -> Option<Box<dyn crate::kernel::ErasedBatchStage>> {
        Some(crate::kernel::per_element("lambda-map", self.f.clone()))
    }
}

/// Sink lambda: consumes every item.
pub fn lambda_sink<T, F>(mut f: F) -> impl Kernel
where
    T: Send + Clone + 'static,
    F: FnMut(T) + Send + 'static,
{
    SinkLambda {
        f: move |v: T| f(v),
        _marker: std::marker::PhantomData,
    }
}

struct SinkLambda<T, G> {
    f: G,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, G> Kernel for SinkLambda<T, G>
where
    T: Send + Clone + 'static,
    G: FnMut(T) + Send + 'static,
{
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("0")
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("0");
        match input.pop() {
            Ok(v) => {
                drop(input);
                (self.f)(v);
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }
    fn name(&self) -> String {
        "lambda-sink".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_ports() {
        let k = lambda_source(|| Some(1u32));
        let spec = k.ports();
        assert_eq!(spec.inputs.len(), 0);
        assert_eq!(spec.outputs.len(), 1);
        assert_eq!(spec.outputs[0].name, "0");
    }

    #[test]
    fn map_ports_and_replication() {
        let k = lambda_map(|x: u32| x as u64 * 2);
        let spec = k.ports();
        assert_eq!(spec.inputs.len(), 1);
        assert_eq!(spec.outputs.len(), 1);
        assert!(k.clone_replica().is_some(), "Clone closure => replicable");
    }

    #[test]
    fn sink_ports() {
        let k = lambda_sink(|_x: String| {});
        let spec = k.ports();
        assert_eq!(spec.inputs.len(), 1);
        assert_eq!(spec.outputs.len(), 0);
    }

    #[test]
    fn general_lambda_spec() {
        let k = LambdaKernel::new(
            || {
                PortSpec::new()
                    .input::<u8>("0")
                    .input::<u8>("1")
                    .output::<u8>("0")
            },
            |_ctx| KStatus::Stop,
        );
        let spec = k.ports();
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.outputs.len(), 1);
    }
}
