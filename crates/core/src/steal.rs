//! Work-stealing queues for [`crate::scheduler::SchedulerKind::Stealing`]:
//! a per-worker Chase–Lev deque and a bounded MPMC injector.
//!
//! Both queues move **task ids** (`usize` indices into the scheduler's
//! runner table), not boxed work items, which makes them implementable in
//! 100% safe Rust: every slot is an `AtomicUsize`, so the racy
//! read-value-then-CAS shape of the Chase–Lev `steal` is an atomic load
//! whose result is simply discarded when the CAS loses — no torn reads, no
//! `MaybeUninit`, no reclamation.
//!
//! Capacity is **fixed** at construction. The scheduler's task state
//! machine guarantees each task id is in at most one queue at a time
//! (IDLE→QUEUED transitions are claimed by a single CAS winner), so a
//! capacity of `n_tasks` per deque can never overflow; overflow therefore
//! panics as a scheduler-invariant violation rather than growing.
//!
//! The deque follows Chase & Lev, "Dynamic Circular Work-Stealing Deque"
//! (SPAA'05) with the C11 orderings from Lê et al., "Correct and Efficient
//! Work-Stealing for Weak Memory Models" (PPoPP'13). The injector is
//! Vyukov's bounded MPMC queue (per-slot sequence numbers), which keeps
//! injected tasks FIFO so graph sources drain in submission order.

use std::sync::atomic::{
    fence, AtomicIsize, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release, SeqCst},
};

use crossbeam::utils::CachePadded;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task id was stolen.
    Success(usize),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
}

/// Fixed-capacity Chase–Lev deque. The owning worker pushes and pops at the
/// *bottom* (LIFO — hot caches); thieves steal from the *top* (FIFO —
/// oldest, least cache-warm work).
///
/// `push`/`pop` must only be called by the owning worker thread; `steal`
/// may be called from any thread. This is a runtime protocol (the
/// scheduler gives each worker its own deque index), not a type-level one,
/// but violating it can only mis-order task ids — the slots are atomics, so
/// there is no memory unsafety to reach.
#[derive(Debug)]
pub struct WorkerDeque {
    /// Ring of task ids; length is a power of two.
    slots: Box<[AtomicUsize]>,
    mask: usize,
    /// Owner end. Signed so the transient `bottom = top - 1` state in `pop`
    /// cannot underflow.
    bottom: CachePadded<AtomicIsize>,
    /// Thief end; monotonically increasing.
    top: CachePadded<AtomicIsize>,
}

impl WorkerDeque {
    /// A deque that can hold `capacity` task ids (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        WorkerDeque {
            slots: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            bottom: CachePadded::new(AtomicIsize::new(0)),
            top: CachePadded::new(AtomicIsize::new(0)),
        }
    }

    /// Owner: push a task id at the bottom.
    ///
    /// # Panics
    /// If the deque is full — impossible while the scheduler's
    /// one-queue-per-task invariant holds, so a panic here is a bug report.
    pub fn push(&self, task: usize) {
        let b = self.bottom.load(Relaxed);
        // Acquire: pairs with thieves' top CAS; a stale (smaller) top only
        // makes the fullness check more conservative, never less.
        let t = self.top.load(Acquire);
        assert!(
            b - t <= self.mask as isize,
            "WorkerDeque overflow: task {task} pushed into a full deque \
             (scheduler one-queue-per-task invariant violated)"
        );
        self.slots[b as usize & self.mask].store(task, Relaxed);
        // Release: publishes the slot store before the new bottom becomes
        // visible to a thief's Acquire bottom load.
        fence(Release);
        self.bottom.store(b + 1, Relaxed);
    }

    /// Owner: pop the most recently pushed task id (LIFO end).
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Relaxed) - 1;
        self.bottom.store(b, Relaxed);
        // SeqCst: orders the bottom decrement before the top load in the SC
        // total order — the Dekker handshake against a concurrent thief
        // (its CAS on `top` is SeqCst), so both sides cannot take the same
        // last element.
        fence(SeqCst);
        let t = self.top.load(Relaxed);
        if t <= b {
            let task = self.slots[b as usize & self.mask].load(Relaxed);
            if t == b {
                // Last element: race the thieves for it via top.
                let won = self.top.compare_exchange(t, t + 1, SeqCst, Relaxed).is_ok();
                self.bottom.store(b + 1, Relaxed);
                return won.then_some(task);
            }
            Some(task)
        } else {
            // Already empty; undo the decrement.
            self.bottom.store(b + 1, Relaxed);
            None
        }
    }

    /// Thief: steal the oldest task id (FIFO end). Any thread.
    pub fn steal(&self) -> Steal {
        // Acquire top first, then SeqCst-fence, then Acquire bottom: the
        // fence orders our top read before the bottom read against the
        // owner's pop-side SeqCst fence (Lê et al. §4).
        let t = self.top.load(Acquire);
        fence(SeqCst);
        let b = self.bottom.load(Acquire);
        if t < b {
            // Atomic slot load: if the CAS below fails the value is simply
            // discarded, so a racing overwrite by the owner is harmless.
            let task = self.slots[t as usize & self.mask].load(Relaxed);
            if self.top.compare_exchange(t, t + 1, SeqCst, Relaxed).is_ok() {
                return Steal::Success(task);
            }
            return Steal::Retry;
        }
        Steal::Empty
    }

    /// Observed emptiness (racy; for idle heuristics only).
    pub fn is_empty(&self) -> bool {
        self.bottom.load(Relaxed) <= self.top.load(Relaxed)
    }

    /// Entries currently queued. Exact for the owner; for other threads a
    /// racy snapshot (fine for heuristics like "is work backing up?").
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Relaxed);
        let t = self.top.load(Relaxed);
        b.saturating_sub(t).max(0) as usize
    }
}

/// One slot of the [`Injector`]: Vyukov sequence number + payload.
#[derive(Debug)]
struct InjectorSlot {
    /// Slot generation stamp: `pos` when free for the producer of ticket
    /// `pos`, `pos + 1` once filled, `pos + capacity` once drained.
    seq: AtomicUsize,
    task: AtomicUsize,
}

/// Bounded MPMC FIFO queue: the global entry point for woken tasks. Waker
/// callbacks (running on arbitrary producer threads) push here; idle
/// workers drain it before stealing from each other.
#[derive(Debug)]
pub struct Injector {
    slots: Box<[InjectorSlot]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

impl Injector {
    /// An injector that can hold `capacity` task ids (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        Injector {
            slots: (0..cap)
                .map(|i| InjectorSlot {
                    seq: AtomicUsize::new(i),
                    task: AtomicUsize::new(0),
                })
                .collect(),
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Enqueue a task id. Any thread.
    ///
    /// # Panics
    /// If the queue is full — impossible while the scheduler's
    /// one-queue-per-task invariant holds.
    pub fn push(&self, task: usize) {
        let mut pos = self.enqueue_pos.load(Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // Acquire: pairs with the consumer's Release seq store, ordering
            // its drain of the previous generation before our refill.
            let seq = slot.seq.load(Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free for this ticket; claim it.
                match self
                    .enqueue_pos
                    .compare_exchange_weak(pos, pos + 1, Relaxed, Relaxed)
                {
                    Ok(_) => {
                        slot.task.store(task, Relaxed);
                        // Release: publishes the payload with the stamp.
                        slot.seq.store(pos + 1, Release);
                        return;
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                panic!(
                    "Injector overflow: task {task} pushed into a full queue \
                     (scheduler one-queue-per-task invariant violated)"
                );
            } else {
                // Another producer claimed this ticket; take the next.
                pos = self.enqueue_pos.load(Relaxed);
            }
        }
    }

    /// Dequeue the oldest task id, if any. Any thread.
    pub fn pop(&self) -> Option<usize> {
        let mut pos = self.dequeue_pos.load(Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // Acquire: pairs with the producer's Release seq store.
            let seq = slot.seq.load(Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self
                    .dequeue_pos
                    .compare_exchange_weak(pos, pos + 1, Relaxed, Relaxed)
                {
                    Ok(_) => {
                        let task = slot.task.load(Relaxed);
                        // Release: frees the slot for the producer one
                        // generation ahead.
                        slot.seq.store(pos + self.mask + 1, Release);
                        return Some(task);
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Relaxed);
            }
        }
    }

    /// Observed emptiness (racy; for idle heuristics only).
    pub fn is_empty(&self) -> bool {
        let pos = self.dequeue_pos.load(Relaxed);
        let seq = self.slots[pos & self.mask].seq.load(Relaxed);
        (seq as isize - (pos + 1) as isize) < 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn deque_lifo_for_owner() {
        let d = WorkerDeque::new(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn deque_fifo_for_thief() {
        let d = WorkerDeque::new(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.steal(), Steal::Success(2));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn deque_capacity_rounds_up() {
        let d = WorkerDeque::new(5); // rounds to 8
        for i in 0..8 {
            d.push(i);
        }
        for i in (0..8).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "WorkerDeque overflow")]
    fn deque_overflow_panics() {
        let d = WorkerDeque::new(2);
        d.push(0);
        d.push(1);
        d.push(2);
    }

    #[test]
    fn injector_is_fifo() {
        let q = Injector::new(8);
        assert!(q.is_empty());
        q.push(10);
        q.push(20);
        q.push(30);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(30));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn injector_wraps_generations() {
        let q = Injector::new(2);
        for round in 0..10 {
            q.push(round);
            q.push(round + 100);
            assert_eq!(q.pop(), Some(round));
            assert_eq!(q.pop(), Some(round + 100));
            assert_eq!(q.pop(), None);
        }
    }

    /// Stress: every task id pushed (from several threads, each id once —
    /// mirroring the scheduler invariant) is popped/stolen exactly once.
    #[test]
    fn no_task_lost_or_duplicated_under_contention() {
        const PER_THREAD: usize = 1000;
        const PRODUCERS: usize = 4;
        let total = PER_THREAD * PRODUCERS;
        let q = Arc::new(Injector::new(total));
        let d = Arc::new(WorkerDeque::new(total));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        q.push(p * PER_THREAD + i);
                    }
                })
            })
            .collect();

        // Owner drains injector into its deque and pops; two thieves steal.
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 10_000 {
                        match d.steal() {
                            Steal::Success(t) => {
                                got.push(t);
                                dry = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => dry += 1,
                        }
                    }
                    got
                })
            })
            .collect();

        let mut seen: Vec<usize> = Vec::with_capacity(total);
        let mut idle = 0;
        while seen.len() < total && idle < 100_000 {
            let mut progressed = false;
            while let Some(t) = q.pop() {
                d.push(t);
                progressed = true;
            }
            if let Some(t) = d.pop() {
                seen.push(t);
                progressed = true;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                std::thread::yield_now();
            }
            // Leave some stealable work: stop hoarding once producers exit.
            if seen.len() + 64 >= total {
                break;
            }
        }

        for p in producers {
            p.join().unwrap();
        }
        // Final drain so thieves can go dry.
        while let Some(t) = q.pop() {
            d.push(t);
        }
        while let Some(t) = d.pop() {
            seen.push(t);
        }
        for t in thieves {
            seen.extend(t.join().unwrap());
        }
        // Anything the thieves missed at the end.
        while let Some(t) = d.pop() {
            seen.push(t);
        }

        assert_eq!(seen.len(), total, "lost or duplicated task ids");
        let unique: HashSet<_> = seen.iter().copied().collect();
        assert_eq!(unique.len(), total, "duplicated task ids");
    }
}
