//! Dataflow analysis framework behind [`crate::map::RaftMap::check`].
//!
//! The original `check.rs` ran each lint as an independent function over
//! the raw map. This module restructures that into a shared-substrate
//! design: an [`Analysis`] context is built once per check — adjacency,
//! Tarjan SCCs and source-reachability in [`GraphView`], plus the `RC0008`
//! cycle solver verdicts — and every registered pass consumes it. Passes
//! live in submodules by theme:
//!
//! * [`structure`] — `RC0001`–`RC0006`: connectivity, endpoints, cycles,
//!   reachability, link-table integrity, element types;
//! * [`capacity`] — `RC0007` capacity feasibility and `RC0008`
//!   feedback-deadlock certification (certify-or-counterexample);
//! * [`replication`] — `RC0009` replication/fusion-safety inference and
//!   the [`KernelClassification`] export;
//! * [`supervision`] — `RC0010` supervision-policy soundness;
//! * [`fusion`] — the `RC0011` fusion plan report *and* the `exe()`-time
//!   rewrite that collapses fusable chains into one batch-executed kernel.
//!
//! The registry itself (codes, names, ordering) stays in
//! [`crate::check`], which is the stable public facade.

pub mod capacity;
pub mod fusion;
pub mod graph;
pub mod replication;
pub mod structure;
pub mod supervision;

#[cfg(test)]
mod golden;

pub use capacity::{CycleInfo, CycleVerdict};
pub use fusion::{FusedGroupReport, FusionConfig, FusionGroup};
pub use graph::GraphView;
pub use replication::{classify, KernelClassification};

use crate::map::RaftMap;

/// Shared context every lint pass receives: the map under analysis, the
/// graph substrate, and the feedback cycles with their `RC0008` solver
/// verdicts. Built once per [`crate::map::RaftMap::check`] call.
pub struct Analysis<'m> {
    /// The map under analysis.
    pub(crate) map: &'m RaftMap,
    /// Adjacency / SCC / reachability substrate.
    pub graph: GraphView,
    /// Feedback cycles found by Tarjan, each with its solver verdict.
    pub cycles: Vec<CycleInfo>,
}

impl<'m> Analysis<'m> {
    /// Build the analysis context for `map`: graph view first, then the
    /// cycle solver over every cyclic SCC.
    pub fn new(map: &'m RaftMap) -> Self {
        let graph = GraphView::build(map);
        let cycles = capacity::certify_cycles(map, &graph);
        Analysis { map, graph, cycles }
    }
}
