//! Shared graph substrate for the analysis passes: adjacency, Tarjan SCCs,
//! source-reachability — built once per [`super::Analysis`] and consumed by
//! every lint so no pass re-derives topology on its own.

use crate::map::RaftMap;

/// An immutable adjacency view over a [`RaftMap`]'s kernel graph.
///
/// The view is computed once when an [`super::Analysis`] is constructed and
/// shared by every registered pass: structural lints walk `adj`, the cycle
/// and deadlock passes consume `sccs`, reachability queries BFS from
/// `sources`.
pub struct GraphView {
    /// Deduplicated kernel adjacency: `adj[k]` lists the distinct kernels
    /// fed by `k`'s output streams, in first-link order.
    pub adj: Vec<Vec<usize>>,
    /// Kernels with no input ports — the graph's sources.
    pub sources: Vec<usize>,
    /// Strongly connected components in reverse-topological order, as
    /// produced by the iterative Tarjan pass.
    pub sccs: Vec<Vec<usize>>,
}

impl GraphView {
    /// Build the view for `map`.
    pub fn build(map: &RaftMap) -> Self {
        let n = map.kernels.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for l in &map.links {
            if !adj[l.src].contains(&l.dst) {
                adj[l.src].push(l.dst);
            }
        }
        let sources = map
            .kernels
            .iter()
            .enumerate()
            .filter(|(_, k)| k.spec.inputs.is_empty())
            .map(|(i, _)| i)
            .collect();
        let sccs = tarjan_sccs(n, &adj);
        GraphView { adj, sources, sccs }
    }

    /// Number of kernels in the view.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no kernels.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// BFS from the graph's sources: `reachable[k]` is `true` iff some
    /// token emitted by a source can (topologically) reach kernel `k`.
    pub fn reachable_from_sources(&self) -> Vec<bool> {
        self.downstream_of(&self.sources)
    }

    /// BFS from `starts`: `true` for every start and every kernel reachable
    /// from one (transitively, along stream direction).
    pub fn downstream_of(&self, starts: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut queue: std::collections::VecDeque<usize> = starts.iter().copied().collect();
        for &s in starts {
            seen[s] = true;
        }
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        seen
    }

    /// The SCCs that actually contain a directed cycle — more than one
    /// member, or a single member with a self-loop — with members sorted.
    pub fn cyclic_sccs(&self) -> Vec<Vec<usize>> {
        self.sccs
            .iter()
            .filter(|scc| scc.len() > 1 || self.adj[scc[0]].contains(&scc[0]))
            .map(|scc| {
                let mut members = scc.clone();
                members.sort_unstable();
                members
            })
            .collect()
    }
}

/// Iterative Tarjan SCC over an adjacency list. Returns the strongly
/// connected components in reverse-topological order. Iterative (explicit
/// DFS frames) so deep pipelines cannot overflow the call stack.
pub fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames (node, next-child cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));

        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1];
                frame.1 += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] && index[w] < lowlink[v] {
                    lowlink[v] = index[w];
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    if lowlink[v] < lowlink[parent] {
                        lowlink[parent] = lowlink[v];
                    }
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Display name of kernel `i` ("name#i").
pub(crate) fn kname(map: &RaftMap, i: usize) -> &str {
    &map.kernels[i].name
}

/// `src.port -> dst.port` label for link `li`.
pub(crate) fn link_label(map: &RaftMap, li: usize) -> String {
    let l = &map.links[li];
    format!(
        "{}.{} -> {}.{}",
        kname(map, l.src),
        map.kernels[l.src].spec.outputs[l.src_port].name,
        kname(map, l.dst),
        map.kernels[l.dst].spec.inputs[l.dst_port].name,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_finds_simple_cycle() {
        // 0 -> 1 -> 2 -> 0, 3 isolated
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let sccs = tarjan_sccs(4, &adj);
        let big: Vec<_> = sccs.iter().filter(|s| s.len() > 1).collect();
        assert_eq!(big.len(), 1);
        let mut members = big[0].clone();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2]);
    }

    #[test]
    fn tarjan_handles_deep_chain_iteratively() {
        // 10_000-node chain: recursive Tarjan would risk stack overflow.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        assert_eq!(tarjan_sccs(n, &adj).len(), n);
    }

    #[test]
    fn downstream_of_walks_transitively() {
        // 0 -> 1 -> 2, 3 isolated.
        let view = GraphView {
            adj: vec![vec![1], vec![2], vec![], vec![]],
            sources: vec![0],
            sccs: vec![],
        };
        assert_eq!(view.downstream_of(&[0]), vec![true, true, true, false],);
        assert_eq!(view.downstream_of(&[1]), vec![false, true, true, false],);
    }
}
