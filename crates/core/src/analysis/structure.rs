//! Structural lint passes `RC0001`–`RC0006`: connectivity, endpoints,
//! cycles, reachability, link-table integrity, and element types. Ported
//! from the original `check.rs` onto the shared [`super::Analysis`]
//! substrate; the cycle pass additionally consults the `RC0008` solver
//! verdicts so a certified feedback loop is reported as informational
//! rather than fatal.

use crate::diagnostics::{Diagnostic, Severity};

use super::capacity::CycleVerdict;
use super::graph::{kname, link_label};
use super::Analysis;

/// RC0001: every declared input and output port must be linked (the seed's
/// `validate_connected`, migrated into the registry).
pub(crate) fn lint_unconnected_ports(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let mut out = Vec::new();
    for (ki, entry) in map.kernels.iter().enumerate() {
        for (pi, def) in entry.spec.inputs.iter().enumerate() {
            if !map.links.iter().any(|l| l.dst == ki && l.dst_port == pi) {
                out.push(
                    Diagnostic::new(
                        "RC0001",
                        "unconnected-port",
                        Severity::Error,
                        format!(
                            "input port {:?} of kernel {:?} is not connected",
                            def.name, entry.name
                        ),
                    )
                    .with_kernel(ki),
                );
            }
        }
        for (pi, def) in entry.spec.outputs.iter().enumerate() {
            if !map.links.iter().any(|l| l.src == ki && l.src_port == pi) {
                out.push(
                    Diagnostic::new(
                        "RC0001",
                        "unconnected-port",
                        Severity::Error,
                        format!(
                            "output port {:?} of kernel {:?} is not connected",
                            def.name, entry.name
                        ),
                    )
                    .with_kernel(ki),
                );
            }
        }
    }
    out
}

/// RC0002: a runnable dataflow graph needs at least one source (a kernel
/// with no input ports) and one sink (no output ports); otherwise nothing
/// can start, or nothing can finish draining.
pub(crate) fn lint_missing_endpoints(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let mut out = Vec::new();
    if map.kernels.is_empty() {
        out.push(Diagnostic::new(
            "RC0002",
            "missing-endpoint",
            Severity::Error,
            "map contains no kernels",
        ));
        return out;
    }
    if !map.kernels.iter().any(|k| k.spec.inputs.is_empty()) {
        out.push(Diagnostic::new(
            "RC0002",
            "missing-endpoint",
            Severity::Error,
            "graph has no source kernel (every kernel has input ports): \
             nothing can produce the first element",
        ));
    }
    if !map.kernels.iter().any(|k| k.spec.outputs.is_empty()) {
        out.push(Diagnostic::new(
            "RC0002",
            "missing-endpoint",
            Severity::Error,
            "graph has no sink kernel (every kernel has output ports): \
             backpressure has nowhere to drain",
        ));
    }
    out
}

/// RC0003: Tarjan-SCC cycle detection. A directed cycle of bounded FIFOs
/// deadlocks as soon as every queue on the cycle fills (each kernel blocks
/// pushing to the next). Severity comes from
/// [`crate::check::CheckConfig::cycle_severity`] — unless the `RC0008`
/// solver certified the cycle deadlock-free under the declared rates, in
/// which case the finding is downgraded to [`Severity::Info`].
pub(crate) fn lint_cycles(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let mut out = Vec::new();
    for cycle in &a.cycles {
        let names: Vec<&str> = cycle.members.iter().map(|&i| kname(map, i)).collect();
        let (severity, extra) = match &cycle.verdict {
            CycleVerdict::Certified { .. } => (
                Severity::Info,
                "; RC0008 certifies this cycle deadlock-free under the \
                 declared service rates, so the finding is informational"
                    .to_string(),
            ),
            CycleVerdict::Unknown { missing_rates } => {
                let missing: Vec<&str> = missing_rates.iter().map(|&i| kname(map, i)).collect();
                (
                    map.cfg.check.cycle_severity,
                    format!(
                        "; declare service rates on {{{}}} to let RC0008 \
                         attempt a deadlock-freedom certificate",
                        missing.join(", ")
                    ),
                )
            }
            CycleVerdict::Refuted { .. } => (map.cfg.check.cycle_severity, String::new()),
        };
        out.push(
            Diagnostic::new(
                "RC0003",
                "cycle",
                severity,
                format!(
                    "cycle of bounded streams through {{{}}}: once every queue \
                     on the cycle fills, all {} kernels block forever \
                     (downgrade via MapConfig::check.cycle_severity if the \
                     feedback edge is provably drained){extra}",
                    names.join(", "),
                    cycle.members.len(),
                ),
            )
            .with_kernels(cycle.members.iter().copied())
            .with_links(cycle.links.iter().copied()),
        );
    }
    out
}

/// RC0004: BFS from the sources; kernels no token can ever reach will
/// starve forever. Skipped when the graph has no sources at all — RC0002
/// already reports that, and flagging every kernel would be noise.
pub(crate) fn lint_unreachable(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    if a.graph.sources.is_empty() || a.graph.is_empty() {
        return Vec::new();
    }
    let seen = a.graph.reachable_from_sources();
    let unreached: Vec<usize> = (0..a.graph.len()).filter(|&i| !seen[i]).collect();
    if unreached.is_empty() {
        return Vec::new();
    }
    let names: Vec<&str> = unreached.iter().map(|&i| kname(map, i)).collect();
    vec![Diagnostic::new(
        "RC0004",
        "unreachable",
        Severity::Error,
        format!(
            "kernel(s) {{{}}} are not reachable from any source: their \
             inputs will never receive data",
            names.join(", ")
        ),
    )
    .with_kernels(unreached)]
}

/// RC0005: no two streams may share a port endpoint. `link()` enforces
/// this at construction; the pass is defense in depth for maps assembled
/// or rewritten through crate-internal paths (e.g. replica expansion).
pub(crate) fn lint_duplicate_links(a: &Analysis) -> Vec<Diagnostic> {
    use std::collections::HashMap;
    let map = a.map;
    let mut out = Vec::new();
    let mut by_src: HashMap<(usize, usize), usize> = HashMap::new();
    let mut by_dst: HashMap<(usize, usize), usize> = HashMap::new();
    for (li, l) in map.links.iter().enumerate() {
        if let Some(&prev) = by_src.get(&(l.src, l.src_port)) {
            out.push(
                Diagnostic::new(
                    "RC0005",
                    "duplicate-link",
                    Severity::Error,
                    format!(
                        "output port {:?} of kernel {:?} feeds two streams \
                         ({} and {})",
                        map.kernels[l.src].spec.outputs[l.src_port].name,
                        kname(map, l.src),
                        link_label(map, prev),
                        link_label(map, li),
                    ),
                )
                .with_kernel(l.src)
                .with_links([prev, li]),
            );
        } else {
            by_src.insert((l.src, l.src_port), li);
        }
        if let Some(&prev) = by_dst.get(&(l.dst, l.dst_port)) {
            out.push(
                Diagnostic::new(
                    "RC0005",
                    "duplicate-link",
                    Severity::Error,
                    format!(
                        "input port {:?} of kernel {:?} is fed by two streams \
                         ({} and {}): an ordered port admits exactly one \
                         producer",
                        map.kernels[l.dst].spec.inputs[l.dst_port].name,
                        kname(map, l.dst),
                        link_label(map, prev),
                        link_label(map, li),
                    ),
                )
                .with_kernel(l.dst)
                .with_links([prev, li]),
            );
        } else {
            by_dst.insert((l.dst, l.dst_port), li);
        }
    }
    out
}

/// RC0006: re-verify element types across every stream. `link()` checks
/// this too; the pass re-runs the comparison on the final link table with
/// kernel+port names in the message.
pub(crate) fn lint_type_mismatches(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let mut out = Vec::new();
    for (li, l) in map.links.iter().enumerate() {
        let so = &map.kernels[l.src].spec.outputs[l.src_port];
        let di = &map.kernels[l.dst].spec.inputs[l.dst_port];
        if so.type_id != di.type_id {
            out.push(
                Diagnostic::new(
                    "RC0006",
                    "type-mismatch",
                    Severity::Error,
                    format!(
                        "stream {}.{} -> {}.{} connects element type {} to {}",
                        kname(map, l.src),
                        so.name,
                        kname(map, l.dst),
                        di.name,
                        so.type_name,
                        di.type_name,
                    ),
                )
                .with_kernels([l.src, l.dst])
                .with_link(li),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KStatus, Kernel, PortSpec};
    use crate::map::{LinkEntry, RaftMap};
    use crate::port::Context;

    struct Src;
    impl Kernel for Src {
        fn ports(&self) -> PortSpec {
            PortSpec::new().output::<u32>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    struct Sink;
    impl Kernel for Sink {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u32>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    struct SinkI64;
    impl Kernel for SinkI64 {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<i64>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    /// Duplicate-link and type-mismatch findings require a malformed link
    /// table, which the public API refuses to build — push raw entries.
    #[test]
    fn duplicate_link_pass_flags_shared_endpoints() {
        let mut m = RaftMap::new();
        let s = m.add(Src);
        let a = m.add(Sink);
        let b = m.add(Sink);
        let s2 = m.add(Src);
        m.link(s, "out", a, "in").unwrap();
        // Bypass link(): second stream from s's already-used output, and a
        // second stream (from s2) into a's already-fed input.
        m.links.push(LinkEntry {
            src: s.0,
            src_port: 0,
            dst: b.0,
            dst_port: 0,
            ordered: true,
            fifo: None,
        });
        m.links.push(LinkEntry {
            src: s2.0,
            src_port: 0,
            dst: a.0,
            dst_port: 0,
            ordered: true,
            fifo: None,
        });
        let analysis = Analysis::new(&m);
        let dups = lint_duplicate_links(&analysis);
        assert_eq!(dups.len(), 2, "{dups:?}");
        assert!(dups.iter().all(|d| d.code == "RC0005"));
        assert!(dups.iter().any(|d| d.message.contains("feeds two streams")));
        assert!(dups
            .iter()
            .any(|d| d.message.contains("fed by two streams")));
    }

    #[test]
    fn type_mismatch_pass_names_kernels_and_ports() {
        let mut m = RaftMap::new();
        let s = m.add(Src);
        let t = m.add(SinkI64);
        // link() would reject; push the raw entry.
        m.links.push(LinkEntry {
            src: s.0,
            src_port: 0,
            dst: t.0,
            dst_port: 0,
            ordered: true,
            fifo: None,
        });
        let analysis = Analysis::new(&m);
        let diags = lint_type_mismatches(&analysis);
        assert_eq!(diags.len(), 1);
        let msg = &diags[0].message;
        assert!(msg.contains("Src#0.out"), "{msg}");
        assert!(msg.contains("SinkI64#1.in"), "{msg}");
        assert!(msg.contains("u32") && msg.contains("i64"), "{msg}");
    }
}
