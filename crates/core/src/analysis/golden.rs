//! Golden-snapshot tests: the exact rendered [`Diagnostic`] text of every
//! RC code, byte for byte. Lives inside the crate (not `tests/`) because
//! `RC0005`/`RC0006` need a malformed link table the public API refuses to
//! build. If a message is reworded these tests fail loudly — rewording is
//! fine, silent drift is not.

use raft_buffer::FifoConfig;

use crate::diagnostics::Diagnostic;
use crate::kernel::{KStatus, Kernel, PortSpec};
use crate::map::{LinkEntry, RaftMap};
use crate::port::Context;
use crate::supervise::SupervisorPolicy;

struct Src;
impl Kernel for Src {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<u32>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Sink;
impl Kernel for Sink {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u32>("in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct SinkI64;
impl Kernel for SinkI64 {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<i64>("in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Map1;
impl Kernel for Map1 {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u32>("in").output::<u32>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Stage;
impl Kernel for Stage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<u32>("in")
            .input::<u32>("fb")
            .output::<u32>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct FbStage;
impl Kernel for FbStage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<u32>("in")
            .output::<u32>("out")
            .output::<u32>("fb")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// src -> a(Stage) -> b(FbStage) -> sink, with b.fb -> a.fb closing the
/// cycle {a, b}. Cycle links get fixed capacities so RC0008's numbers are
/// pinned.
fn cyclic_map(cycle_cap: usize) -> (RaftMap, crate::map::KernelId, crate::map::KernelId) {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let a = map.add(Stage);
    let b = map.add(FbStage);
    let sink = map.add(Sink);
    map.link(src, "out", a, "in").unwrap();
    map.link_with(a, "out", b, "in", FifoConfig::fixed(cycle_cap))
        .unwrap();
    map.link(b, "out", sink, "in").unwrap();
    map.link_with(b, "fb", a, "fb", FifoConfig::fixed(cycle_cap))
        .unwrap();
    (map, a, b)
}

fn find(diags: &[Diagnostic], code: &str) -> Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code} in {diags:#?}"))
        .clone()
}

#[test]
fn golden_rc0001_unconnected_port() {
    let mut m = RaftMap::new();
    let src = m.add(Src);
    let a = m.add(Stage);
    let sink = m.add(Sink);
    m.link(src, "out", a, "in").unwrap();
    m.link(a, "out", sink, "in").unwrap();
    let d = find(&m.check(), "RC0001");
    assert_eq!(
        d.to_string(),
        "error[RC0001] unconnected-port: input port \"fb\" of kernel \
         \"Stage#1\" is not connected"
    );
}

#[test]
fn golden_rc0002_missing_endpoint() {
    let d = find(&RaftMap::new().check(), "RC0002");
    assert_eq!(
        d.to_string(),
        "error[RC0002] missing-endpoint: map contains no kernels"
    );
}

#[test]
fn golden_rc0003_cycle_unknown_rates() {
    let d = find(&cyclic_map(4).0.check(), "RC0003");
    assert_eq!(
        d.to_string(),
        "error[RC0003] cycle: cycle of bounded streams through {Stage#1, \
         FbStage#2}: once every queue on the cycle fills, all 2 kernels \
         block forever (downgrade via MapConfig::check.cycle_severity if \
         the feedback edge is provably drained); declare service rates on \
         {Stage#1, FbStage#2} to let RC0008 attempt a deadlock-freedom \
         certificate"
    );
}

#[test]
fn golden_rc0004_unreachable() {
    let mut m = RaftMap::new();
    let src = m.add(Src);
    let sink = m.add(Sink);
    let island = m.add(Map1);
    let island_sink = m.add(Sink);
    m.link(src, "out", sink, "in").unwrap();
    m.link(island, "out", island_sink, "in").unwrap();
    let d = find(&m.check(), "RC0004");
    assert_eq!(
        d.to_string(),
        "error[RC0004] unreachable: kernel(s) {Map1#2, Sink#3} are not \
         reachable from any source: their inputs will never receive data"
    );
}

#[test]
fn golden_rc0005_duplicate_link() {
    let mut m = RaftMap::new();
    let s = m.add(Src);
    let a = m.add(Sink);
    let b = m.add(Sink);
    m.link(s, "out", a, "in").unwrap();
    // Bypass link(): a second stream from s's already-used output.
    m.links.push(LinkEntry {
        src: s.0,
        src_port: 0,
        dst: b.0,
        dst_port: 0,
        ordered: true,
        fifo: None,
    });
    let d = find(&m.check(), "RC0005");
    assert_eq!(
        d.to_string(),
        "error[RC0005] duplicate-link: output port \"out\" of kernel \
         \"Src#0\" feeds two streams (Src#0.out -> Sink#1.in and \
         Src#0.out -> Sink#2.in)"
    );
}

#[test]
fn golden_rc0006_type_mismatch() {
    let mut m = RaftMap::new();
    let s = m.add(Src);
    let t = m.add(SinkI64);
    // link() would reject; push the raw entry.
    m.links.push(LinkEntry {
        src: s.0,
        src_port: 0,
        dst: t.0,
        dst_port: 0,
        ordered: true,
        fifo: None,
    });
    let d = find(&m.check(), "RC0006");
    assert_eq!(
        d.to_string(),
        "error[RC0006] type-mismatch: stream Src#0.out -> SinkI64#1.in \
         connects element type u32 to i64"
    );
}

#[test]
fn golden_rc0007_capacity() {
    let mut m = RaftMap::new();
    let src = m.add(Src);
    let sink = m.add(Sink);
    m.link_with(src, "out", sink, "in", FifoConfig::fixed(1))
        .unwrap();
    m.declare_service_rate(src, 100.0);
    m.declare_service_rate(sink, 10.0);
    let d = find(&m.check(), "RC0007");
    // M/M/1/1 with rho = 10: blocking = rho/(1+rho) = 10/11 ~ 90.9%.
    assert_eq!(
        d.to_string(),
        "warning[RC0007] capacity: stream Src#0.out -> Sink#1.in (capacity \
         ceiling 1) cannot sustain the declared rates λ=100/s -> μ=10/s: \
         steady-state producer blocking ≈ 90.9%\n    help: no finite \
         capacity suffices (λ ≥ μ): widen the consumer or lower the \
         producer rate"
    );
}

#[test]
fn golden_rc0008_certified() {
    let (mut m, a, b) = cyclic_map(4);
    // Cycle members: Stage#1 (10/s) feeding FbStage#2 (100/s). The forward
    // stream has lambda < mu: minimal capacity 2, configured 4 -> witness.
    m.declare_service_rate(a, 10.0);
    m.declare_service_rate(b, 100.0);
    let d = find(&m.check(), "RC0008");
    assert_eq!(
        d.to_string(),
        "info[RC0008] feedback-deadlock: feedback cycle through {Stage#1, \
         FbStage#2} certified deadlock-free under the declared service \
         rates: deadlock requires every cycle queue to fill, but \
         Stage#1.out -> FbStage#2.in (capacity 4 ≥ minimal 2) keeps \
         steady-state blocking ≤ 5% and can never stay full"
    );
}

#[test]
fn golden_rc0008_refuted() {
    let (mut m, a, b) = cyclic_map(1);
    // Same rates, but the forward stream's capacity (1) is below the
    // minimal assignment (2): no witness, cycle refuted.
    m.declare_service_rate(a, 10.0);
    m.declare_service_rate(b, 100.0);
    let d = find(&m.check(), "RC0008");
    assert_eq!(
        d.to_string(),
        "error[RC0008] feedback-deadlock: feedback cycle through {Stage#1, \
         FbStage#2} can deadlock under the declared service rates: every \
         stream on the cycle can fill; counterexample token-flow: push 1 \
         tokens into Stage#1.out -> FbStage#2.in (Stage#1 now blocks), \
         then push 1 tokens into FbStage#2.fb -> Stage#1.fb (FbStage#2 now \
         blocks); every kernel on the cycle is now blocked pushing and no \
         consumer can free space\n    help: minimal capacity assignment: \
         raise Stage#1.out -> FbStage#2.in from 1 to ≥ 2 (link_with(.., \
         FifoConfig::fixed(2))) so one cycle queue provably never fills"
    );
}

#[test]
fn golden_rc0009_replication_safety() {
    let mut m = RaftMap::new();
    let src = m.add(Src);
    let stage = m.add(Map1);
    let sink = m.add(Sink);
    m.link(src, "out", stage, "in").unwrap();
    m.link(stage, "out", sink, "in").unwrap();
    m.prefer_width(stage, 2); // Map1 has no clone_replica.
    let d = find(&m.check(), "RC0009");
    assert_eq!(
        d.to_string(),
        "warning[RC0009] replication-safety: kernel Map1#1 requests width \
         2 but Kernel::clone_replica returns None: the kernel carries \
         non-replicable state and will run sequentially\n    help: \
         implement clone_replica() for the kernel, or pin it sequential \
         with prefer_width(k, 1)"
    );
}

#[test]
fn golden_rc0011_fusion() {
    struct FMap;
    impl Kernel for FMap {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u32>("in").output::<u32>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
        fn is_stateless(&self) -> bool {
            true
        }
        fn is_fusable(&self) -> bool {
            true
        }
        fn batch_stage(&mut self) -> Option<Box<dyn crate::kernel::ErasedBatchStage>> {
            Some(crate::kernel::per_element("fmap", |v: u32| v))
        }
    }
    let mut m = RaftMap::new();
    let src = m.add(Src);
    let a = m.add(FMap);
    let b = m.add(FMap);
    let sink = m.add(Sink);
    m.link(src, "out", a, "in").unwrap();
    m.link(a, "out", b, "in").unwrap();
    m.link(b, "out", sink, "in").unwrap();
    let d = find(&m.check(), "RC0011");
    assert_eq!(
        d.to_string(),
        "info[RC0011] fusion: kernels FMap#1 -> FMap#2 fuse into one \
         batch-executed kernel, eliminating 1 interior stream(s) and their \
         scheduler hops; the fused group restarts as a unit\n    help: \
         disable via MapConfig::fusion, RaftMap::exe_opts, or RAFT_FUSION=0 \
         to A/B against the unfused graph"
    );
}

#[test]
fn golden_rc0010_supervision_soundness() {
    let mut m = RaftMap::new();
    let src = m.add(Src);
    let sink = m.add(Sink);
    m.link(src, "out", sink, "in").unwrap();
    m.supervise(sink, SupervisorPolicy::restart(3));
    let d = find(&m.check(), "RC0010");
    assert_eq!(
        d.to_string(),
        "warning[RC0010] supervision-soundness: Restart policy on stateful \
         kernel Sink#1: without clone_replica the scheduler re-enters the \
         same instance, whose state is whatever the panic left behind\n    \
         help: implement clone_replica() for clean-slate restarts, use \
         SupervisorPolicy::replace with a factory, or declare_stateless(k) \
         if the kernel has no cross-item state"
    );
}
