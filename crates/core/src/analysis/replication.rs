//! `RC0009` replication/fusion-safety inference.
//!
//! The auto-parallelizer (§4.1, `runtime::expand_replicas`) replicates a
//! kernel only when the graph *shape* allows it — one input, one output,
//! both streams declared out-of-order safe, and `clone_replica()`
//! available. This pass propagates two further facts through the graph and
//! flags the contradictions the shape test cannot see:
//!
//! * **statelessness** (from [`crate::kernel::Kernel::is_stateless`] or
//!   [`crate::map::RaftMap::declare_stateless`]): a *stateful* kernel
//!   replicated behind an out-of-order split sees only a fraction of the
//!   stream in arbitrary order, so per-replica state silently diverges;
//! * **out-of-order taint** (from `link_unordered` declarations): every
//!   kernel downstream of a replicated region may receive reordered items,
//!   so a stream it feeds that is declared *ordered* is lying to its
//!   consumer (an ordered reduce fed by unordered replicas).
//!
//! The inferred per-kernel classification is exported through
//! [`crate::report::ExeReport::kernel_classes`] so later passes (fusion,
//! autoscaling) consume inferred facts instead of trusting declarations.

use crate::diagnostics::Diagnostic;
use crate::map::RaftMap;

use super::graph::{kname, link_label, GraphView};
use super::Analysis;

/// Inferred replication/fusion facts for one kernel, computed before
/// replica expansion and exported via
/// [`crate::report::ExeReport::kernel_classes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelClassification {
    /// Kernel display name (`Type#idx`).
    pub name: String,
    /// Stateless per [`crate::kernel::Kernel::is_stateless`] or
    /// [`crate::map::RaftMap::declare_stateless`].
    pub stateless: bool,
    /// `clone_replica()` produces replicas.
    pub replicable: bool,
    /// The graph shape permits replication: exactly one input and one
    /// output stream, both declared out-of-order safe, and the kernel is
    /// replicable.
    pub replication_safe: bool,
    /// Replica width the planner will use at `exe()` (1 = sequential; >1
    /// only when `replication_safe`).
    pub planned_width: u32,
    /// The kernel sits downstream of a region that will be replicated, so
    /// its inputs may arrive out of order.
    pub ooo_inputs: bool,
}

/// Width the expansion planner would use for kernel `k` (before the
/// eligibility shape test): the explicit hint, else the auto-parallel
/// default, else 1.
pub(crate) fn requested_width(map: &RaftMap, k: usize) -> u32 {
    match map.kernels[k].width_hint {
        Some(w) => w,
        None if map.cfg.parallel.enabled => map.cfg.parallel.max_width.max(1),
        None => 1,
    }
}

/// Mirror of `runtime::expand_replicas` eligibility *shape*: exactly one
/// input and one output port, both connected, both streams out-of-order
/// safe. (Replicability is checked separately so diagnostics can tell the
/// two failure modes apart.)
pub(crate) fn shape_allows_replication(map: &RaftMap, k: usize) -> bool {
    if map.kernels[k].spec.inputs.len() != 1 || map.kernels[k].spec.outputs.len() != 1 {
        return false;
    }
    let in_link = map.links.iter().position(|l| l.dst == k);
    let out_link = map.links.iter().position(|l| l.src == k);
    let (Some(in_idx), Some(out_idx)) = (in_link, out_link) else {
        return false;
    };
    !map.links[in_idx].ordered && !map.links[out_idx].ordered
}

/// Kernels the planner will actually replicate at `exe()`.
pub(crate) fn will_replicate(map: &RaftMap, k: usize, replicable: bool) -> bool {
    requested_width(map, k) > 1 && replicable && shape_allows_replication(map, k)
}

/// Compute the per-kernel classification for `map` (pre-expansion).
pub fn classify(map: &RaftMap) -> Vec<KernelClassification> {
    let graph = GraphView::build(map);
    classify_with(map, &graph)
}

pub(crate) fn classify_with(map: &RaftMap, graph: &GraphView) -> Vec<KernelClassification> {
    let n = map.kernels.len();
    let replicable: Vec<bool> = (0..n)
        .map(|k| map.kernels[k].kernel.clone_replica().is_some())
        .collect();
    let replicated: Vec<usize> = (0..n)
        .filter(|&k| will_replicate(map, k, replicable[k]))
        .collect();
    // Everything strictly downstream of a replicated kernel may see
    // reordered items (the replicated kernel itself re-merges via reduce).
    let mut tainted = vec![false; n];
    for &r in &replicated {
        let down = graph.downstream_of(&[r]);
        for (k, is_down) in down.iter().enumerate() {
            if *is_down && k != r {
                tainted[k] = true;
            }
        }
    }
    (0..n)
        .map(|k| {
            let e = &map.kernels[k];
            let safe = replicable[k] && shape_allows_replication(map, k);
            KernelClassification {
                name: e.name.clone(),
                stateless: e.is_stateless(),
                replicable: replicable[k],
                replication_safe: safe,
                planned_width: if will_replicate(map, k, replicable[k]) {
                    requested_width(map, k)
                } else {
                    1
                },
                ooo_inputs: tainted[k],
            }
        })
        .collect()
}

/// RC0009: flag contradictions between the requested parallelism, the
/// declared ordering of streams, and the kernels' statelessness. Severity
/// comes from [`crate::check::CheckConfig::replication_severity`]
/// (default [`crate::diagnostics::Severity::Warn`]).
pub(crate) fn lint_replication_safety(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let severity = map.cfg.check.replication_severity;
    let classes = classify_with(map, &a.graph);
    let mut out = Vec::new();

    for (k, class) in classes.iter().enumerate() {
        let width = requested_width(map, k);
        let explicit = map.kernels[k].width_hint.is_some();
        // Contradiction 1: replication requested but impossible.
        if explicit && width > 1 && !class.replicable {
            out.push(
                Diagnostic::new(
                    "RC0009",
                    "replication-safety",
                    severity,
                    format!(
                        "kernel {} requests width {} but Kernel::clone_replica \
                         returns None: the kernel carries non-replicable state \
                         and will run sequentially",
                        class.name, width,
                    ),
                )
                .with_help(
                    "implement clone_replica() for the kernel, or pin it \
                     sequential with prefer_width(k, 1)",
                )
                .with_kernel(k),
            );
            continue;
        }
        // Contradiction 2: replication requested but an attached stream is
        // declared ordered, so the planner will silently skip expansion.
        if explicit && width > 1 && class.replicable && !shape_allows_replication(map, k) {
            out.push(
                Diagnostic::new(
                    "RC0009",
                    "replication-safety",
                    severity,
                    format!(
                        "kernel {} requests width {} but its stream shape \
                         forbids replication (needs exactly one input and one \
                         output, both declared out-of-order safe): the \
                         request is silently ignored",
                        class.name, width,
                    ),
                )
                .with_help(
                    "declare the kernel's streams with link_unordered(..) if \
                     reordering is acceptable, or drop the width hint",
                )
                .with_kernel(k),
            );
            continue;
        }
        // Contradiction 3: a stateful kernel behind an out-of-order split.
        // Each replica sees an arbitrary subset of the stream, so any
        // cross-item state silently diverges.
        if class.planned_width > 1 && !class.stateless {
            out.push(
                Diagnostic::new(
                    "RC0009",
                    "replication-safety",
                    severity,
                    format!(
                        "stateful kernel {} will be replicated ×{} behind an \
                         out-of-order split: each replica sees only a subset \
                         of the stream in arbitrary order, so per-replica \
                         state diverges",
                        class.name, class.planned_width,
                    ),
                )
                .with_help(format!(
                    "declare_stateless(k) if {} is pure (clone_replica alone \
                     does not assert purity), or pin it sequential with \
                     prefer_width(k, 1)",
                    class.name,
                ))
                .with_kernel(k),
            );
        }
    }

    // Contradiction 4: an ordered stream fed from inside a replicated
    // region — the producer's items may arrive reordered, so the ordered
    // declaration downstream is a lie (e.g. an ordered reduce fed by
    // unordered replicas).
    for (li, l) in map.links.iter().enumerate() {
        if l.ordered && classes[l.src].ooo_inputs {
            out.push(
                Diagnostic::new(
                    "RC0009",
                    "replication-safety",
                    severity,
                    format!(
                        "stream {} is declared ordered but its producer {} is \
                         downstream of a replicated kernel: items may arrive \
                         reordered, and an order-sensitive consumer (e.g. a \
                         counting reduce) would silently mis-merge",
                        link_label(map, li),
                        kname(map, l.src),
                    ),
                )
                .with_help(
                    "declare the stream out-of-order safe with \
                     link_unordered(..), or pin the upstream replicated \
                     kernel to width 1",
                )
                .with_kernels([l.src, l.dst])
                .with_link(li),
            );
        }
    }
    out
}
