//! Kernel-fusion pass — collapse pipeline chains into one batch runner.
//!
//! The per-hop FIFO protocol dominates deep pipelines: every intermediate
//! stream costs a push, a pop, a waker arm and a scheduler hop *per
//! element*, which is why a depth-4 pipeline of trivial transforms runs two
//! orders of magnitude slower than depth 0. The paper treats kernels as
//! composable units precisely so the runtime may rewrite the graph for
//! performance (§3–4); this pass is that rewrite: at `exe()` time, maximal
//! chains of adjacent single-input/single-output *fusable* kernels compile
//! into one [`FusedKernel`] that executes the whole chain over owned
//! batches — a batched pop at the head (one blocking wait and one queue
//! protocol entry per batch, via [`PortDef::batch_pop`]), a tight per-stage
//! loop over the batch in the middle, and a `reserve`/`WriteSlice` publish
//! at the tail ([`PortDef::batch_push`]). Interior FIFOs, their monitor
//! entries, and their scheduler hops disappear entirely.
//!
//! A kernel joins a chain when all of the following hold:
//!
//! * it has exactly one input and one output port;
//! * [`Kernel::is_fusable`] is true and it compiles into a batch stage
//!   ([`Kernel::batch_stage`]);
//! * it is stateless ([`crate::map::KernelEntry::is_stateless`]) — fused
//!   stages see the stream batch-at-a-time, so cross-item state would
//!   observe different `run()` boundaries than the unfused kernel;
//! * its supervision policy is `Abort` or `Restart` and identical across
//!   the group (a fused group restarts **as a unit** via
//!   [`Kernel::clone_replica`] → per-stage fork);
//! * the parallel planner will not replicate it (replication wins: an
//!   expanded kernel sits behind split/reduce adapters);
//! * the connecting stream has no per-link FIFO override — an explicit
//!   [`FifoConfig`](raft_buffer::FifoConfig) pins that stream's capacity
//!   (the Figure 4 harness semantics), so it must stay materialized.
//!
//! The pass is planned once ([`plan`]) and consumed twice: the `RC0011`
//! info lint reports the planned groups pre-`exe()`, and [`apply`] rewrites
//! the kernel/link tables in place right before replica expansion. Because
//! the fused kernel is itself stateless, single-in/single-out and
//! replicable, the auto-parallelizer may then replicate the *whole group*.
//!
//! Fusion is on by default; disable per map via
//! [`MapConfig::fusion`](crate::map::MapConfig) /
//! [`RaftMap::exe_opts`](crate::map::RaftMap::exe_opts), or force it from
//! the environment with `RAFT_FUSION=0` (`RAFT_FUSION_BATCH=n` overrides
//! the batch size) for A/B benchmarking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::diagnostics::{Diagnostic, Severity};
use crate::kernel::{ErasedBatchStage, KStatus, Kernel, PortDef, PortSpec};
use crate::map::RaftMap;
use crate::port::Context;
use crate::supervise::SupervisorPolicy;

use super::replication::will_replicate;
use super::Analysis;

/// Fusion-pass configuration (part of [`crate::map::MapConfig`]).
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// Fuse eligible chains at `exe()` (default: true).
    pub enabled: bool,
    /// Elements per fused batch: how many items the head pops (and the
    /// whole chain processes) per scheduling quantum.
    pub batch: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            enabled: true,
            batch: 512,
        }
    }
}

/// Resolve the effective fusion switches: the map's [`FusionConfig`], with
/// `RAFT_FUSION` (`0/false/off` or `1/true/on`) and `RAFT_FUSION_BATCH`
/// environment overrides applied on top — the no-recompile A/B knob.
pub(crate) fn resolve(cfg: &FusionConfig) -> (bool, usize) {
    let mut enabled = cfg.enabled;
    if let Ok(v) = std::env::var("RAFT_FUSION") {
        match v.trim() {
            "0" | "false" | "off" | "no" => enabled = false,
            "1" | "true" | "on" | "yes" => enabled = true,
            _ => {}
        }
    }
    let batch = std::env::var("RAFT_FUSION_BATCH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(cfg.batch)
        .max(1);
    (enabled, batch)
}

/// One planned fusion group: a maximal chain of fusable kernels, in
/// stream order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Kernel indices along the chain (head first).
    pub members: Vec<usize>,
    /// Display names of the members, same order.
    pub names: Vec<String>,
}

/// Whether two adjacent kernels' supervision policies permit merging into
/// one unit: both fail-fast, or both the *same* restart budget (the group
/// then restarts as a unit under that budget). `Skip` and `Replace` have
/// per-kernel semantics a merged runner cannot honor.
fn policies_compatible(a: &SupervisorPolicy, b: &SupervisorPolicy) -> bool {
    match (a, b) {
        (SupervisorPolicy::Abort, SupervisorPolicy::Abort) => true,
        (
            SupervisorPolicy::Restart {
                max_restarts: m1,
                backoff: b1,
            },
            SupervisorPolicy::Restart {
                max_restarts: m2,
                backoff: b2,
            },
        ) => m1 == m2 && b1 == b2,
        _ => false,
    }
}

/// Whether kernel `k` may be a member of any fused chain.
fn kernel_fusable(map: &RaftMap, k: usize) -> bool {
    let e = &map.kernels[k];
    if e.spec.inputs.len() != 1 || e.spec.outputs.len() != 1 {
        return false;
    }
    if !e.kernel.is_fusable() || !e.is_stateless() {
        return false;
    }
    if !matches!(
        e.policy,
        SupervisorPolicy::Abort | SupervisorPolicy::Restart { .. }
    ) {
        return false;
    }
    // Replication wins over fusion: a kernel the parallel planner will
    // expand ends up between split/reduce adapters, not in a chain.
    let replicable = e.kernel.clone_replica().is_some();
    !will_replicate(map, k, replicable)
}

/// Compute the maximal fusable chains of `map`, in deterministic (head
/// index) order. Shared by the `RC0011` lint and [`apply`], so the planned
/// groups reported pre-`exe()` are exactly the groups the runtime fuses.
pub fn plan(map: &RaftMap) -> Vec<FusionGroup> {
    let n = map.kernels.len();
    let fusable: Vec<bool> = (0..n).map(|k| kernel_fusable(map, k)).collect();
    // With one input and one output port per fusable kernel, each side has
    // at most one stream, so chain succession is a simple next/prev table.
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    for l in &map.links {
        if fusable[l.src]
            && fusable[l.dst]
            && l.fifo.is_none()
            && policies_compatible(&map.kernels[l.src].policy, &map.kernels[l.dst].policy)
        {
            next[l.src] = Some(l.dst);
            prev[l.dst] = Some(l.src);
        }
    }
    let mut groups = Vec::new();
    for k in 0..n {
        // Chain heads only; a fusable cycle has no head and is skipped.
        if !fusable[k] || prev[k].is_some() || next[k].is_none() {
            continue;
        }
        let mut members = vec![k];
        let mut cur = k;
        while let Some(d) = next[cur] {
            members.push(d);
            cur = d;
        }
        let names = members
            .iter()
            .map(|&m| map.kernels[m].name.clone())
            .collect();
        groups.push(FusionGroup { members, names });
    }
    groups
}

/// RC0011: report each planned fusion group (informational). Emitted only
/// when fusion is enabled for this map, so the lint never promises a
/// rewrite the runtime won't perform.
pub(crate) fn lint_fusion(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let (enabled, _) = resolve(&map.cfg.fusion);
    if !enabled {
        return Vec::new();
    }
    plan(map)
        .iter()
        .map(|g| {
            let chain = g.names.join(" -> ");
            let interior = g.members.len() - 1;
            let mut d = Diagnostic::new(
                "RC0011",
                "fusion",
                Severity::Info,
                format!(
                    "kernels {chain} fuse into one batch-executed kernel, \
                     eliminating {interior} interior stream(s) and their \
                     scheduler hops; the fused group restarts as a unit"
                ),
            )
            .with_help(
                "disable via MapConfig::fusion, RaftMap::exe_opts, or \
                 RAFT_FUSION=0 to A/B against the unfused graph",
            );
            for &m in &g.members {
                d = d.with_kernel(m);
            }
            d
        })
        .collect()
}

/// Shared batch telemetry of one fused group, exported through
/// [`crate::runtime::ExeReport::fused`]. Restarted or replicated instances
/// of the group accumulate into the same counters.
#[derive(Debug, Default)]
pub struct FusedStats {
    batches: AtomicU64,
    items_in: AtomicU64,
    items_out: AtomicU64,
}

/// Final per-group fusion telemetry in the [`crate::runtime::ExeReport`].
#[derive(Debug, Clone)]
pub struct FusedGroupReport {
    /// Fused kernel display name, e.g. `fused[map+map]#1`.
    pub name: String,
    /// Display names of the original member kernels, head first.
    pub members: Vec<String>,
    /// Configured batch size.
    pub batch: usize,
    /// Batches executed.
    pub batches: u64,
    /// Elements popped at the head.
    pub items_in: u64,
    /// Elements published at the tail.
    pub items_out: u64,
}

/// Bookkeeping `apply` hands to the runtime: the live stats handle plus
/// everything needed to assemble a [`FusedGroupReport`] after the run.
pub(crate) struct FusedGroupInfo {
    pub name: String,
    pub members: Vec<String>,
    pub batch: usize,
    pub stats: Arc<FusedStats>,
}

impl FusedGroupInfo {
    pub(crate) fn report(&self) -> FusedGroupReport {
        FusedGroupReport {
            name: self.name.clone(),
            members: self.members.clone(),
            batch: self.batch,
            batches: self.stats.batches.load(Ordering::Relaxed),
            items_in: self.stats.items_in.load(Ordering::Relaxed),
            items_out: self.stats.items_out.load(Ordering::Relaxed),
        }
    }
}

/// The compiled chain: one [`Kernel`] that pops a batch at the head, runs
/// every stage over it back to back, and publishes the survivors at the
/// tail. To the scheduler this is an ordinary kernel — one task, two
/// streams, regardless of how long the original chain was.
pub struct FusedKernel {
    stages: Vec<Box<dyn ErasedBatchStage>>,
    in_def: PortDef,
    out_def: PortDef,
    batch: usize,
    label: String,
    stats: Arc<FusedStats>,
}

impl Kernel for FusedKernel {
    fn ports(&self) -> PortSpec {
        PortSpec {
            inputs: vec![self.in_def.clone()],
            outputs: vec![self.out_def.clone()],
        }
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let Some((mut batch, n_in)) = (self.in_def.batch_pop)(ctx, 0, self.batch) else {
            return KStatus::Stop;
        };
        for stage in &mut self.stages {
            batch = stage.run_batch_erased(batch);
        }
        match (self.out_def.batch_push)(ctx, 0, batch) {
            Some(n_out) => {
                self.stats.batches.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .items_in
                    .fetch_add(n_in as u64, Ordering::Relaxed);
                self.stats
                    .items_out
                    .fetch_add(n_out as u64, Ordering::Relaxed);
                KStatus::Proceed
            }
            None => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    // Members were stateless by construction, so the group is.
    fn is_stateless(&self) -> bool {
        true
    }

    /// Clean-slate copy of the whole group: every stage forks, or the
    /// group is not replicable/restartable as a unit. Telemetry stays
    /// shared so the report aggregates across instances.
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        let stages: Option<Vec<_>> = self.stages.iter().map(|s| s.fork()).collect();
        Some(Box::new(FusedKernel {
            stages: stages?,
            in_def: self.in_def.clone(),
            out_def: self.out_def.clone(),
            batch: self.batch,
            label: self.label.clone(),
            stats: self.stats.clone(),
        }))
    }
}

/// Rewrite `map` in place: compile every planned group into a
/// [`FusedKernel`] installed at the head member's slot, drop the interior
/// members and streams, and compact the kernel/link tables. Returns the
/// telemetry bookkeeping for the report.
pub(crate) fn apply(map: &mut RaftMap, batch: usize) -> Vec<FusedGroupInfo> {
    let groups = plan(map);
    if groups.is_empty() {
        return Vec::new();
    }
    let mut infos = Vec::new();
    let mut dead_kernels = vec![false; map.kernels.len()];
    let mut dead_links = vec![false; map.links.len()];
    for g in &groups {
        // Compile every member. `is_fusable` promises a stage; if an
        // implementation breaks that contract, abandon the group with the
        // map untouched (stages were cloned out, members still run as-is).
        let mut stages = Vec::with_capacity(g.members.len());
        for &m in &g.members {
            match map.kernels[m].kernel.batch_stage() {
                Some(s) => stages.push(s),
                None => break,
            }
        }
        if stages.len() != g.members.len() {
            continue;
        }
        let head = g.members[0];
        let tail = *g.members.last().unwrap();
        let in_def = map.kernels[head].spec.inputs[0].clone();
        let out_def = map.kernels[tail].spec.outputs[0].clone();
        let label = format!(
            "fused[{}]",
            stages
                .iter()
                .map(|s| s.stage_name())
                .collect::<Vec<_>>()
                .join("+")
        );
        let name = format!("{label}#{head}");
        let stats = Arc::new(FusedStats::default());
        let fused = FusedKernel {
            stages,
            in_def: in_def.clone(),
            out_def: out_def.clone(),
            batch,
            label,
            stats: stats.clone(),
        };
        infos.push(FusedGroupInfo {
            name: name.clone(),
            members: g.names.clone(),
            batch,
            stats,
        });
        map.kernels[head].kernel = Box::new(fused);
        map.kernels[head].spec = PortSpec {
            inputs: vec![in_def],
            outputs: vec![out_def],
        };
        map.kernels[head].name = name;
        map.kernels[head].stateless = Some(true);
        // Interior streams disappear; the tail's outgoing stream now
        // leaves the head (the fused kernel's single output).
        for (li, l) in map.links.iter_mut().enumerate() {
            let src_in = g.members.contains(&l.src);
            let dst_in = g.members.contains(&l.dst);
            if src_in && dst_in {
                dead_links[li] = true;
            } else if l.src == tail {
                l.src = head;
                l.src_port = 0;
            }
        }
        for &m in &g.members[1..] {
            dead_kernels[m] = true;
        }
    }
    // Compact the tables, remapping link endpoints onto the new indices.
    let mut new_idx = vec![usize::MAX; map.kernels.len()];
    let mut kept = 0usize;
    for (i, dead) in dead_kernels.iter().enumerate() {
        if !dead {
            new_idx[i] = kept;
            kept += 1;
        }
    }
    let kernels = std::mem::take(&mut map.kernels);
    map.kernels = kernels
        .into_iter()
        .enumerate()
        .filter_map(|(i, e)| (!dead_kernels[i]).then_some(e))
        .collect();
    let links = std::mem::take(&mut map.links);
    map.links = links
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dead_links[*i])
        .map(|(_, mut l)| {
            l.src = new_idx[l.src];
            l.dst = new_idx[l.dst];
            l
        })
        .collect();
    infos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::per_element;
    use raft_buffer::FifoConfig;

    struct Src;
    impl Kernel for Src {
        fn ports(&self) -> PortSpec {
            PortSpec::new().output::<u64>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }
    struct Sink;
    impl Kernel for Sink {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }
    /// Minimal fusable pass-through stage.
    struct AddOne;
    impl Kernel for AddOne {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            match input.pop() {
                Ok(v) => {
                    drop(input);
                    if ctx.output::<u64>("out").push(v + 1).is_err() {
                        return KStatus::Stop;
                    }
                    KStatus::Proceed
                }
                Err(_) => KStatus::Stop,
            }
        }
        fn name(&self) -> String {
            "add1".into()
        }
        fn is_stateless(&self) -> bool {
            true
        }
        fn is_fusable(&self) -> bool {
            true
        }
        fn batch_stage(&mut self) -> Option<Box<dyn ErasedBatchStage>> {
            Some(per_element("add1", |v: u64| v + 1))
        }
    }
    /// Same shape, not fusable (default hooks).
    struct Opaque;
    impl Kernel for Opaque {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }

    fn chain(n_stages: usize) -> RaftMap {
        let mut m = RaftMap::new();
        let src = m.add(Src);
        let mut prev = src;
        for _ in 0..n_stages {
            let k = m.add(AddOne);
            m.link(prev, "out", k, "in").unwrap();
            prev = k;
        }
        let sink = m.add(Sink);
        m.link(prev, "out", sink, "in").unwrap();
        m
    }

    #[test]
    fn plans_maximal_chain() {
        let m = chain(3);
        let groups = plan(&m);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![1, 2, 3]);
    }

    #[test]
    fn single_stage_is_not_a_group() {
        let m = chain(1);
        assert!(plan(&m).is_empty());
    }

    #[test]
    fn stateful_kernel_splits_the_chain() {
        let mut m = RaftMap::new();
        let src = m.add(Src);
        let a = m.add(AddOne);
        let b = m.add(Opaque);
        let c = m.add(AddOne);
        let d = m.add(AddOne);
        let sink = m.add(Sink);
        m.link(src, "out", a, "in").unwrap();
        m.link(a, "out", b, "in").unwrap();
        m.link(b, "out", c, "in").unwrap();
        m.link(c, "out", d, "in").unwrap();
        m.link(d, "out", sink, "in").unwrap();
        let groups = plan(&m);
        // a alone is length 1 (no group); c -> d fuses.
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![3, 4]);
    }

    #[test]
    fn explicit_fifo_override_is_a_barrier() {
        let mut m = RaftMap::new();
        let src = m.add(Src);
        let a = m.add(AddOne);
        let b = m.add(AddOne);
        let sink = m.add(Sink);
        m.link(src, "out", a, "in").unwrap();
        m.link_with(a, "out", b, "in", FifoConfig::fixed(8))
            .unwrap();
        m.link(b, "out", sink, "in").unwrap();
        assert!(plan(&m).is_empty());
    }

    #[test]
    fn mismatched_policies_split_the_chain() {
        let mut m = chain(2);
        // members are kernels 1 and 2
        m.supervise(crate::map::KernelId(1), SupervisorPolicy::restart(3));
        assert!(plan(&m).is_empty());
        // identical restart budgets merge again
        m.supervise(crate::map::KernelId(2), SupervisorPolicy::restart(3));
        assert_eq!(plan(&m).len(), 1);
        // Skip never fuses
        m.supervise(crate::map::KernelId(1), SupervisorPolicy::Skip);
        assert!(plan(&m).is_empty());
    }

    #[test]
    fn apply_rewrites_kernels_and_links() {
        let mut m = chain(3);
        assert_eq!(m.kernel_count(), 5);
        assert_eq!(m.link_count(), 4);
        let infos = apply(&mut m, 64);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].members.len(), 3);
        // src -> fused -> sink
        assert_eq!(m.kernel_count(), 3);
        assert_eq!(m.link_count(), 2);
        assert!(m.kernels[1].name.starts_with("fused[add1+add1+add1]"));
        assert_eq!(m.links[0].src, 0);
        assert_eq!(m.links[0].dst, 1);
        assert_eq!(m.links[1].src, 1);
        assert_eq!(m.links[1].dst, 2);
    }
}
