//! `RC0010` supervision-policy soundness: cross-check each kernel's
//! [`crate::supervise::SupervisorPolicy`] against the graph and the
//! kernel's own capabilities.
//!
//! Three ways a per-kernel recovery policy can silently corrupt a run:
//!
//! * **Restart on a stateful kernel** — without `clone_replica` the
//!   scheduler re-enters the *same instance*, whose state is whatever the
//!   panic left behind (a half-updated accumulator, a poisoned cache);
//! * **Skip upstream of a merge** — skipping a kernel closes its outputs
//!   and lets the pipeline drain, but a downstream kernel merging several
//!   inputs (a counting reduce) then combines partial results as if they
//!   were complete;
//! * **Replace with a mismatched factory** — the replacement kernel is
//!   wired into the *existing* streams, so a factory producing different
//!   port names or element types would corrupt the channel contract. The
//!   factory is invoked once at check time and its ports compared.

use crate::diagnostics::{Diagnostic, Severity};
use crate::kernel::Kernel;
use crate::supervise::SupervisorPolicy;

use super::graph::kname;
use super::Analysis;

/// RC0010: supervision-policy soundness. Restart/Skip findings use
/// [`crate::check::CheckConfig::supervision_severity`] (default Warn);
/// Replace port mismatches are always [`Severity::Error`] — a replacement
/// with different port types can never be wired into the live streams.
pub(crate) fn lint_supervision_soundness(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let severity = map.cfg.check.supervision_severity;
    let mut out = Vec::new();

    for (k, entry) in map.kernels.iter().enumerate() {
        match &entry.policy {
            SupervisorPolicy::Abort => {}
            SupervisorPolicy::Restart { .. } => {
                // A restart is clean only when a fresh instance can be built
                // (clone_replica) or the kernel provably has no state to
                // corrupt (stateless).
                if entry.kernel.clone_replica().is_none() && !entry.is_stateless() {
                    out.push(
                        Diagnostic::new(
                            "RC0010",
                            "supervision-soundness",
                            severity,
                            format!(
                                "Restart policy on stateful kernel {}: without \
                                 clone_replica the scheduler re-enters the \
                                 same instance, whose state is whatever the \
                                 panic left behind",
                                entry.name,
                            ),
                        )
                        .with_help(
                            "implement clone_replica() for clean-slate \
                             restarts, use SupervisorPolicy::replace with a \
                             factory, or declare_stateless(k) if the kernel \
                             has no cross-item state",
                        )
                        .with_kernel(k),
                    );
                }
            }
            SupervisorPolicy::Skip => {
                // Skipping closes this kernel's outputs; a downstream kernel
                // merging several inputs then combines partial results.
                for &succ in &a.graph.adj[k] {
                    let fan_in = map.links.iter().filter(|l| l.dst == succ).count();
                    if fan_in >= 2 {
                        out.push(
                            Diagnostic::new(
                                "RC0010",
                                "supervision-soundness",
                                severity,
                                format!(
                                    "Skip policy on {} starves one of {} \
                                     inputs of downstream merge {}: a \
                                     counting reduce would silently combine \
                                     partial results as if they were complete",
                                    entry.name,
                                    fan_in,
                                    kname(map, succ),
                                ),
                            )
                            .with_help(
                                "use Restart/Replace so the input keeps \
                                 flowing, or Abort if partial merges are \
                                 unacceptable",
                            )
                            .with_kernels([k, succ]),
                        );
                    }
                }
            }
            SupervisorPolicy::Replace { factory, .. } => {
                // Invoke the factory once and compare the replacement's port
                // signature against the supervised kernel's live spec.
                let replacement = factory();
                let spec = replacement.ports();
                let expect = &entry.spec;
                let ports = |defs: &[crate::kernel::PortDef]| -> Vec<String> {
                    defs.iter()
                        .map(|d| format!("{}:{}", d.name, d.type_name))
                        .collect()
                };
                let (ein, eout) = (ports(&expect.inputs), ports(&expect.outputs));
                let (gin, gout) = (ports(&spec.inputs), ports(&spec.outputs));
                if ein != gin || eout != gout {
                    out.push(
                        Diagnostic::new(
                            "RC0010",
                            "supervision-soundness",
                            Severity::Error,
                            format!(
                                "Replace factory for {} builds a kernel with \
                                 ports in[{}] out[{}], but the live streams \
                                 expect in[{}] out[{}]: a replacement with a \
                                 different port signature cannot be wired in",
                                entry.name,
                                gin.join(", "),
                                gout.join(", "),
                                ein.join(", "),
                                eout.join(", "),
                            ),
                        )
                        .with_help(
                            "make the factory produce the same kernel type \
                             (same port names and element types) as the one \
                             it replaces",
                        )
                        .with_kernel(k),
                    );
                }
            }
        }
    }
    out
}
