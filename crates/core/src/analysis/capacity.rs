//! Queueing-model passes: `RC0007` capacity feasibility and `RC0008`
//! feedback-deadlock certification.
//!
//! Both reuse `raft-model`'s M/M/1/K estimates. RC0007 warns per stream
//! when the configured capacity ceiling cannot sustain the declared rates.
//! RC0008 goes further for feedback cycles. A bounded-FIFO cycle deadlocks
//! only when *every* queue on it is full (each kernel blocked pushing to
//! the next); conversely, one stream that provably never stays full breaks
//! the deadlock condition. Around any cycle the utilizations multiply to 1
//! (`Π λᵢ/μᵢ = 1`), so demanding feasibility of *every* cycle stream is
//! vacuously impossible — the certificate is instead a *witness*: some
//! intra-cycle stream with λ < μ whose configured capacity meets the
//! minimal assignment keeping its steady-state blocking under the
//! threshold. The solver finds the minimal such assignment, and the pass
//! emits either the certificate or a concrete counterexample token-flow
//! showing how the cycle wedges — the certify-or-counterexample contract.

use raft_model::queues::{min_capacity_for_blocking, MM1K};

use crate::diagnostics::{Diagnostic, Severity};
use crate::map::RaftMap;

use super::graph::{kname, link_label, GraphView};
use super::Analysis;

/// Verdict of the `RC0008` solver for one feedback cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleVerdict {
    /// At least one intra-cycle stream provably stays un-full: its λ < μ
    /// and its configured capacity meets the minimal assignment keeping
    /// steady-state blocking under the threshold. Deadlock requires every
    /// cycle queue full, so the cycle cannot deadlock under the declared
    /// rates.
    Certified {
        /// Witness links: `(link index, configured capacity, minimal
        /// feasible capacity)`, configured ≥ minimal for each.
        witnesses: Vec<(usize, u32, u32)>,
    },
    /// Every stream on the cycle can fill up: the cycle can deadlock.
    Refuted {
        /// Finite repairs, cheapest first: `(link index, configured
        /// capacity, minimal capacity that would turn the link into a
        /// certificate witness)`. Empty when every cycle stream has λ ≥ μ
        /// and no finite capacity assignment certifies the cycle.
        repairs: Vec<(usize, u32, u32)>,
    },
    /// Some cycle kernel has no declared service rate, so the solver has
    /// nothing to model; the plain `RC0003` cycle finding stands.
    Unknown {
        /// Cycle members without a declared rate.
        missing_rates: Vec<usize>,
    },
}

/// One feedback cycle found by the Tarjan pass, with its solver verdict.
#[derive(Debug, Clone)]
pub struct CycleInfo {
    /// Cycle members (kernel indices), sorted ascending.
    pub members: Vec<usize>,
    /// Intra-cycle link indices, in link-table order.
    pub links: Vec<usize>,
    /// What the RC0008 solver concluded.
    pub verdict: CycleVerdict,
}

/// Configured capacity ceiling of link `li`, clamped to `u32`.
pub(crate) fn link_capacity(map: &RaftMap, li: usize) -> u32 {
    let cap = map.links[li].fifo.unwrap_or(map.cfg.fifo).max_capacity;
    cap.clamp(1, u32::MAX as usize) as u32
}

/// Run the RC0008 solver over every cyclic SCC: for each intra-cycle link
/// compute the minimal capacity keeping steady-state blocking under the
/// RC0007 threshold, and compare against the configured ceiling.
pub(crate) fn certify_cycles(map: &RaftMap, graph: &GraphView) -> Vec<CycleInfo> {
    let threshold = map.cfg.check.capacity_blocking_warn;
    let mut out = Vec::new();
    for members in graph.cyclic_sccs() {
        let links: Vec<usize> = map
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| members.contains(&l.src) && members.contains(&l.dst))
            .map(|(i, _)| i)
            .collect();
        let missing_rates: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&k| map.kernels[k].service_rate.is_none())
            .collect();
        let verdict = if !missing_rates.is_empty() {
            CycleVerdict::Unknown { missing_rates }
        } else {
            let mut witnesses = Vec::new();
            let mut repairs = Vec::new();
            for &li in &links {
                let l = &map.links[li];
                let lambda = map.kernels[l.src].service_rate.expect("checked above");
                let mu = map.kernels[l.dst].service_rate.expect("checked above");
                let cap = link_capacity(map, li);
                match min_capacity_for_blocking(lambda, mu, threshold) {
                    Some(k) if cap >= k => witnesses.push((li, cap, k)),
                    Some(k) => repairs.push((li, cap, k)),
                    None => {}
                }
            }
            if witnesses.is_empty() {
                // Cheapest repair first: the minimal capacity assignment
                // that would certify the cycle.
                repairs.sort_by_key(|&(li, _, k)| (k, li));
                CycleVerdict::Refuted { repairs }
            } else {
                CycleVerdict::Certified { witnesses }
            }
        };
        out.push(CycleInfo {
            members,
            links,
            verdict,
        });
    }
    out
}

/// RC0007: capacity feasibility. For every stream whose two kernels have
/// declared service rates, model the queue as M/M/1/K at the stream's
/// capacity *ceiling* and warn when the steady-state producer blocking
/// probability exceeds the configured threshold — the static version of
/// the monitor's 3δ "writer blocked" resize trigger. The computed minimum
/// feasible capacity is attached as a `help:` line.
pub(crate) fn lint_capacity(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let threshold = map.cfg.check.capacity_blocking_warn;
    let mut out = Vec::new();
    for (li, l) in map.links.iter().enumerate() {
        let (Some(lambda), Some(mu)) = (
            map.kernels[l.src].service_rate,
            map.kernels[l.dst].service_rate,
        ) else {
            continue;
        };
        if !(lambda > 0.0 && mu > 0.0) {
            continue;
        }
        let cap = link_capacity(map, li);
        let blocking = MM1K::new(lambda, mu, cap).blocking_probability();
        if blocking <= threshold {
            continue;
        }
        let help = match min_capacity_for_blocking(lambda, mu, threshold) {
            Some(k) => format!(
                "a capacity ceiling of {k} would keep blocking under {:.0}% \
                 (e.g. link_with(.., FifoConfig::fixed({k})))",
                threshold * 100.0
            ),
            None => "no finite capacity suffices (λ ≥ μ): widen the consumer \
                     or lower the producer rate"
                .to_string(),
        };
        out.push(
            Diagnostic::new(
                "RC0007",
                "capacity",
                Severity::Warn,
                format!(
                    "stream {} (capacity ceiling {cap}) cannot sustain the \
                     declared rates λ={lambda}/s -> μ={mu}/s: steady-state \
                     producer blocking ≈ {:.1}%",
                    link_label(map, li),
                    blocking * 100.0,
                ),
            )
            .with_help(help)
            .with_kernels([l.src, l.dst])
            .with_link(li),
        );
    }
    out
}

/// RC0008: feedback-deadlock certification. For every bounded-FIFO cycle
/// the Tarjan pass found, either certify the minimal capacity assignment
/// under which the cycle cannot deadlock (an [`Severity::Info`] finding
/// carrying the certificate) or emit a concrete counterexample token-flow
/// showing how the cycle wedges. Cycles whose kernels lack declared rates
/// stay `Unknown` and produce no RC0008 finding (RC0003 still reports the
/// cycle at its configured severity).
pub(crate) fn lint_deadlock_certification(a: &Analysis) -> Vec<Diagnostic> {
    let map = a.map;
    let threshold = map.cfg.check.capacity_blocking_warn;
    let mut out = Vec::new();
    for cycle in &a.cycles {
        let names: Vec<&str> = cycle.members.iter().map(|&i| kname(map, i)).collect();
        match &cycle.verdict {
            CycleVerdict::Unknown { .. } => {}
            CycleVerdict::Certified { witnesses } => {
                let terms: Vec<String> = witnesses
                    .iter()
                    .map(|&(li, cap, min)| {
                        format!(
                            "{} (capacity {cap} ≥ minimal {min}) keeps \
                             steady-state blocking ≤ {:.0}% and can never \
                             stay full",
                            link_label(map, li),
                            threshold * 100.0,
                        )
                    })
                    .collect();
                out.push(
                    Diagnostic::new(
                        "RC0008",
                        "feedback-deadlock",
                        Severity::Info,
                        format!(
                            "feedback cycle through {{{}}} certified \
                             deadlock-free under the declared service rates: \
                             deadlock requires every cycle queue to fill, \
                             but {}",
                            names.join(", "),
                            terms.join("; "),
                        ),
                    )
                    .with_kernels(cycle.members.iter().copied())
                    .with_links(cycle.links.iter().copied()),
                );
            }
            CycleVerdict::Refuted { repairs } => {
                // Concrete counterexample: fill every queue on the cycle in
                // link order; each producer then blocks and nothing can pop.
                let flow: Vec<String> = cycle
                    .links
                    .iter()
                    .map(|&li| {
                        let l = &map.links[li];
                        format!(
                            "push {} tokens into {} ({} now blocks)",
                            link_capacity(map, li),
                            link_label(map, li),
                            kname(map, l.src),
                        )
                    })
                    .collect();
                let help = match repairs.first() {
                    Some(&(li, cap, k)) => format!(
                        "minimal capacity assignment: raise {} from {cap} to \
                         ≥ {k} (link_with(.., FifoConfig::fixed({k}))) so one \
                         cycle queue provably never fills",
                        link_label(map, li),
                    ),
                    None => "no finite capacity assignment certifies this \
                             cycle (every cycle stream has λ ≥ μ): change \
                             the declared rates, or prove the feedback edge \
                             drained and downgrade via \
                             MapConfig::check.cycle_severity"
                        .to_string(),
                };
                out.push(
                    Diagnostic::new(
                        "RC0008",
                        "feedback-deadlock",
                        map.cfg.check.cycle_severity,
                        format!(
                            "feedback cycle through {{{}}} can deadlock under \
                             the declared service rates: every stream on the \
                             cycle can fill; counterexample token-flow: {}; \
                             every kernel on the cycle is now blocked pushing \
                             and no consumer can free space",
                            names.join(", "),
                            flow.join(", then "),
                        ),
                    )
                    .with_help(help)
                    .with_kernels(cycle.members.iter().copied())
                    .with_links(cycle.links.iter().copied()),
                );
            }
        }
    }
    out
}
