//! Cross-process supervision scenarios: seeded `kill -9` mid-stream,
//! restart-budget exhaustion, role-reclaim refusal, and the blocked-
//! producer unpark regression (a SIGKILL'd worker never flips its own
//! close flags — the supervisor's reap path must do it on its behalf).
//!
//! This target is `harness = false`: the binary re-executes itself as
//! the worker process (`--worker <mode> <fds…>`), inheriting the shm
//! segments by file descriptor exactly like `examples/xprocess_pipeline`.
//! The parent half drives a real `RaftMap` graph through `DescShip` and
//! supervises the worker with `ProcSupervisor`.

use std::process::Command;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use raft_buffer::arena::{DescriptorSender, ShmArena};
use raft_buffer::shm::{ShmItem, ShmRing, ShmSegment};
use raft_buffer::{Descriptor, TryPopError};
use raft_kernels::DescShip;
use raftlib::prelude::*;
use raftlib::{DescLink, SegmentLink};

/// The PR 4 failpoint seeds, reused so chaos placement stays comparable
/// across the fault-injection suites.
const SEEDS: [u64; 5] = [1, 7, 42, 99, 7177];
const RECORDS: u64 = 4_000;
const RING_CAP: usize = 128;
const ARENA_SLOTS: usize = 256;
const SLOT_SIZE: usize = 64;
const RESULT_CAP: usize = 512;
const JOURNAL_BOUND: usize = 1024;

/// Per-record result shipped worker → parent; `seq` is the worker's
/// commit cursor for the record, which the parent uses to deduplicate
/// replayed work after a respawn.
#[repr(C)]
#[derive(Clone, Copy)]
struct ResultRec {
    seq: u64,
    value: u64,
}

// SAFETY: ResultRec is Copy, repr(C), and contains only u64s — no
// padding, no pointers, every bit pattern valid — so it round-trips
// through shared memory byte-wise.
unsafe impl ShmItem for ResultRec {}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--worker") {
        let fd = |i: usize| -> i32 { args[i].parse().expect("fd arg") };
        match args.get(2).map(String::as_str) {
            Some("pipeline") => pipeline_worker(fd(3), fd(4), fd(5)),
            Some("sleep") => sleeping_worker(fd(3)),
            other => panic!("unknown worker mode {other:?}"),
        }
        return;
    }
    if !ShmSegment::memfd_supported() {
        println!("proc_supervision: memfd_create unavailable; skipping");
        return;
    }
    byte_identical_output_across_seeded_kills();
    restart_budget_exhaustion_escalates_to_abort();
    stale_generation_reclaim_is_refused();
    killed_blocked_producer_unparks_promptly();
    println!("proc_supervision: all scenarios passed");
}

/// Map a chaos seed to a kill offset in the first half of the stream.
fn kill_offset(seed: u64) -> u64 {
    let mut x = seed ^ 0xcbf2_9ce4_8422_2325;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    1 + x % (RECORDS / 2)
}

/// SIGKILL ourselves: no drop glue, no close flags, no goodbye.
fn die_hard() -> ! {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        // SYS_kill = 62.
        let mut nr: u64 = 62;
        // SAFETY: kill(getpid(), SIGKILL) targets only this process and
        // never returns; rcx/r11 are clobbered per the syscall ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inout("rax") nr,
                in("rdi") u64::from(std::process::id()),
                in("rsi") 9u64, // SIGKILL
                out("rcx") _,
                out("r11") _,
            );
        }
        let _ = nr;
    }
    std::process::abort();
}

// --- worker modes (this binary, re-executed) -------------------------------

/// Consume descriptors, echo each parsed value back on the result ring,
/// honouring the exactly-once commit contract (publish result → commit →
/// free slot → beat). `RAFT_TEST_KILL_AT` plants a SIGKILL in the
/// publish-but-uncommitted window; by default only the first incarnation
/// (`RAFT_TEST_ATTEMPT=0`) dies, `RAFT_TEST_KILL_EVERY=1` makes every
/// incarnation die (for budget-exhaustion runs).
fn pipeline_worker(ring_fd: i32, arena_fd: i32, result_fd: i32) {
    let mut ring = ShmRing::<Descriptor>::attach_consumer(ring_fd).expect("attach ring");
    let mut rx = ShmArena::attach_rx(arena_fd).expect("attach arena");
    let mut results = ShmRing::<ResultRec>::attach_producer(result_fd).expect("attach results");
    let seg = ring.segment_shared();

    let attempt: u32 = std::env::var("RAFT_TEST_ATTEMPT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let kill_at: Option<u64> = std::env::var("RAFT_TEST_KILL_AT")
        .ok()
        .and_then(|s| s.parse().ok());
    let kill_every = std::env::var("RAFT_TEST_KILL_EVERY").is_ok();

    let mut seq = seg.commit_word().load(Acquire);
    let mut processed_this_run = 0u64;
    loop {
        seg.heartbeat().beat();
        match ring.try_pop() {
            Ok(d) => {
                let value = rx
                    .resolve(&d)
                    .ok()
                    .and_then(|bytes| {
                        std::str::from_utf8(bytes)
                            .ok()?
                            .trim_end()
                            .strip_prefix("value:")?
                            .parse::<u64>()
                            .ok()
                    })
                    .unwrap_or(0);
                if results.push(ResultRec { seq, value }).is_err() {
                    break;
                }
                // Crash in the nastiest window: result published, commit
                // not yet advanced — the replacement re-emits this seq.
                if (attempt == 0 || kill_every) && kill_at == Some(processed_this_run + 1) {
                    die_hard();
                }
                seg.commit_word().store(seq + 1, Release);
                let _ = rx.free(d);
                seq += 1;
                processed_this_run += 1;
            }
            Err(TryPopError::Empty) => std::thread::sleep(Duration::from_micros(200)),
            Err(TryPopError::Closed) => break,
        }
    }
}

/// Attach the consumer role and then do nothing at all: never pops,
/// never beats the heartbeat, never exits. The supervisor must wedge-
/// kill it and flip the close flags on its behalf.
fn sleeping_worker(ring_fd: i32) {
    let _ring = ShmRing::<u64>::attach_consumer(ring_fd).expect("attach ring");
    std::thread::sleep(Duration::from_secs(120));
}

// --- parent-side pipeline harness ------------------------------------------

struct RunOutcome {
    /// Values indexed by sequence number (the journaled output).
    values: Vec<u64>,
    /// Distinct sequence numbers observed.
    distinct: u64,
    /// Results discarded as replayed duplicates.
    dupes: u64,
    report: ProcReport,
}

/// Drive the full parent graph with one supervised worker process.
fn run_pipeline(kill_at: Option<u64>, kill_every: bool, max_restarts: u32) -> RunOutcome {
    let (ring, ring_fd) = ShmRing::<Descriptor>::create_producer(RING_CAP).expect("ring");
    let (tx, arena_fd) = ShmArena::create_tx(ARENA_SLOTS, SLOT_SIZE).expect("arena");
    let (mut results, result_fd) =
        ShmRing::<ResultRec>::create_consumer(RESULT_CAP).expect("result ring");
    let sender = Arc::new(Mutex::new(DescriptorSender::new(tx, ring, JOURNAL_BOUND)));
    let hb_seg = sender.lock().unwrap().ring_segment_shared();
    let result_seg = results.segment_shared();

    let exe = std::env::current_exe().expect("current exe");
    let factory = move |attempt: u32| {
        let mut cmd = Command::new(&exe);
        cmd.args(["--worker", "pipeline"])
            .arg(ring_fd.to_string())
            .arg(arena_fd.to_string())
            .arg(result_fd.to_string())
            .env("RAFT_TEST_ATTEMPT", attempt.to_string());
        if let Some(off) = kill_at {
            cmd.env("RAFT_TEST_KILL_AT", off.to_string());
        }
        if kill_every {
            cmd.env("RAFT_TEST_KILL_EVERY", "1");
        }
        cmd
    };

    let mut sup = ProcSupervisor::new();
    sup.spawn(
        WorkerSpec::new("pipeline-worker", factory)
            .policy(ProcPolicy::Restart {
                max_restarts,
                backoff: Duration::from_millis(5),
            })
            .wedge_timeout(Duration::from_secs(5))
            .link(DescLink::new(sender.clone()))
            .link(SegmentLink::new(result_seg, true))
            .heartbeat_on(hb_seg),
    )
    .expect("spawn worker");
    let terminal = sup.terminal_flag();

    // Collector: count-based termination with dedup by seq. `Closed` is
    // only terminal once the supervisor gives up on the worker (the reap
    // path sets transient close flags during every respawn).
    let tflag = terminal.clone();
    let collector = std::thread::spawn(move || {
        let mut values = vec![0u64; RECORDS as usize];
        let mut seen = vec![false; RECORDS as usize];
        let mut distinct = 0u64;
        let mut dupes = 0u64;
        while distinct < RECORDS {
            match results.try_pop() {
                Ok(r) => {
                    let i = r.seq as usize;
                    if i < seen.len() && !seen[i] {
                        seen[i] = true;
                        values[i] = r.value;
                        distinct += 1;
                    } else {
                        dupes += 1;
                    }
                }
                Err(TryPopError::Empty) => {
                    if tflag.load(Relaxed) {
                        break; // worker terminally gone and ring drained
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(TryPopError::Closed) => {
                    if tflag.load(Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        (values, distinct, dupes)
    });

    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(raftlib::lambda::lambda_source(move || {
        i += 1;
        (i <= RECORDS).then_some(i)
    }));
    let ship = map.add(DescShip::new(
        sender.clone(),
        |v: &u64, buf: &mut Vec<u8>| {
            buf.extend_from_slice(format!("value:{v}\n").as_bytes());
        },
        Some(terminal.clone()),
    ));
    map.link(src, "0", ship, "in").unwrap();
    map.exe().expect("parent graph");

    // Wait for full ack (or give up once the worker is terminally gone),
    // then close the producer side so a live worker drains and exits.
    loop {
        {
            let mut s = sender.lock().unwrap();
            s.ack_committed();
            if s.pending() == 0 && !s.recovering() {
                break;
            }
        }
        if terminal.load(Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    {
        let s = sender.lock().unwrap();
        let seg = s.ring_segment();
        seg.producer_closed().store(1, Release);
        seg.consumer_waker().notify();
    }

    let (values, distinct, dupes) = collector.join().expect("collector");
    let mut reports = sup.join(Duration::from_secs(60));
    assert_eq!(reports.len(), 1);
    RunOutcome {
        values,
        distinct,
        dupes,
        report: reports.remove(0),
    }
}

// --- scenarios -------------------------------------------------------------

/// A worker SIGKILL'd mid-stream at each seeded offset is respawned,
/// re-attaches via generation reclaim, and replays from the journal: the
/// collected output is byte-identical to the fault-free run.
fn byte_identical_output_across_seeded_kills() {
    let baseline = run_pipeline(None, false, 3);
    assert_eq!(baseline.distinct, RECORDS, "fault-free run incomplete");
    assert_eq!(baseline.report.outcome, KernelOutcome::Completed);
    assert_eq!(baseline.report.crashes, 0);
    let baseline_bytes: Vec<u8> = baseline
        .values
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();

    for seed in SEEDS {
        let off = kill_offset(seed);
        let run = run_pipeline(Some(off), false, 3);
        assert_eq!(
            run.distinct, RECORDS,
            "seed {seed}: incomplete after respawn"
        );
        let bytes: Vec<u8> = run.values.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(
            bytes, baseline_bytes,
            "seed {seed}: journaled output diverged from fault-free run"
        );
        assert_eq!(
            run.report.outcome,
            KernelOutcome::Restarted(1),
            "seed {seed}"
        );
        assert_eq!(run.report.crashes, 1, "seed {seed}");
        assert_eq!(run.report.respawns, 1, "seed {seed}");
        // The kill lands between result-publish and commit, so exactly
        // one replayed duplicate reaches the collector.
        assert_eq!(
            run.dupes, 1,
            "seed {seed}: expected one deduplicated replay"
        );
        // `last_status` tracks the most recent exit: the respawned
        // incarnation's clean 0, not the SIGKILL'd one's signal death.
        assert_eq!(run.report.last_status, Some(0), "seed {seed}");
        println!("  seed {seed}: kill at {off}, output byte-identical ✓");
    }
    println!("byte_identical_output_across_seeded_kills ✓");
}

/// A worker that dies on every incarnation burns through its restart
/// budget and escalates to Abort.
fn restart_budget_exhaustion_escalates_to_abort() {
    let run = run_pipeline(Some(20), true, 2);
    assert_eq!(run.report.outcome, KernelOutcome::Aborted);
    assert_eq!(
        run.report.crashes, 3,
        "initial attempt + 2 respawns all crash"
    );
    assert_eq!(run.report.respawns, 2);
    assert!(run.distinct < RECORDS, "run cannot complete");
    println!("restart_budget_exhaustion_escalates_to_abort ✓");
}

/// A role word that moved since it was observed is not ours to revoke:
/// the generation CAS refuses, which is what stops a supervisor from
/// reclaiming a role a *live* attacher re-claimed in the meantime.
fn stale_generation_reclaim_is_refused() {
    let (_p, fd) = ShmRing::<u64>::create_producer(8).expect("ring");
    let c = ShmRing::<u64>::attach_consumer(fd).expect("attach");
    let seg = c.segment_shared();

    // The consumer role is live at some odd generation g.
    let g = seg.role_generation(false);
    assert_eq!(g & 1, 1, "attached consumer holds an odd generation");
    // A claim attempt while the role is live is refused outright.
    assert_eq!(seg.claim_role_generation(false), None);

    // Simulate a full reap + reclaim cycle by another supervisor: the
    // word moves to g+2 (revoked, then re-claimed by the replacement).
    drop(c); // release cleanly: in this build drop ≠ revoke, so force it
    assert_eq!(seg.revoke_role(false, g), Ok(g + 1));
    assert_eq!(seg.claim_role_generation(false), Some(g + 2));

    // Our observation of g is now stale: the revoke CAS must refuse and
    // report the current generation, leaving the live claim intact.
    assert_eq!(seg.revoke_role(false, g), Err(g + 2));
    assert_eq!(seg.role_generation(false), g + 2);
    println!("stale_generation_reclaim_is_refused ✓");
}

/// Satellite regression: a producer parked on a full ring whose consumer
/// is SIGKILL'd must unpark promptly — the supervisor's reap path writes
/// the dead worker's close flags and performs the full-contract futex
/// notify on its behalf.
fn killed_blocked_producer_unparks_promptly() {
    let (mut producer, fd) = ShmRing::<u64>::create_producer(4).expect("ring");
    let seg = producer.segment_shared();

    let exe = std::env::current_exe().expect("current exe");
    let factory = move |_attempt: u32| {
        let mut cmd = Command::new(&exe);
        cmd.args(["--worker", "sleep"]).arg(fd.to_string());
        cmd
    };

    let mut sup = ProcSupervisor::new();
    sup.spawn(
        WorkerSpec::new("sleeper", factory)
            .policy(ProcPolicy::Skip)
            .wedge_timeout(Duration::from_millis(300))
            .link(SegmentLink::new(seg.clone(), false))
            .heartbeat_on(seg),
    )
    .expect("spawn sleeper");

    // Fill the ring, then block in push. The sleeper never pops and
    // never beats, so the supervisor wedge-kills it; the reap path must
    // wake us with `Closed` well before any watchdog-scale timeout.
    let blocked = std::thread::spawn(move || {
        let started = Instant::now();
        let mut pushed = 0u64;
        loop {
            if producer.push(pushed).is_err() {
                return (pushed, started.elapsed());
            }
            pushed += 1;
        }
    });

    let reports = sup.join(Duration::from_secs(30));
    assert_eq!(reports[0].outcome, KernelOutcome::Skipped);
    assert_eq!(reports[0].wedges, 1);
    assert_eq!(reports[0].last_status, None, "wedge kill is a signal death");

    let (pushed, elapsed) = blocked.join().expect("blocked producer");
    assert!(pushed >= 4, "ring filled before blocking (pushed {pushed})");
    assert!(
        elapsed < Duration::from_secs(2),
        "blocked producer took {elapsed:?} to observe the reaped consumer"
    );
    println!("killed_blocked_producer_unparks_promptly ✓ ({elapsed:?})");
}
