//! Integration tests for the static graph checker (`raft-check`): the lint
//! registry behind [`RaftMap::check`] and the `exe()` fail-fast gate.

use raftlib::prelude::*;

struct Src;
impl Kernel for Src {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<i64>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Sink;
impl Kernel for Sink {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<i64>("in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// A pass-through stage with a feedback input — lets tests build cycles
/// through the public `link` API.
struct Stage;
impl Kernel for Stage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<i64>("in")
            .input::<i64>("fb")
            .output::<i64>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// A stage that also produces the feedback edge.
struct FbStage;
impl Kernel for FbStage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<i64>("in")
            .output::<i64>("out")
            .output::<i64>("fb")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Map1;
impl Kernel for Map1 {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<i64>("in").output::<i64>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// src -> a(Stage) -> b(FbStage) -> sink, with b.fb -> a.fb closing a cycle
/// {a, b}. Every port is connected, so RC0003 is the only error.
fn cyclic_map() -> RaftMap {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let a = map.add(Stage);
    let b = map.add(FbStage);
    let sink = map.add(Sink);
    map.link(src, "out", a, "in").unwrap();
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", sink, "in").unwrap();
    map.link(b, "fb", a, "fb").unwrap();
    map
}

#[test]
fn cycle_is_diagnosed_with_rc0003() {
    let map = cyclic_map();
    let diags = map.check();
    let cycles: Vec<_> = diags.iter().filter(|d| d.code == "RC0003").collect();
    assert_eq!(cycles.len(), 1, "{diags:?}");
    let d = cycles[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("Stage#1"), "{}", d.message);
    assert!(d.message.contains("FbStage#2"), "{}", d.message);
    assert_eq!(d.kernels, vec![1, 2]);
    // Both intra-cycle links (a->b and b->a) are attached for highlighting.
    assert_eq!(d.links.len(), 2);
}

#[test]
fn exe_refuses_cyclic_map_fast() {
    let started = std::time::Instant::now();
    let err = cyclic_map().exe().unwrap_err();
    // Fail-fast: refused by static analysis, not by a runtime hang/timeout.
    assert!(started.elapsed() < std::time::Duration::from_secs(5));
    match err {
        ExeError::CheckFailed { diagnostics } => {
            assert!(diagnostics.iter().any(|d| d.code == "RC0003"));
            assert!(diagnostics.iter().any(|d| d.is_error()));
        }
        other => panic!("expected CheckFailed, got {other:?}"),
    }
}

#[test]
fn cycle_severity_is_configurable() {
    let mut map = cyclic_map();
    map.config_mut().check.cycle_severity = Severity::Warn;
    let diags = map.check();
    let cycle = diags.iter().find(|d| d.code == "RC0003").unwrap();
    assert_eq!(cycle.severity, Severity::Warn);
    assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");
    // Downgraded to a warning, the gate lets the graph through the static
    // check (it would then hang at runtime — that is the caller's call).
}

#[test]
fn unreachable_kernel_is_diagnosed_with_rc0004() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    // An orphan island m -> s2 beside the real pipeline: m's input has no
    // upstream, so no token from any source can ever reach the island.
    let m = map.add(Map1);
    let s2 = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    map.link(m, "out", s2, "in").unwrap();
    let diags = map.check();
    let unreachable = diags.iter().find(|d| d.code == "RC0004").unwrap();
    assert_eq!(unreachable.severity, Severity::Error);
    assert!(
        unreachable.message.contains("Map1#2"),
        "{}",
        unreachable.message
    );
    assert!(
        unreachable.message.contains("Sink#3"),
        "{}",
        unreachable.message
    );
    assert_eq!(unreachable.kernels, vec![2, 3]);
}

#[test]
fn unconnected_port_is_diagnosed_with_rc0001() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let a = map.add(Stage);
    let sink = map.add(Sink);
    map.link(src, "out", a, "in").unwrap();
    map.link(a, "out", sink, "in").unwrap();
    // a.fb left dangling.
    let diags = map.check();
    let dangling: Vec<_> = diags.iter().filter(|d| d.code == "RC0001").collect();
    assert_eq!(dangling.len(), 1, "{diags:?}");
    assert!(
        dangling[0].message.contains("fb"),
        "{}",
        dangling[0].message
    );
    assert!(
        dangling[0].message.contains("Stage#1"),
        "{}",
        dangling[0].message
    );
}

#[test]
fn graph_without_source_or_sink_is_diagnosed_with_rc0002() {
    // Two stages feeding each other: no source, no sink (and a cycle).
    let mut map = RaftMap::new();
    let a = map.add(Map1);
    let b = map.add(Map1);
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", a, "in").unwrap();
    let diags = map.check();
    let endpoints: Vec<_> = diags.iter().filter(|d| d.code == "RC0002").collect();
    assert_eq!(endpoints.len(), 2, "{diags:?}");
    assert!(endpoints.iter().any(|d| d.message.contains("no source")));
    assert!(endpoints.iter().any(|d| d.message.contains("no sink")));
    assert!(diags.iter().any(|d| d.code == "RC0003"));
}

#[test]
fn empty_map_is_diagnosed() {
    let map = RaftMap::new();
    let diags = map.check();
    assert!(diags.iter().any(|d| d.code == "RC0002" && d.is_error()));
}

#[test]
fn rc0007_help_names_minimum_feasible_capacity() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    // Feasible rates (mu > lambda) but a deliberately tiny fixed capacity:
    // the help line must name the computed minimum, not just warn.
    map.link_with(src, "out", sink, "in", FifoConfig::fixed(1))
        .unwrap();
    map.declare_service_rate(src, 80.0);
    map.declare_service_rate(sink, 100.0);
    let diags = map.check();
    let cap = diags.iter().find(|d| d.code == "RC0007").unwrap();
    let help = cap.help.as_deref().unwrap_or_default();
    assert!(
        help.contains("capacity ceiling of"),
        "help must carry the computed minimum: {help}"
    );
}

/// RC0008: a seeded bad graph (under-provisioned feedback loop) is
/// rejected with an actionable diagnostic; applying the suggested minimal
/// capacity turns the same graph into a certified one that passes.
#[test]
fn rc0008_refutes_bad_cycle_and_certifies_corrected_one() {
    let build = |cap: usize| {
        let mut map = RaftMap::new();
        let src = map.add(Src);
        let a = map.add(Stage);
        let b = map.add(FbStage);
        let sink = map.add(Sink);
        map.link(src, "out", a, "in").unwrap();
        map.link_with(a, "out", b, "in", FifoConfig::fixed(cap))
            .unwrap();
        map.link(b, "out", sink, "in").unwrap();
        map.link_with(b, "fb", a, "fb", FifoConfig::fixed(1))
            .unwrap();
        // Forward stream a->b is drained 10x faster than filled; the
        // feedback stream is overloaded by construction (rates around a
        // cycle multiply to 1), so certification hinges on a->b's capacity.
        map.declare_service_rate(a, 10.0);
        map.declare_service_rate(b, 100.0);
        map
    };

    // Bad: capacity 1 on the witness candidate is below the minimum (2).
    let bad = build(1);
    let diags = bad.check();
    let rc8 = diags.iter().find(|d| d.code == "RC0008").unwrap();
    assert!(rc8.is_error(), "{rc8}");
    assert!(rc8.message.contains("counterexample"), "{}", rc8.message);
    let help = rc8.help.as_deref().unwrap_or_default();
    assert!(
        help.contains("≥ 2"),
        "actionable minimal assignment: {help}"
    );
    assert!(bad.exe().is_err(), "refuted cycle must not run");

    // Corrected: apply the suggested assignment -> certificate, no errors.
    let good = build(2);
    let diags = good.check();
    let rc8 = diags.iter().find(|d| d.code == "RC0008").unwrap();
    assert_eq!(rc8.severity, Severity::Info, "{rc8}");
    assert!(
        rc8.message.contains("certified deadlock-free"),
        "{}",
        rc8.message
    );
    // The certificate also downgrades RC0003, so nothing blocks exe().
    let rc3 = diags.iter().find(|d| d.code == "RC0003").unwrap();
    assert_eq!(rc3.severity, Severity::Info, "{rc3}");
    assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");
}

/// RC0009: a stateful kernel replicated behind an out-of-order split is
/// flagged; declaring it stateless clears the finding. With the severity
/// raised to Error the bad graph is rejected outright.
#[test]
fn rc0009_flags_stateful_replication_and_clears_when_declared_stateless() {
    let build = || {
        let mut map = RaftMap::new();
        let src = map.add(lambda_source(|| None::<i64>));
        let work = map.add(lambda_map(|v: i64| v * 2));
        let sink = map.add(lambda_sink(|_: i64| {}));
        map.link_unordered(src, "0", work, "0").unwrap();
        map.link_unordered(work, "0", sink, "0").unwrap();
        map.prefer_width(work, 4);
        (map, work)
    };

    // Bad: lambda_map clones its closure, so the kernel is replicable, but
    // nothing asserts it is pure — per-replica state could diverge.
    let (mut bad, _) = build();
    bad.config_mut().check.replication_severity = Severity::Error;
    let diags = bad.check();
    let rc9 = diags.iter().find(|d| d.code == "RC0009").unwrap();
    assert!(rc9.is_error(), "{rc9}");
    assert!(rc9.message.contains("stateful"), "{}", rc9.message);
    assert!(
        rc9.help
            .as_deref()
            .unwrap_or_default()
            .contains("declare_stateless"),
        "{rc9:?}"
    );
    assert!(bad.exe().is_err(), "rejected at Error severity");

    // Corrected: the declaration resolves the contradiction.
    let (mut good, work) = build();
    good.config_mut().check.replication_severity = Severity::Error;
    good.declare_stateless(work);
    assert!(
        !good.check().iter().any(|d| d.code == "RC0009"),
        "{:?}",
        good.check()
    );
    good.exe().unwrap();
}

/// RC0010: a Replace factory whose ports do not match the supervised
/// kernel is rejected (always an error); a matching factory passes.
#[test]
fn rc0010_rejects_mismatched_replace_factory_and_allows_matching_one() {
    let build = |policy: SupervisorPolicy| {
        let mut map = RaftMap::new();
        let src = map.add(lambda_source(|| None::<i64>));
        let sink = map.add(lambda_sink(|_: i64| {}));
        map.link(src, "0", sink, "0").unwrap();
        map.supervise(sink, policy);
        map
    };

    // Bad: the factory builds a kernel with a different element type.
    let bad = build(SupervisorPolicy::replace(1, || {
        Box::new(lambda_sink(|_: String| {}))
    }));
    let diags = bad.check();
    let rc10 = diags.iter().find(|d| d.code == "RC0010").unwrap();
    assert!(rc10.is_error(), "{rc10}");
    assert!(rc10.message.contains("ports"), "{}", rc10.message);
    assert!(bad.exe().is_err(), "mismatched factory must not run");

    // Corrected: a factory producing the same signature passes and runs.
    let good = build(SupervisorPolicy::replace(1, || {
        Box::new(lambda_sink(|_: i64| {}))
    }));
    assert!(
        !good.check().iter().any(|d| d.code == "RC0010"),
        "{:?}",
        good.check()
    );
    good.exe().unwrap();
}

/// RC0010: Restart on a kernel that cannot produce a clean replica warns;
/// Skip feeding a multi-input merge warns about partial results.
#[test]
fn rc0010_warns_on_restart_without_replica_and_skip_before_merge() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    map.supervise(sink, SupervisorPolicy::restart(2));
    let diags = map.check();
    let rc10 = diags.iter().find(|d| d.code == "RC0010").unwrap();
    assert_eq!(rc10.severity, Severity::Warn);
    assert!(rc10.message.contains("Restart"), "{}", rc10.message);
    // Warnings alone do not block execution.
    assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");

    // Skip upstream of a 2-input merge.
    struct Merge;
    impl Kernel for Merge {
        fn ports(&self) -> PortSpec {
            PortSpec::new()
                .input::<i64>("a")
                .input::<i64>("b")
                .output::<i64>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }
    let mut map = RaftMap::new();
    let s1 = map.add(lambda_source(|| None::<i64>));
    let s2 = map.add(lambda_source(|| None::<i64>));
    let merge = map.add(Merge);
    let sink = map.add(lambda_sink(|_: i64| {}));
    map.link(s1, "0", merge, "a").unwrap();
    map.link(s2, "0", merge, "b").unwrap();
    map.link(merge, "out", sink, "0").unwrap();
    map.supervise(s1, SupervisorPolicy::Skip);
    let diags = map.check();
    let skip = diags
        .iter()
        .find(|d| d.code == "RC0010" && d.message.contains("Skip"))
        .unwrap();
    assert!(skip.message.contains("partial results"), "{}", skip.message);
}

#[test]
fn capacity_lint_warns_on_overloaded_stream() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    // Producer 10x faster than consumer: no finite buffer keeps blocking low.
    map.declare_service_rate(src, 100.0);
    map.declare_service_rate(sink, 10.0);
    let diags = map.check();
    let cap = diags.iter().find(|d| d.code == "RC0007").unwrap();
    assert_eq!(cap.severity, Severity::Warn);
    assert!(cap.message.contains("blocking"), "{}", cap.message);
    // The actionable suggestion rides on the help: line.
    let help = cap.help.as_deref().unwrap_or_default();
    assert!(help.contains("no finite capacity"), "{help}");
    assert!(cap.to_string().contains("help:"), "{cap}");
    // A warning alone must not block execution.
    assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");
}

#[test]
fn capacity_lint_quiet_on_feasible_rates_and_silent_without_rates() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    // No declared rates: the pass has nothing to model.
    assert!(!map.check().iter().any(|d| d.code == "RC0007"));
    // Declared feasible rates (consumer 10x faster): still quiet.
    map.declare_service_rate(src, 10.0);
    map.declare_service_rate(sink, 100.0);
    assert!(!map.check().iter().any(|d| d.code == "RC0007"));
}

#[test]
fn diagnostics_sort_errors_first() {
    let mut map = cyclic_map();
    // Add an overloaded stream so the run carries both an error and a warn.
    let src2 = map.add(Src);
    let sink2 = map.add(Sink);
    map.link(src2, "out", sink2, "in").unwrap();
    map.declare_service_rate(src2, 100.0);
    map.declare_service_rate(sink2, 10.0);
    let diags = map.check();
    let first_warn = diags.iter().position(|d| d.severity == Severity::Warn);
    let last_error = diags.iter().rposition(|d| d.is_error());
    if let (Some(w), Some(e)) = (first_warn, last_error) {
        assert!(e < w, "errors must sort before warnings: {diags:?}");
    } else {
        panic!("expected both severities, got {diags:?}");
    }
}

#[test]
fn clean_graph_checks_clean_and_runs() {
    let mut map = RaftMap::new();
    let mut n = 0i64;
    let src = map.add(lambda_source(move || {
        n += 1;
        (n <= 3).then_some(n)
    }));
    let sink = map.add(lambda_sink(|_: i64| {}));
    map.link(src, "0", sink, "0").unwrap();
    assert!(map.check().is_empty(), "{:?}", map.check());
    map.exe().unwrap();
}
