//! Integration tests for the static graph checker (`raft-check`): the lint
//! registry behind [`RaftMap::check`] and the `exe()` fail-fast gate.

use raftlib::prelude::*;

struct Src;
impl Kernel for Src {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<i64>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Sink;
impl Kernel for Sink {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<i64>("in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// A pass-through stage with a feedback input — lets tests build cycles
/// through the public `link` API.
struct Stage;
impl Kernel for Stage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<i64>("in")
            .input::<i64>("fb")
            .output::<i64>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// A stage that also produces the feedback edge.
struct FbStage;
impl Kernel for FbStage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<i64>("in")
            .output::<i64>("out")
            .output::<i64>("fb")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Map1;
impl Kernel for Map1 {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<i64>("in").output::<i64>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

/// src -> a(Stage) -> b(FbStage) -> sink, with b.fb -> a.fb closing a cycle
/// {a, b}. Every port is connected, so RC0003 is the only error.
fn cyclic_map() -> RaftMap {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let a = map.add(Stage);
    let b = map.add(FbStage);
    let sink = map.add(Sink);
    map.link(src, "out", a, "in").unwrap();
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", sink, "in").unwrap();
    map.link(b, "fb", a, "fb").unwrap();
    map
}

#[test]
fn cycle_is_diagnosed_with_rc0003() {
    let map = cyclic_map();
    let diags = map.check();
    let cycles: Vec<_> = diags.iter().filter(|d| d.code == "RC0003").collect();
    assert_eq!(cycles.len(), 1, "{diags:?}");
    let d = cycles[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("Stage#1"), "{}", d.message);
    assert!(d.message.contains("FbStage#2"), "{}", d.message);
    assert_eq!(d.kernels, vec![1, 2]);
    // Both intra-cycle links (a->b and b->a) are attached for highlighting.
    assert_eq!(d.links.len(), 2);
}

#[test]
fn exe_refuses_cyclic_map_fast() {
    let started = std::time::Instant::now();
    let err = cyclic_map().exe().unwrap_err();
    // Fail-fast: refused by static analysis, not by a runtime hang/timeout.
    assert!(started.elapsed() < std::time::Duration::from_secs(5));
    match err {
        ExeError::CheckFailed { diagnostics } => {
            assert!(diagnostics.iter().any(|d| d.code == "RC0003"));
            assert!(diagnostics.iter().any(|d| d.is_error()));
        }
        other => panic!("expected CheckFailed, got {other:?}"),
    }
}

#[test]
fn cycle_severity_is_configurable() {
    let mut map = cyclic_map();
    map.config_mut().check.cycle_severity = Severity::Warn;
    let diags = map.check();
    let cycle = diags.iter().find(|d| d.code == "RC0003").unwrap();
    assert_eq!(cycle.severity, Severity::Warn);
    assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");
    // Downgraded to a warning, the gate lets the graph through the static
    // check (it would then hang at runtime — that is the caller's call).
}

#[test]
fn unreachable_kernel_is_diagnosed_with_rc0004() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    // An orphan island m -> s2 beside the real pipeline: m's input has no
    // upstream, so no token from any source can ever reach the island.
    let m = map.add(Map1);
    let s2 = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    map.link(m, "out", s2, "in").unwrap();
    let diags = map.check();
    let unreachable = diags.iter().find(|d| d.code == "RC0004").unwrap();
    assert_eq!(unreachable.severity, Severity::Error);
    assert!(
        unreachable.message.contains("Map1#2"),
        "{}",
        unreachable.message
    );
    assert!(
        unreachable.message.contains("Sink#3"),
        "{}",
        unreachable.message
    );
    assert_eq!(unreachable.kernels, vec![2, 3]);
}

#[test]
fn unconnected_port_is_diagnosed_with_rc0001() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let a = map.add(Stage);
    let sink = map.add(Sink);
    map.link(src, "out", a, "in").unwrap();
    map.link(a, "out", sink, "in").unwrap();
    // a.fb left dangling.
    let diags = map.check();
    let dangling: Vec<_> = diags.iter().filter(|d| d.code == "RC0001").collect();
    assert_eq!(dangling.len(), 1, "{diags:?}");
    assert!(
        dangling[0].message.contains("fb"),
        "{}",
        dangling[0].message
    );
    assert!(
        dangling[0].message.contains("Stage#1"),
        "{}",
        dangling[0].message
    );
}

#[test]
fn graph_without_source_or_sink_is_diagnosed_with_rc0002() {
    // Two stages feeding each other: no source, no sink (and a cycle).
    let mut map = RaftMap::new();
    let a = map.add(Map1);
    let b = map.add(Map1);
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", a, "in").unwrap();
    let diags = map.check();
    let endpoints: Vec<_> = diags.iter().filter(|d| d.code == "RC0002").collect();
    assert_eq!(endpoints.len(), 2, "{diags:?}");
    assert!(endpoints.iter().any(|d| d.message.contains("no source")));
    assert!(endpoints.iter().any(|d| d.message.contains("no sink")));
    assert!(diags.iter().any(|d| d.code == "RC0003"));
}

#[test]
fn empty_map_is_diagnosed() {
    let map = RaftMap::new();
    let diags = map.check();
    assert!(diags.iter().any(|d| d.code == "RC0002" && d.is_error()));
}

#[test]
fn capacity_lint_warns_on_overloaded_stream() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    // Producer 10x faster than consumer: no finite buffer keeps blocking low.
    map.declare_service_rate(src, 100.0);
    map.declare_service_rate(sink, 10.0);
    let diags = map.check();
    let cap = diags.iter().find(|d| d.code == "RC0007").unwrap();
    assert_eq!(cap.severity, Severity::Warn);
    assert!(cap.message.contains("blocking"), "{}", cap.message);
    assert!(
        cap.message.contains("no finite capacity"),
        "{}",
        cap.message
    );
    // A warning alone must not block execution.
    assert!(!diags.iter().any(|d| d.is_error()), "{diags:?}");
}

#[test]
fn capacity_lint_quiet_on_feasible_rates_and_silent_without_rates() {
    let mut map = RaftMap::new();
    let src = map.add(Src);
    let sink = map.add(Sink);
    map.link(src, "out", sink, "in").unwrap();
    // No declared rates: the pass has nothing to model.
    assert!(!map.check().iter().any(|d| d.code == "RC0007"));
    // Declared feasible rates (consumer 10x faster): still quiet.
    map.declare_service_rate(src, 10.0);
    map.declare_service_rate(sink, 100.0);
    assert!(!map.check().iter().any(|d| d.code == "RC0007"));
}

#[test]
fn diagnostics_sort_errors_first() {
    let mut map = cyclic_map();
    // Add an overloaded stream so the run carries both an error and a warn.
    let src2 = map.add(Src);
    let sink2 = map.add(Sink);
    map.link(src2, "out", sink2, "in").unwrap();
    map.declare_service_rate(src2, 100.0);
    map.declare_service_rate(sink2, 10.0);
    let diags = map.check();
    let first_warn = diags.iter().position(|d| d.severity == Severity::Warn);
    let last_error = diags.iter().rposition(|d| d.is_error());
    if let (Some(w), Some(e)) = (first_warn, last_error) {
        assert!(e < w, "errors must sort before warnings: {diags:?}");
    } else {
        panic!("expected both severities, got {diags:?}");
    }
}

#[test]
fn clean_graph_checks_clean_and_runs() {
    let mut map = RaftMap::new();
    let mut n = 0i64;
    let src = map.add(lambda_source(move || {
        n += 1;
        (n <= 3).then_some(n)
    }));
    let sink = map.add(lambda_sink(|_: i64| {}));
    map.link(src, "0", sink, "0").unwrap();
    assert!(map.check().is_empty(), "{:?}", map.check());
    map.exe().unwrap();
}
