//! End-to-end fusion-pass tests: fused execution must be byte-identical to
//! unfused execution (same items, same order) for chains of stateless
//! transforms — across filters, stateful fusion barriers, end-of-stream,
//! small rings that resize mid-run, and randomized chains (proptest).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use raftlib::kernel::ErasedBatchStage;
use raftlib::prelude::*;
use raftlib::{per_element_filter, ExeReport};

/// One pure per-item transform a chain stage applies.
#[derive(Clone, Debug)]
enum Op {
    Add(u64),
    Mul(u64),
    /// Keep only multiples of `k` (k ≥ 1).
    KeepMod(u64),
}

impl Op {
    fn apply(&self, v: u64) -> Option<u64> {
        match *self {
            Op::Add(k) => Some(v.wrapping_add(k)),
            Op::Mul(k) => Some(v.wrapping_mul(k)),
            Op::KeepMod(k) => v.is_multiple_of(k.max(1)).then_some(v),
        }
    }
}

/// A pipeline stage applying one [`Op`] per item. `fusable: false` models
/// an opaque/stateful kernel: same per-item semantics, but the fusion pass
/// must treat it as a chain barrier.
struct OpKernel {
    op: Op,
    fusable: bool,
}

impl Kernel for OpKernel {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u64>("in").output::<u64>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<u64>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                if let Some(out) = self.op.apply(v) {
                    if ctx.output::<u64>("out").push(out).is_err() {
                        return KStatus::Stop;
                    }
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "op".to_string()
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn is_fusable(&self) -> bool {
        self.fusable
    }

    fn batch_stage(&mut self) -> Option<Box<dyn ErasedBatchStage>> {
        let op = self.op.clone();
        Some(per_element_filter("op", move |v: u64| op.apply(v)))
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(OpKernel {
            op: self.op.clone(),
            fusable: self.fusable,
        }))
    }
}

/// Build src -> stage… -> sink over `items`, run it with fusion forced on
/// or off, and return the sink's output plus the report.
fn run_chain(
    items: &[u64],
    ops: &[(Op, bool)],
    fused: bool,
    fifo_start: usize,
    batch: usize,
) -> (Vec<u64>, ExeReport) {
    let mut map = RaftMap::new();
    map.config_mut().fifo = FifoConfig::starting_at(fifo_start);
    let mut feed = Vec::from(items).into_iter();
    let src = map.add(lambda_source(move || feed.next()));
    let mut prev = (src, "0".to_string());
    for (op, fusable) in ops {
        let k = map.add(OpKernel {
            op: op.clone(),
            fusable: *fusable,
        });
        map.link(prev.0, &prev.1, k, "in").unwrap();
        prev = (k, "out".to_string());
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let sink = map.add(lambda_sink(move |v: u64| out2.lock().unwrap().push(v)));
    map.link(prev.0, &prev.1, sink, "0").unwrap();
    let report = map
        .exe_opts(ExeOpts {
            fusion: Some(fused),
            fusion_batch: Some(batch),
            deadline: None,
        })
        .unwrap();
    let got = out.lock().unwrap().clone();
    (got, report)
}

#[test]
fn fused_pipeline_matches_unfused_output() {
    let items: Vec<u64> = (0..10_000).collect();
    let ops = [(Op::Add(1), true), (Op::Mul(3), true), (Op::Add(7), true)];
    let (unfused, ur) = run_chain(&items, &ops, false, 64, 512);
    let (fused, fr) = run_chain(&items, &ops, true, 64, 512);
    assert_eq!(fused, unfused);
    assert!(ur.fused.is_empty(), "fusion disabled must fuse nothing");
    assert_eq!(fr.fused.len(), 1);
    let g = &fr.fused[0];
    assert_eq!(g.members.len(), 3);
    assert_eq!(g.items_in, 10_000);
    assert_eq!(g.items_out, 10_000);
    assert!(g.batches >= 10_000 / 512);
    // The interior streams are gone: src->fused->sink only.
    assert_eq!(fr.edges.len(), 2);
    assert_eq!(ur.edges.len(), 4);
}

#[test]
fn fused_filter_chain_drops_the_same_items() {
    let items: Vec<u64> = (0..5_000).collect();
    let ops = [
        (Op::Add(2), true),
        (Op::KeepMod(3), true),
        (Op::Mul(5), true),
        (Op::KeepMod(2), true),
    ];
    let (unfused, _) = run_chain(&items, &ops, false, 32, 128);
    let (fused, fr) = run_chain(&items, &ops, true, 32, 128);
    assert_eq!(fused, unfused);
    let g = &fr.fused[0];
    assert_eq!(g.items_in, 5_000);
    assert_eq!(g.items_out as usize, fused.len());
    assert!(g.items_out < g.items_in);
}

#[test]
fn stateful_barrier_splits_but_preserves_output() {
    let items: Vec<u64> = (0..3_000).collect();
    // fusable, BARRIER, fusable, fusable: only the tail pair fuses.
    let ops = [
        (Op::Add(1), true),
        (Op::Mul(3), false),
        (Op::Add(5), true),
        (Op::Mul(7), true),
    ];
    let (unfused, _) = run_chain(&items, &ops, false, 16, 256);
    let (fused, fr) = run_chain(&items, &ops, true, 16, 256);
    assert_eq!(fused, unfused);
    assert_eq!(fr.fused.len(), 1);
    assert_eq!(fr.fused[0].members.len(), 2);
}

#[test]
fn tiny_rings_resize_under_fused_batches() {
    // Batch far larger than the starting ring: reserve/pop_range must loop
    // and the monitor may grow the rings mid-run; output must not change.
    let items: Vec<u64> = (0..4_000).collect();
    let ops = [(Op::Add(9), true), (Op::Add(1), true)];
    let (unfused, _) = run_chain(&items, &ops, false, 2, 512);
    let (fused, fr) = run_chain(&items, &ops, true, 2, 512);
    assert_eq!(fused, unfused);
    assert_eq!(fr.fused.len(), 1);
}

#[test]
fn empty_stream_propagates_eos_through_fused_group() {
    let ops = [(Op::Add(1), true), (Op::Mul(2), true)];
    let (fused, fr) = run_chain(&[], &ops, true, 8, 64);
    assert!(fused.is_empty());
    assert_eq!(fr.fused.len(), 1);
    assert_eq!(fr.fused[0].items_in, 0);
}

#[test]
fn exe_report_renders_fused_groups() {
    let items: Vec<u64> = (0..100).collect();
    let ops = [(Op::Add(1), true), (Op::Add(2), true)];
    let (_, fr) = run_chain(&items, &ops, true, 16, 32);
    let text = raftlib::render_report(&fr);
    assert!(text.contains("fused groups (1):"), "{text}");
    assert!(text.contains("op#1 -> op#2"), "{text}");
}

/// A fusable stage that panics exactly once (first sighting of `trigger`),
/// to exercise restart-as-a-unit semantics of fused groups.
struct PanicOnce {
    fired: Arc<AtomicBool>,
    trigger: u64,
}

impl Kernel for PanicOnce {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u64>("in").output::<u64>("out")
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<u64>("in");
        match input.pop() {
            Ok(v) => {
                drop(input);
                if v == self.trigger && !self.fired.swap(true, Ordering::SeqCst) {
                    panic!("injected");
                }
                if ctx.output::<u64>("out").push(v).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }
    fn name(&self) -> String {
        "panic-once".to_string()
    }
    fn is_stateless(&self) -> bool {
        true
    }
    fn is_fusable(&self) -> bool {
        true
    }
    fn batch_stage(&mut self) -> Option<Box<dyn ErasedBatchStage>> {
        let fired = self.fired.clone();
        let trigger = self.trigger;
        Some(raftlib::per_element("panic-once", move |v: u64| {
            if v == trigger && !fired.swap(true, Ordering::SeqCst) {
                panic!("injected");
            }
            v
        }))
    }
    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(PanicOnce {
            fired: self.fired.clone(),
            trigger: self.trigger,
        }))
    }
}

#[test]
fn fused_group_restarts_as_a_unit() {
    let mut map = RaftMap::new();
    let mut feed = 0u64..2_000;
    let src = map.add(lambda_source(move || feed.next()));
    let a = map.add(OpKernel {
        op: Op::Add(0),
        fusable: true,
    });
    let b = map.add(PanicOnce {
        fired: Arc::new(AtomicBool::new(false)),
        trigger: 700,
    });
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let sink = map.add(lambda_sink(move |v: u64| out2.lock().unwrap().push(v)));
    map.link(src, "0", a, "in").unwrap();
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", sink, "0").unwrap();
    // Identical restart budgets on both members: the chain fuses and the
    // whole group restarts (stage forks) when the injected panic fires.
    map.supervise(a, SupervisorPolicy::restart(2));
    map.supervise(b, SupervisorPolicy::restart(2));
    let report = map
        .exe_opts(ExeOpts {
            fusion: Some(true),
            fusion_batch: Some(64),
            deadline: None,
        })
        .unwrap();
    assert_eq!(report.fused.len(), 1, "chain must fuse despite Restart");
    let fk = report
        .kernels
        .iter()
        .find(|k| k.name.contains("fused["))
        .expect("fused kernel report");
    assert!(fk.panicked, "the injected panic must be recorded");
    // The in-flight batch is lost (same contract as an unfused restart
    // losing the in-flight item), but the pipeline recovers and drains.
    let got = out.lock().unwrap();
    assert!(
        got.len() >= 2_000 - 64 && got.len() < 2_000,
        "{}",
        got.len()
    );
    // Everything that did arrive is untransposed and duplicate-free.
    assert!(got.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn mismatched_restart_budgets_keep_kernels_unfused() {
    let mut map = RaftMap::new();
    let mut feed = 0u64..100;
    let src = map.add(lambda_source(move || feed.next()));
    let a = map.add(OpKernel {
        op: Op::Add(1),
        fusable: true,
    });
    let b = map.add(OpKernel {
        op: Op::Add(2),
        fusable: true,
    });
    let sink = map.add(lambda_sink(|_v: u64| {}));
    map.link(src, "0", a, "in").unwrap();
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", sink, "0").unwrap();
    map.supervise(a, SupervisorPolicy::restart(1));
    map.supervise(b, SupervisorPolicy::restart(5));
    let report = map.exe().unwrap();
    assert!(report.fused.is_empty());
}

#[test]
fn per_link_fifo_override_is_respected_as_a_barrier() {
    let mut map = RaftMap::new();
    let mut feed = 0u64..100;
    let src = map.add(lambda_source(move || feed.next()));
    let a = map.add(OpKernel {
        op: Op::Add(1),
        fusable: true,
    });
    let b = map.add(OpKernel {
        op: Op::Add(2),
        fusable: true,
    });
    let sink = map.add(lambda_sink(|_v: u64| {}));
    map.link(src, "0", a, "in").unwrap();
    map.link_with(a, "out", b, "in", FifoConfig::fixed(8))
        .unwrap();
    map.link(b, "out", sink, "0").unwrap();
    let report = map.exe().unwrap();
    assert!(
        report.fused.is_empty(),
        "pinned stream must stay materialized"
    );
    assert_eq!(report.edges.len(), 3);
}

#[test]
fn declared_stateless_lambda_maps_fuse() {
    let mut map = RaftMap::new();
    let mut feed = 0u64..1_000;
    let src = map.add(lambda_source(move || feed.next()));
    let a = map.add(lambda_map(|v: u64| v + 1));
    let b = map.add(lambda_map(|v: u64| v * 2));
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let sink = map.add(lambda_sink(move |v: u64| out2.lock().unwrap().push(v)));
    map.link(src, "0", a, "0").unwrap();
    map.link(a, "0", b, "0").unwrap();
    map.link(b, "0", sink, "0").unwrap();
    // lambda_map is fusable only once the user asserts purity.
    map.declare_stateless(a);
    map.declare_stateless(b);
    let report = map.exe().unwrap();
    assert_eq!(report.fused.len(), 1);
    assert_eq!(
        *out.lock().unwrap(),
        (0..1_000u64).map(|v| (v + 1) * 2).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized chains: any mix of adds, muls and filters, any barrier
    /// placement, any ring start size and batch size — fused output is
    /// byte-identical to unfused.
    #[test]
    fn fused_execution_is_byte_identical(
        len in 0usize..600,
        fifo_start in 2usize..64,
        batch in 1usize..192,
        raw_ops in prop::collection::vec((0u8..3, 1u64..9, 0u8..2), 1..6),
    ) {
        let items: Vec<u64> = (0..len as u64).collect();
        let ops: Vec<(Op, bool)> = raw_ops
            .iter()
            .map(|&(code, k, barrier)| {
                let op = match code {
                    0 => Op::Add(k),
                    1 => Op::Mul(k),
                    _ => Op::KeepMod(k),
                };
                (op, barrier == 0)
            })
            .collect();
        let (unfused, _) = run_chain(&items, &ops, false, fifo_start, batch);
        let (fused, _) = run_chain(&items, &ops, true, fifo_start, batch);
        prop_assert_eq!(fused, unfused);
    }
}
