//! Link-time error paths: the construction-side half of graph checking
//! (`LinkError`), complementing the post-hoc lint registry in
//! `tests/check.rs`.

use raftlib::prelude::*;

struct Producer1;
impl Kernel for Producer1 {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<u32>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Consumer1;
impl Kernel for Consumer1 {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u32>("in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct ConsumerStr;
impl Kernel for ConsumerStr {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<String>("text_in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct TwoInputs;
impl Kernel for TwoInputs {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u32>("a").input::<u32>("b")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct NoPorts;
impl Kernel for NoPorts {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

#[test]
fn double_linking_a_connected_input_port_fails() {
    let mut map = RaftMap::new();
    let p1 = map.add(Producer1);
    let p2 = map.add(Producer1);
    let c = map.add(Consumer1);
    map.link(p1, "out", c, "in").unwrap();
    let err = map.link(p2, "out", c, "in").unwrap_err();
    match &err {
        LinkError::AlreadyLinked { kernel, port } => {
            assert_eq!(kernel, "Consumer1#2");
            assert_eq!(port, "in");
        }
        other => panic!("expected AlreadyLinked, got {other:?}"),
    }
    // The rendered message names the offending kernel and port.
    let msg = err.to_string();
    assert!(msg.contains("Consumer1#2"), "{msg}");
    assert!(msg.contains("\"in\""), "{msg}");
    // The failed link left no partial state behind.
    assert_eq!(map.link_count(), 1);
}

#[test]
fn double_linking_a_connected_output_port_fails() {
    let mut map = RaftMap::new();
    let p = map.add(Producer1);
    let c1 = map.add(Consumer1);
    let c2 = map.add(Consumer1);
    map.link(p, "out", c1, "in").unwrap();
    let err = map.link(p, "out", c2, "in").unwrap_err();
    assert!(
        matches!(&err, LinkError::AlreadyLinked { kernel, port }
            if kernel == "Producer1#0" && port == "out"),
        "{err:?}"
    );
}

#[test]
fn connect_with_zero_candidate_ports_fails() {
    let mut map = RaftMap::new();
    let p = map.add(Producer1);
    let none = map.add(NoPorts);
    let err = map.connect(p, none).unwrap_err();
    match &err {
        LinkError::NoSuchPort {
            kernel, available, ..
        } => {
            assert_eq!(kernel, "NoPorts#1");
            assert!(available.is_empty(), "{available:?}");
        }
        other => panic!("expected NoSuchPort, got {other:?}"),
    }
}

#[test]
fn connect_with_multiple_candidate_ports_fails() {
    let mut map = RaftMap::new();
    let p = map.add(Producer1);
    let two = map.add(TwoInputs);
    let err = map.connect(p, two).unwrap_err();
    match &err {
        LinkError::NoSuchPort {
            kernel, available, ..
        } => {
            assert_eq!(kernel, "TwoInputs#1");
            // Ambiguity is reported by listing every candidate.
            assert_eq!(available, &["a".to_string(), "b".to_string()]);
        }
        other => panic!("expected NoSuchPort, got {other:?}"),
    }
}

#[test]
fn type_mismatch_message_names_both_endpoints_in_full() {
    let mut map = RaftMap::new();
    let p = map.add(Producer1);
    let c = map.add(ConsumerStr);
    let err = map.link(p, "out", c, "text_in").unwrap_err();
    match &err {
        LinkError::TypeMismatch {
            src,
            dst,
            src_type,
            dst_type,
        } => {
            assert_eq!(src, "Producer1#0.out");
            assert_eq!(dst, "ConsumerStr#1.text_in");
            assert_eq!(*src_type, "u32");
            assert!(dst_type.contains("String"), "{dst_type}");
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("Producer1#0.out"), "{msg}");
    assert!(msg.contains("ConsumerStr#1.text_in"), "{msg}");
    assert!(msg.contains("u32") && msg.contains("String"), "{msg}");
}

#[test]
fn linking_unknown_port_lists_alternatives() {
    let mut map = RaftMap::new();
    let p = map.add(Producer1);
    let c = map.add(Consumer1);
    let err = map.link(p, "output", c, "in").unwrap_err();
    match &err {
        LinkError::NoSuchPort {
            kernel,
            port,
            available,
        } => {
            assert_eq!(kernel, "Producer1#0");
            assert_eq!(port, "output");
            assert_eq!(available, &["out".to_string()]);
        }
        other => panic!("expected NoSuchPort, got {other:?}"),
    }
}

#[test]
fn self_loop_is_rejected_at_link_time() {
    let mut map = RaftMap::new();
    struct Loopy;
    impl Kernel for Loopy {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u32>("in").output::<u32>("out")
        }
        fn run(&mut self, _ctx: &Context) -> KStatus {
            KStatus::Stop
        }
    }
    let k = map.add(Loopy);
    assert!(matches!(
        map.link(k, "out", k, "in"),
        Err(LinkError::SelfLoop(name)) if name == "Loopy#0"
    ));
}
