//! Property tests tying the RC0007/RC0008 capacity solver to the discrete
//! event simulator in `raft-model`: the static analysis must never promise
//! more than the simulated queue delivers.

use proptest::prelude::*;
use raft_model::des::{simulate, single_station, ServiceDist};
use raft_model::queues::min_capacity_for_blocking;
use raftlib::prelude::*;

/// Mirrors `CheckConfig::capacity_blocking_warn`'s default.
const THRESHOLD: f64 = 0.05;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Solver soundness against the DES: when `min_capacity_for_blocking`
    /// says capacity `k` keeps steady-state blocking under the threshold,
    /// simulating the M/M/1/k queue agrees within simulation noise.
    #[test]
    fn solver_capacity_is_sound_against_des(
        lambda in 1.0f64..40.0,
        ratio in 0.15f64..0.85,
        seed in 0u64..1_000,
    ) {
        let mu = lambda / ratio; // utilization = ratio < 1
        let k = min_capacity_for_blocking(lambda, mu, THRESHOLD)
            .expect("solver must find a capacity for utilization < 1");
        let net = single_station(lambda, ServiceDist::Exp(mu), 1, k as usize);
        let sim = simulate(&net, 4_000.0 / lambda, seed);
        prop_assert!(
            sim.blocking_probability < THRESHOLD + 0.08,
            "solver said capacity {} keeps blocking under {}, DES measured {}",
            k, THRESHOLD, sim.blocking_probability
        );
    }

    /// When the solver declines (λ ≥ μ, no finite capacity suffices) the
    /// overload is real: the DES still drops arrivals at a roomy buffer.
    #[test]
    fn solver_refusal_means_real_overload(
        mu in 1.0f64..20.0,
        over in 1.1f64..3.0,
        seed in 0u64..1_000,
    ) {
        let lambda = mu * over;
        prop_assert_eq!(min_capacity_for_blocking(lambda, mu, THRESHOLD), None);
        let net = single_station(lambda, ServiceDist::Exp(mu), 1, 16);
        let sim = simulate(&net, 4_000.0 / lambda, seed);
        prop_assert!(
            sim.blocking_probability > 0.01,
            "overloaded stream (x{} over capacity) showed no blocking: {}",
            over, sim.blocking_probability
        );
    }
}

struct Stage;
impl Kernel for Stage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<u32>("in")
            .input::<u32>("fb")
            .output::<u32>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct FbStage;
impl Kernel for FbStage {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<u32>("in")
            .output::<u32>("out")
            .output::<u32>("fb")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Src;
impl Kernel for Src {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<u32>("out")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

struct Sink;
impl Kernel for Sink {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u32>("in")
    }
    fn run(&mut self, _ctx: &Context) -> KStatus {
        KStatus::Stop
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The certify-or-counterexample contract, end to end: RC0008 never
    /// certifies a feedback cycle whose witness stream the DES can wedge.
    /// A bounded-FIFO cycle deadlocks only if every cycle queue stays full;
    /// the certificate names a witness stream that provably keeps space, so
    /// simulating that stream at its configured capacity must show blocking
    /// below the certification threshold (plus simulation noise).
    #[test]
    fn rc0008_never_certifies_a_cycle_the_des_can_wedge(
        lambda in 2.0f64..20.0,
        ratio in 0.10f64..0.90,
        cap_pow in 0u32..6,
        seed in 0u64..500,
    ) {
        let mu = lambda / ratio;
        let cap = 1usize << cap_pow;
        let mut m = RaftMap::new();
        let src = m.add(Src);
        let a = m.add(Stage);
        let b = m.add(FbStage);
        let sink = m.add(Sink);
        m.link(src, "out", a, "in").unwrap();
        m.link_with(a, "out", b, "in", FifoConfig::fixed(cap)).unwrap();
        m.link(b, "out", sink, "in").unwrap();
        m.link_with(b, "fb", a, "fb", FifoConfig::fixed(cap)).unwrap();
        m.declare_service_rate(a, lambda);
        m.declare_service_rate(b, mu);

        let diags = m.check();
        let rc8 = diags.iter().find(|d| d.code == "RC0008")
            .expect("cycle with declared rates must get an RC0008 verdict");
        if rc8.severity == Severity::Info {
            // Certified: the witness is the a -> b stream (the only cycle
            // stream with lambda < mu). Simulate it at the configured
            // capacity and demand the promised slack.
            let net = single_station(lambda, ServiceDist::Exp(mu), 1, cap);
            let sim = simulate(&net, 4_000.0 / lambda, seed);
            prop_assert!(
                sim.blocking_probability < THRESHOLD + 0.10,
                "RC0008 certified capacity {} for rates {} -> {}, but the \
                 DES wedges the witness stream {} of the time",
                cap, lambda, mu, sim.blocking_probability
            );
        } else {
            // Refuted: the finding must carry the concrete counterexample
            // and (lambda < mu here) a minimal repair in the help line.
            prop_assert!(rc8.message.contains("counterexample token-flow"));
            prop_assert!(
                rc8.help.as_deref().unwrap_or_default().contains("FifoConfig::fixed"),
                "feasible rates must yield a minimal capacity repair: {:?}",
                rc8.help
            );
        }
    }
}
