//! Exactly-once recovery integration tests: the journaled-link contract
//! under mid-`run()` panics, the drain/quiesce ladder driven by a
//! [`StopHandle`], and overload-degradation admission policies.
//!
//! The load-bearing distinction from `supervision.rs`: the faults here
//! fire *after* the kernel has popped an element — the element is in
//! flight when the panic unwinds. Without a journal that element is gone
//! (the historical lossy-restart contract, pinned by
//! `unjournaled_restart_drops_in_flight`); with one, the scheduler rewinds
//! the transaction, the link replays it, and the output is byte-identical
//! to a fault-free run on every scheduler.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use raftlib::prelude::*;

const N: u64 = 2_000;

/// A map stage that panics exactly once per value in `panic_at`, *after*
/// popping the element — the in-flight-loss window. The fired set is
/// shared across restarts (the closure is `Clone`), so the replayed
/// element passes through on redelivery: deterministic faults, value- not
/// time-based, identical under every scheduler.
fn panic_once_map(panic_at: &[u64]) -> impl Kernel {
    let panic_at: HashSet<u64> = panic_at.iter().copied().collect();
    let fired = Arc::new(Mutex::new(HashSet::new()));
    lambda_map(move |v: u64| {
        if panic_at.contains(&v) && fired.lock().unwrap().insert(v) {
            panic!("injected in-flight fault at {v}");
        }
        v * 3
    })
}

fn journaled() -> FifoConfig {
    FifoConfig {
        journal: Some(JournalConfig::default()),
        ..FifoConfig::default()
    }
}

fn all_schedulers() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("thread-per-kernel", SchedulerKind::ThreadPerKernel),
        ("pool", SchedulerKind::Pool { workers: 2 }),
        (
            "stealing",
            SchedulerKind::Stealing {
                workers: 2,
                pin: false,
            },
        ),
    ]
}

fn for_each_scheduler(body: impl Fn(SchedulerKind)) {
    for (label, sched) in all_schedulers() {
        eprintln!("  → scheduler: {label}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(sched)));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("[scheduler = {label}] {msg}");
        }
    }
}

/// Build src → panicky map → sink with the given link config, run it under
/// `sched` with a Restart policy, and return (output, report).
fn run_faulty_pipeline(
    sched: SchedulerKind,
    fifo: Option<FifoConfig>,
    panic_at: &[u64],
) -> (Vec<u64>, ExeReport) {
    let mut map = RaftMap::new();
    map.config_mut().scheduler = sched;
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        let v = i;
        i += 1;
        (v < N).then_some(v)
    }));
    let flaky = map.add(panic_once_map(panic_at));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = seen.clone();
    let dst = map.add(lambda_sink(move |v: u64| sink_seen.lock().unwrap().push(v)));
    match fifo {
        Some(cfg) => {
            map.link_with(src, "0", flaky, "0", cfg).unwrap();
            map.link_with(flaky, "0", dst, "0", cfg).unwrap();
        }
        None => {
            map.link(src, "0", flaky, "0").unwrap();
            map.link(flaky, "0", dst, "0").unwrap();
        }
    }
    map.supervise(flaky, SupervisorPolicy::restart(panic_at.len() as u32 + 2));

    let report = map.exe().expect("restart policy absorbs injected panics");
    let got = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
    (got, report)
}

fn expected_full() -> Vec<u64> {
    (0..N).map(|v| v * 3).collect()
}

/// The tentpole acceptance check: with journaled links, a Restart after a
/// mid-run panic replays the in-flight element and the output is
/// byte-identical to a fault-free run — first element, middle, and final
/// element all covered, on every scheduler.
#[test]
fn journaled_restart_is_byte_identical() {
    let panic_at = [0, 97, 512, 1024, N - 1];
    for_each_scheduler(|sched| {
        let (got, report) = run_faulty_pipeline(sched, Some(journaled()), &panic_at);
        assert_eq!(
            got,
            expected_full(),
            "journaled restart lost or reordered data"
        );
        assert_eq!(
            report.total_rewinds(),
            panic_at.len() as u64,
            "each injected panic is one journal rewind"
        );
        assert!(
            report.total_replayed() >= panic_at.len() as u64,
            "every rewound element must be redelivered (replayed {} < {})",
            report.total_replayed(),
            panic_at.len()
        );
        let flaky = report.kernel("lambda-map").expect("map kernel in report");
        assert!(flaky.commits > 0, "successful runs must commit");
        assert_eq!(flaky.rewinds, panic_at.len() as u64);
    });
}

/// A *partially* journaled kernel (journaled input, plain output) must
/// fall back to one-run transactions: its earlier runs' outputs are
/// already published, so a batched rewind would replay their inputs and
/// duplicate them downstream. Pins the commit-interval clamp in the
/// runtime wiring — the panic fires after the pop but before the output
/// push, so with per-run commits the output stays byte-identical.
#[test]
fn partially_journaled_kernel_commits_per_run() {
    let panic_at = [3, 250, 1999];
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            let v = i;
            i += 1;
            (v < N).then_some(v)
        }));
        let flaky = map.add(panic_once_map(&panic_at));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let dst = map.add(lambda_sink(move |v: u64| sink_seen.lock().unwrap().push(v)));
        map.link_with(src, "0", flaky, "0", journaled()).unwrap();
        map.link(flaky, "0", dst, "0").unwrap(); // output NOT journaled
        map.supervise(flaky, SupervisorPolicy::restart(panic_at.len() as u32 + 2));

        let report = map.exe().expect("restart absorbs injected panics");
        let got = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        assert_eq!(
            got,
            expected_full(),
            "mixed journaling duplicated or lost elements"
        );
        assert_eq!(report.total_rewinds(), panic_at.len() as u64);
    });
}

/// The historical contract the journal fixes, pinned so the difference
/// stays observable: without a journal the popped element unwinds with the
/// panic and is simply gone — the output is exactly the fault-free stream
/// minus the panic values (no duplicates, no reordering, just loss).
#[test]
fn unjournaled_restart_drops_in_flight() {
    let panic_at = [97, 512, 1024];
    for_each_scheduler(|sched| {
        let (got, report) = run_faulty_pipeline(sched, None, &panic_at);
        let expected: Vec<u64> = (0..N)
            .filter(|v| !panic_at.contains(v))
            .map(|v| v * 3)
            .collect();
        assert_eq!(
            got, expected,
            "unjournaled restart should lose exactly the in-flight elements"
        );
        assert_eq!(report.total_rewinds(), 0, "no journal, no rewinds");
        assert_eq!(report.total_replayed(), 0);
    });
}

/// A [`StopHandle::drain`] on a live graph with an infinite source: the
/// source winds down at ladder level 1, in-flight data flushes, `exe()`
/// returns cleanly, and the sink saw an uninterrupted prefix of the
/// stream — drain is lossless for everything already produced.
#[test]
fn stop_handle_drains_live_graph_losslessly() {
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            Some(i) // never ends on its own
        }));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let dst = map.add(lambda_sink(move |v: u64| sink_seen.lock().unwrap().push(v)));
        map.link(src, "0", dst, "0").unwrap();

        let handle = map.stop_handle();
        let controller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            handle.drain();
        });
        let report = map.exe().expect("drain is a clean shutdown, not an error");
        controller.join().unwrap();

        assert!(
            report
                .drain_events
                .iter()
                .any(|ev| ev.level == 1 && ev.reason == DrainReason::Caller),
            "missing caller-requested level-1 drain event: {:?}",
            report.drain_events
        );
        let got = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        assert!(
            !got.is_empty(),
            "graph should have made progress before the drain"
        );
        let prefix: Vec<u64> = (1..=got.len() as u64).collect();
        assert_eq!(got, prefix, "drain must flush an uninterrupted prefix");
    });
}

/// A [`StopHandle::quiesce`] unsticks a wedged graph: the producer is
/// blocked on a full fixed-size ring (the consumer sleeps per element), so
/// a level-1 drain alone would strand it — level 2 fails the blocked push
/// fast and `exe()` still returns in bounded time.
#[test]
fn stop_handle_quiesce_unsticks_blocked_producer() {
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            Some(i)
        }));
        let dst = map.add(lambda_sink(move |_v: u64| {
            std::thread::sleep(Duration::from_millis(2));
        }));
        map.link_with(src, "0", dst, "0", FifoConfig::fixed(8))
            .unwrap();

        let handle = map.stop_handle();
        let controller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            handle.quiesce();
        });
        let start = std::time::Instant::now();
        let report = map.exe().expect("quiesce is a clean shutdown");
        controller.join().unwrap();

        assert!(
            report
                .drain_events
                .iter()
                .any(|ev| ev.level == 2 && ev.reason == DrainReason::Caller),
            "missing caller-requested level-2 quiesce event: {:?}",
            report.drain_events
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "quiesce must terminate a blocked producer promptly"
        );
    });
}

/// `AdmissionPolicy::Shed` on an overloaded link: the fast producer drops
/// instead of blocking, the drops are counted in the report, and what does
/// arrive is an in-order subsequence (shedding never reorders or
/// duplicates).
#[test]
fn shed_admission_degrades_and_reports() {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        let v = i;
        i += 1;
        (v < 5_000).then_some(v)
    }));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = seen.clone();
    let dst = map.add(lambda_sink(move |v: u64| {
        // Slow consumer: ~1 µs of spinning per element keeps the ring full.
        let t = std::time::Instant::now();
        while t.elapsed() < Duration::from_micros(20) {
            std::hint::spin_loop();
        }
        sink_seen.lock().unwrap().push(v);
    }));
    let cfg = FifoConfig {
        admission: AdmissionPolicy::Shed,
        ..FifoConfig::fixed(8)
    };
    map.link_with(src, "0", dst, "0", cfg).unwrap();

    let report = map.exe().expect("shedding is degradation, not failure");
    let got = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();

    assert!(report.total_shed() > 0, "overloaded link never shed");
    assert_eq!(
        got.len() as u64 + report.total_shed(),
        5_000,
        "every element is either delivered or counted as shed"
    );
    assert!(
        got.windows(2).all(|w| w[0] < w[1]),
        "shed output must stay strictly increasing (no reorder, no dup)"
    );
}

/// `BlockTimeout` falls back to shedding only under sustained overload: a
/// generous timeout on a briefly-full ring behaves like `Block` (lossless).
#[test]
fn block_timeout_is_lossless_when_consumer_keeps_up() {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        let v = i;
        i += 1;
        (v < 2_000).then_some(v)
    }));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = seen.clone();
    let dst = map.add(lambda_sink(move |v: u64| sink_seen.lock().unwrap().push(v)));
    let cfg = FifoConfig {
        admission: AdmissionPolicy::BlockTimeout(Duration::from_secs(5)),
        ..FifoConfig::fixed(16)
    };
    map.link_with(src, "0", dst, "0", cfg).unwrap();

    let report = map.exe().expect("clean run");
    let got = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
    assert_eq!(report.total_shed(), 0, "healthy consumer, nothing shed");
    assert_eq!(got, (0..2_000).collect::<Vec<u64>>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite property: for ANY set of injected in-flight panic values
    /// and any scheduler, a journaled pipeline under Restart produces
    /// output byte-identical to the fault-free run.
    #[test]
    fn journaled_output_matches_fault_free(
        panic_at in proptest::collection::vec(0..500u64, 0..6),
        sched_idx in 0..3usize,
    ) {
        // Dedupe: each distinct value fires at most one injected panic.
        let panic_at: Vec<u64> = panic_at
            .into_iter()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        let sched = all_schedulers()[sched_idx].1;

        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            let v = i;
            i += 1;
            (v < 500).then_some(v)
        }));
        let flaky = map.add(panic_once_map(&panic_at));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let dst = map.add(lambda_sink(move |v: u64| sink_seen.lock().unwrap().push(v)));
        map.link_with(src, "0", flaky, "0", journaled()).unwrap();
        map.link_with(flaky, "0", dst, "0", journaled()).unwrap();
        map.supervise(flaky, SupervisorPolicy::restart(panic_at.len() as u32 + 1));

        let report = map.exe().expect("restart absorbs injected panics");
        let got = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        prop_assert_eq!(got, (0..500u64).map(|v| v * 3).collect::<Vec<u64>>());
        prop_assert_eq!(report.total_rewinds(), panic_at.len() as u64);
    }
}
