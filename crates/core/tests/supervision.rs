//! Integration tests for supervised execution: restart/skip/replace
//! policies, graceful degradation of `exe()`, panic-path EoS propagation,
//! deterministic multi-panic reporting, and the deadline/stall watchdogs.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use raftlib::prelude::*;

/// Forwards `u64`s from "in" to "out", panicking (before touching any
/// port) while the shared counter is positive. Restarted/replaced
/// instances share the counter, so a budget of N panics means exactly N
/// faults across all incarnations.
struct FlakyForward {
    remaining_panics: Arc<AtomicU32>,
}

impl FlakyForward {
    fn new(panics: u32) -> Self {
        FlakyForward {
            remaining_panics: Arc::new(AtomicU32::new(panics)),
        }
    }
}

impl Kernel for FlakyForward {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u64>("in").output::<u64>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        if self.remaining_panics.load(Ordering::SeqCst) > 0 {
            self.remaining_panics.fetch_sub(1, Ordering::SeqCst);
            panic!("injected fault");
        }
        let mut input = ctx.input::<u64>("in");
        match input.pop_signal() {
            Ok((v, sig)) => {
                drop(input);
                let mut out = ctx.output::<u64>("out");
                if out.push_signal(v, sig).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => KStatus::Stop,
        }
    }

    fn name(&self) -> String {
        "flaky-forward".to_string()
    }

    fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
        Some(Box::new(FlakyForward {
            remaining_panics: self.remaining_panics.clone(),
        }))
    }
}

/// A source that panics on its very first `run()`, before pushing a single
/// element — the zero-iteration case of the drain loop.
struct PanicImmediately {
    label: String,
}

impl Kernel for PanicImmediately {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<u64>("out")
    }

    fn run(&mut self, _ctx: &Context) -> KStatus {
        panic!("boom before first push");
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

fn counting_sink() -> (impl Kernel, Arc<Mutex<Vec<u64>>>) {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = seen.clone();
    let sink = lambda_sink(move |v: u64| {
        sink_seen.lock().unwrap().push(v);
    });
    (sink, seen)
}

/// Every scheduler the supervision machinery must behave identically
/// under. Policy handling lives in the shared `step()` path, so a
/// regression in any scheduler's panic plumbing shows up here.
fn all_schedulers() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("thread-per-kernel", SchedulerKind::ThreadPerKernel),
        ("pool", SchedulerKind::Pool { workers: 2 }),
        (
            "stealing",
            SchedulerKind::Stealing {
                workers: 2,
                pin: false,
            },
        ),
    ]
}

/// Run `body` once per scheduler kind, labelling any failure with the
/// scheduler that produced it.
fn for_each_scheduler(body: impl Fn(SchedulerKind)) {
    for (label, sched) in all_schedulers() {
        eprintln!("  → scheduler: {label}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(sched)));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("[scheduler = {label}] {msg}");
        }
    }
}

/// Look a kernel up by base name (map entries are suffixed `#index`).
fn outcome_of(report: &ExeReport, name: &str) -> KernelOutcome {
    report
        .kernels
        .iter()
        .find(|k| k.name.split('#').next() == Some(name))
        .unwrap_or_else(|| panic!("kernel {name:?} missing from report"))
        .outcome
}

/// Strip the `#index` suffixes off a panic report for stable comparison.
fn base_names(kernels: &[String]) -> Vec<&str> {
    kernels
        .iter()
        .map(|k| k.split('#').next().unwrap())
        .collect()
}

/// Restart policy: two injected panics are absorbed, the kernel is rebuilt
/// on its live ports, and every element still flows end to end — under
/// every scheduler.
#[test]
fn restart_policy_recovers_and_loses_nothing() {
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            (i <= 500).then_some(i)
        }));
        let flaky = map.add(FlakyForward::new(2));
        let (sink, seen) = counting_sink();
        let dst = map.add(sink);
        map.link(src, "0", flaky, "in").unwrap();
        map.link(flaky, "out", dst, "0").unwrap();
        map.supervise(flaky, SupervisorPolicy::restart(5));

        let report = map.exe().expect("restart policy absorbs the panics");
        assert_eq!(
            outcome_of(&report, "flaky-forward"),
            KernelOutcome::Restarted(2)
        );
        assert_eq!(*seen.lock().unwrap(), (1..=500).collect::<Vec<u64>>());
    });
}

/// Skip policy: the panicking stage is dropped, EoS propagates, and the
/// run is reported per-kernel instead of failing wholesale.
#[test]
fn skip_policy_drains_pipeline() {
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            (i <= 100).then_some(i)
        }));
        let flaky = map.add(FlakyForward::new(u32::MAX));
        let (sink, seen) = counting_sink();
        let dst = map.add(sink);
        map.link(src, "0", flaky, "in").unwrap();
        map.link(flaky, "out", dst, "0").unwrap();
        map.supervise(flaky, SupervisorPolicy::Skip);

        let report = map.exe().expect("skip policy keeps exe() Ok");
        assert_eq!(outcome_of(&report, "flaky-forward"), KernelOutcome::Skipped);
        assert!(seen.lock().unwrap().is_empty());
    });
}

/// Replace policy: the factory's fresh instance takes over on the same
/// streams.
#[test]
fn replace_policy_installs_factory_kernel() {
    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let mut i = 0u64;
        let src = map.add(lambda_source(move || {
            i += 1;
            (i <= 300).then_some(i)
        }));
        // The original faults once; every replacement is clean.
        let flaky = map.add(FlakyForward::new(1));
        let (sink, seen) = counting_sink();
        let dst = map.add(sink);
        map.link(src, "0", flaky, "in").unwrap();
        map.link(flaky, "out", dst, "0").unwrap();
        map.supervise(
            flaky,
            SupervisorPolicy::replace(3, || Box::new(FlakyForward::new(0))),
        );

        let report = map.exe().expect("replace policy absorbs the panic");
        assert_eq!(
            outcome_of(&report, "flaky-forward"),
            KernelOutcome::Restarted(1)
        );
        assert_eq!(*seen.lock().unwrap(), (1..=300).collect::<Vec<u64>>());
    });
}

/// An exhausted restart budget degrades to a skipped stage with an
/// `Aborted` outcome — but the run itself still completes.
#[test]
fn exhausted_restart_budget_degrades_gracefully() {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= 50).then_some(i)
    }));
    let flaky = map.add(FlakyForward::new(u32::MAX));
    let (sink, seen) = counting_sink();
    let dst = map.add(sink);
    map.link(src, "0", flaky, "in").unwrap();
    map.link(flaky, "out", dst, "0").unwrap();
    map.supervise(flaky, SupervisorPolicy::restart(2));

    let report = map.exe().expect("exhaustion degrades, not aborts the run");
    assert_eq!(outcome_of(&report, "flaky-forward"), KernelOutcome::Aborted);
    assert!(seen.lock().unwrap().is_empty());
}

/// Default Abort policy: unchanged fail-fast behavior.
#[test]
fn abort_policy_fails_exe() {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= 50).then_some(i)
    }));
    let flaky = map.add(FlakyForward::new(u32::MAX));
    let (sink, _seen) = counting_sink();
    let dst = map.add(sink);
    map.link(src, "0", flaky, "in").unwrap();
    map.link(flaky, "out", dst, "0").unwrap();

    match map.exe() {
        Err(ExeError::KernelPanicked { kernels }) => {
            assert_eq!(base_names(&kernels), vec!["flaky-forward"]);
        }
        other => panic!("expected KernelPanicked, got {other:?}"),
    }
}

/// Regression (zero-iteration drain): a kernel that panics before its
/// first push must still close its output streams, so downstream sees EoS
/// and `exe()` returns instead of hanging.
#[test]
fn panic_before_first_push_propagates_eos() {
    let mut map = RaftMap::new();
    let src = map.add(PanicImmediately {
        label: "instant-boom".to_string(),
    });
    let (sink, seen) = counting_sink();
    let dst = map.add(sink);
    map.link(src, "out", dst, "0").unwrap();
    map.supervise(src, SupervisorPolicy::Skip);

    let report = map.exe().expect("skip turns the panic into EoS");
    assert_eq!(outcome_of(&report, "instant-boom"), KernelOutcome::Skipped);
    assert_eq!(outcome_of(&report, "lambda-sink"), KernelOutcome::Completed);
    assert!(seen.lock().unwrap().is_empty());
}

/// Same zero-iteration case under the default Abort policy: the error
/// surfaces and nothing hangs.
#[test]
fn panic_before_first_push_aborts_cleanly() {
    let mut map = RaftMap::new();
    let src = map.add(PanicImmediately {
        label: "instant-boom".to_string(),
    });
    let (sink, _seen) = counting_sink();
    let dst = map.add(sink);
    map.link(src, "out", dst, "0").unwrap();

    match map.exe() {
        Err(ExeError::KernelPanicked { kernels }) => {
            assert_eq!(base_names(&kernels), vec!["instant-boom"]);
        }
        other => panic!("expected KernelPanicked, got {other:?}"),
    }
}

/// Two kernels panicking concurrently must be reported deterministically:
/// sorted by name, independent of which thread died first.
#[test]
fn concurrent_panics_report_deterministically() {
    for _ in 0..30 {
        let mut map = RaftMap::new();
        // Two disconnected panicking pipelines; thread interleaving decides
        // which dies first, the report must not care.
        let a = map.add(PanicImmediately {
            label: "aa-boom".to_string(),
        });
        let (sink_a, _) = counting_sink();
        let da = map.add(sink_a);
        map.link(a, "out", da, "0").unwrap();

        let z = map.add(PanicImmediately {
            label: "zz-boom".to_string(),
        });
        let (sink_z, _) = counting_sink();
        let dz = map.add(sink_z);
        map.link(z, "out", dz, "0").unwrap();

        match map.exe() {
            Err(ExeError::KernelPanicked { kernels }) => {
                assert_eq!(
                    base_names(&kernels),
                    vec!["aa-boom", "zz-boom"],
                    "panic report must be sorted and complete"
                );
            }
            other => panic!("expected KernelPanicked, got {other:?}"),
        }
    }
}

/// A kernel stuck inside one `run()` trips the deadline watchdog, which
/// raises the cooperative stop flag — an otherwise-infinite pipeline ends.
#[test]
fn run_budget_watchdog_stops_stuck_pipeline() {
    struct SleepyOnce {
        slept: bool,
    }
    impl Kernel for SleepyOnce {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            if !self.slept {
                self.slept = true;
                std::thread::sleep(Duration::from_millis(250));
            }
            let mut input = ctx.input::<u64>("in");
            match input.pop_signal() {
                Ok(_) => KStatus::Proceed,
                Err(_) => KStatus::Stop,
            }
        }
        fn name(&self) -> String {
            "sleepy-sink".to_string()
        }
    }

    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        // Infinite trickle source: only the watchdog can end this run.
        let src = map.add(lambda_source(move || {
            std::thread::sleep(Duration::from_micros(500));
            Some(1u64)
        }));
        let dst = map.add(SleepyOnce { slept: false });
        map.link(src, "0", dst, "in").unwrap();
        map.config_mut().monitor =
            MonitorConfig::default().with_run_budget(Duration::from_millis(40));

        let report = map.exe().expect("watchdog stop is a graceful end");
        let fired = report.watchdog_events.iter().any(
            |ev| matches!(&ev.kind, WatchdogKind::RunBudget { kernel } if kernel.starts_with("sleepy-sink")),
        );
        assert!(
            fired,
            "expected a RunBudget firing for sleepy-sink, got {:?}",
            report.watchdog_events
        );
    });
}

/// Streams open but no element moving trips the stall watchdog.
#[test]
fn stall_watchdog_ends_frozen_pipeline() {
    struct Holder;
    impl Kernel for Holder {
        fn ports(&self) -> PortSpec {
            PortSpec::new().output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            // Keeps its output open but never produces; without the stall
            // watchdog this pipeline runs forever moving nothing.
            if ctx.stop_requested() {
                return KStatus::Stop;
            }
            std::thread::sleep(Duration::from_millis(1));
            KStatus::Proceed
        }
        fn name(&self) -> String {
            "holder".to_string()
        }
    }

    for_each_scheduler(|sched| {
        let mut map = RaftMap::new();
        map.config_mut().scheduler = sched;
        let src = map.add(Holder);
        let (sink, seen) = counting_sink();
        let dst = map.add(sink);
        map.link(src, "out", dst, "0").unwrap();
        map.config_mut().monitor =
            MonitorConfig::default().with_stall_timeout(Duration::from_millis(50));

        let report = map.exe().expect("stall stop is a graceful end");
        assert!(
            report
                .watchdog_events
                .iter()
                .any(|ev| matches!(ev.kind, WatchdogKind::StalledStreams)),
            "expected a StalledStreams firing, got {:?}",
            report.watchdog_events
        );
        assert!(seen.lock().unwrap().is_empty());
    });
}

/// The work-stealing scheduler runs a multi-stage pipeline to completion
/// with fewer workers than kernels, and surfaces per-worker telemetry in
/// the report.
#[test]
fn stealing_pipeline_completes_with_worker_telemetry() {
    let mut map = RaftMap::new();
    map.config_mut().scheduler = SchedulerKind::Stealing {
        workers: 2,
        pin: false,
    };
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= 10_000).then_some(i)
    }));
    let stage1 = map.add(lambda_map(|v: u64| v * 3));
    let stage2 = map.add(lambda_map(|v: u64| v + 1));
    let (sink, seen) = counting_sink();
    let dst = map.add(sink);
    map.link(src, "0", stage1, "0").unwrap();
    map.link(stage1, "0", stage2, "0").unwrap();
    map.link(stage2, "0", dst, "0").unwrap();

    let report = map.exe().unwrap();
    assert_eq!(
        *seen.lock().unwrap(),
        (1..=10_000).map(|v| v * 3 + 1).collect::<Vec<u64>>()
    );
    assert_eq!(report.workers.len(), 2, "one report per worker");
    let total_runs: u64 = report.workers.iter().map(|w| w.runs).sum();
    assert!(total_runs >= 4, "4 kernels need at least 4 task claims");
    for w in &report.workers {
        assert_eq!(w.pinned_core, None, "pin: false must not pin");
    }
    for k in &report.kernels {
        assert_eq!(k.outcome, KernelOutcome::Completed, "{} not done", k.name);
    }
}

/// The watchdog must not fire on a healthy fast pipeline.
#[test]
fn watchdog_quiet_on_healthy_pipeline() {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= 20_000).then_some(i)
    }));
    let (sink, seen) = counting_sink();
    let dst = map.add(sink);
    map.link(src, "0", dst, "0").unwrap();
    map.config_mut().monitor = MonitorConfig::default()
        .with_run_budget(Duration::from_secs(5))
        .with_stall_timeout(Duration::from_secs(5));

    let report = map.exe().unwrap();
    assert!(report.watchdog_events.is_empty());
    assert_eq!(seen.lock().unwrap().len(), 20_000);
}
