//! Link-allocator selection end to end: configured and env-overridden
//! allocators flow through `exe()` into the per-edge report, shm-backed
//! links carry real data, and mapper placements classify links.

use std::sync::Mutex;

use raft_buffer::shm::ShmSegment;
use raftlib::lambda::{lambda_sink, lambda_source};
use raftlib::mapper::{classify_link, map_kernels, CommGraph, Domain};
use raftlib::prelude::*;

/// `RAFT_LINK_ALLOC` is process-global; serialize the tests that touch it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn counting_pipeline(n: u64) -> (RaftMap, KernelId, KernelId) {
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(lambda_source(move || {
        i += 1;
        (i <= n).then_some(i)
    }));
    let sink = map.add(lambda_sink(|_v: u64| {}));
    (map, src, sink)
}

#[test]
fn default_links_report_heap() {
    let _g = ENV_LOCK.lock().unwrap();
    let (mut map, src, sink) = counting_pipeline(100);
    map.link(src, "0", sink, "0").unwrap();
    let report = map.exe().unwrap();
    assert_eq!(report.edges.len(), 1);
    assert_eq!(report.edges[0].alloc, LinkAlloc::Heap);
    assert_eq!(report.total_items(), 100);
}

#[test]
fn shm_configured_link_carries_data_and_reports_backing() {
    let _g = ENV_LOCK.lock().unwrap();
    let (mut map, src, sink) = counting_pipeline(1000);
    map.link_with(
        src,
        "0",
        sink,
        "0",
        FifoConfig::fixed(64).with_alloc(LinkAlloc::Shm),
    )
    .unwrap();
    let report = map.exe().unwrap();
    assert_eq!(report.total_items(), 1000);
    let expect = if ShmSegment::memfd_supported() {
        LinkAlloc::Shm
    } else {
        LinkAlloc::Heap // recorded fallback, not a silent lie
    };
    assert_eq!(report.edges[0].alloc, expect);
}

#[test]
fn env_override_flips_every_link() {
    let _g = ENV_LOCK.lock().unwrap();
    let (mut map, src, sink) = counting_pipeline(50);
    map.link(src, "0", sink, "0").unwrap();
    std::env::set_var("RAFT_LINK_ALLOC", "shm");
    let report = map.exe();
    std::env::remove_var("RAFT_LINK_ALLOC");
    let report = report.unwrap();
    let expect = if ShmSegment::memfd_supported() {
        LinkAlloc::Shm
    } else {
        LinkAlloc::Heap
    };
    assert_eq!(report.edges[0].alloc, expect);
    assert_eq!(report.total_items(), 50);
}

#[test]
fn rendered_report_shows_alloc_column() {
    let _g = ENV_LOCK.lock().unwrap();
    let (mut map, src, sink) = counting_pipeline(10);
    map.link(src, "0", sink, "0").unwrap();
    let report = map.exe().unwrap();
    let text = raftlib::report::render(&report);
    assert!(text.contains("alloc"), "{text}");
    assert!(text.contains("heap"), "{text}");
}

#[test]
fn apply_placement_classifies_links_from_mapping() {
    let _g = ENV_LOCK.lock().unwrap();
    // 2 kernels forced onto different processes of one host: the single
    // pipeline edge must classify shm and survive execution.
    let (mut map, src, sink) = counting_pipeline(200);
    map.link(src, "0", sink, "0").unwrap();
    let mut g = CommGraph::new(2);
    g.add_edge(0, 1, 1);
    let topo = Domain::multi_process_host("node0", 2, 1, 2_000, 100);
    let m = map_kernels(&g, &topo);
    assert_eq!(
        classify_link(&m.assignment[0], &m.assignment[1]),
        LinkAlloc::Shm,
        "{m:?}"
    );
    map.apply_placement(&m.assignment);
    let report = map.exe().unwrap();
    assert_eq!(report.total_items(), 200);
    let expect = if ShmSegment::memfd_supported() {
        LinkAlloc::Shm
    } else {
        LinkAlloc::Heap
    };
    assert_eq!(report.edges[0].alloc, expect);
}
