//! The "oar" node mesh.
//!
//! §4.1 of the paper: "A separate system called 'oar' is a mesh of network
//! clients that continually feed system information to each other. This
//! information is provided to RaftLib in order to continuously optimize and
//! monitor Raft kernels executing on multiple systems."
//!
//! Each [`OarNode`] listens on a TCP port and heartbeats its
//! [`NodeInfo`] (name, core count, a load proxy) to every known peer on a
//! fixed period. Received heartbeats update the local registry; peers going
//! quiet for a staleness window are marked dead. The registry is what a
//! distributed mapper ([`raftlib::mapper`]) consumes to build its latency
//! domain tree.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::frame::{Frame, FrameKind};
use crate::wire::Wire;

/// What every node knows about a peer.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// Node name (unique in the mesh).
    pub name: String,
    /// Address its mesh listener is bound to.
    pub addr: String,
    /// Core count the node advertises.
    pub cores: u32,
    /// Load proxy: kernels currently scheduled on the node.
    pub load: u32,
}

impl Wire for NodeInfo {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.addr.encode(buf);
        buf.put_u32_le(self.cores);
        buf.put_u32_le(self.load);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let name = String::decode(buf)?;
        let addr = String::decode(buf)?;
        let cores = u32::decode(buf)?;
        let load = u32::decode(buf)?;
        Some(NodeInfo {
            name,
            addr,
            cores,
            load,
        })
    }
}

struct PeerEntry {
    info: NodeInfo,
    last_seen: Instant,
}

/// A running mesh node: listener thread + heartbeat thread + registry.
pub struct OarNode {
    name: String,
    addr: SocketAddr,
    cores: u32,
    load: Arc<AtomicU64>,
    peers: Arc<Mutex<HashMap<String, PeerEntry>>>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    heartbeat: Duration,
}

impl OarNode {
    /// Start a node: bind `addr` (use port 0 for ephemeral), announce
    /// `cores`, heartbeat every `heartbeat`.
    pub fn start(
        name: impl Into<String>,
        addr: &str,
        cores: u32,
        heartbeat: Duration,
    ) -> std::io::Result<OarNode> {
        let name = name.into();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let peers: Arc<Mutex<HashMap<String, PeerEntry>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let load = Arc::new(AtomicU64::new(0));

        // Listener: accept heartbeat connections, read one frame each.
        let peers_l = peers.clone();
        let stop_l = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("oar-accept-{name}"))
            .spawn(move || {
                while !stop_l.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                            let mut reader = BufReader::new(stream);
                            while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
                                if frame.kind == FrameKind::Heartbeat {
                                    let mut payload = frame.payload;
                                    if let Some(info) = NodeInfo::decode(&mut payload) {
                                        peers_l.lock().insert(
                                            info.name.clone(),
                                            PeerEntry {
                                                info,
                                                last_seen: Instant::now(),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn oar accept thread");

        let mut node = OarNode {
            name,
            addr: local,
            cores,
            load,
            peers,
            stop,
            threads: vec![accept_thread],
            heartbeat,
        };
        node.start_heartbeat();
        Ok(node)
    }

    fn start_heartbeat(&mut self) {
        let stop = self.stop.clone();
        let peers = self.peers.clone();
        let me = NodeInfo {
            name: self.name.clone(),
            addr: self.addr.to_string(),
            cores: self.cores,
            load: 0,
        };
        let load = self.load.clone();
        let period = self.heartbeat;
        let t = std::thread::Builder::new()
            .name(format!("oar-hb-{}", self.name))
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let targets: Vec<String> =
                        peers.lock().values().map(|p| p.info.addr.clone()).collect();
                    let mut info = me.clone();
                    info.load = load.load(Ordering::Relaxed) as u32;
                    let mut buf = BytesMut::new();
                    info.encode(&mut buf);
                    let frame = Frame {
                        kind: FrameKind::Heartbeat,
                        payload: buf.freeze(),
                    };
                    for addr in targets {
                        if let Ok(stream) = TcpStream::connect(&addr) {
                            let mut w = BufWriter::new(stream);
                            let _ = frame.write_to(&mut w);
                            use std::io::Write;
                            let _ = w.flush();
                        }
                    }
                    std::thread::sleep(period);
                }
            })
            .expect("spawn oar heartbeat thread");
        self.threads.push(t);
    }

    /// Introduce a peer by address: we start heartbeating it; it learns us
    /// from our heartbeat and heartbeats back — after one round trip both
    /// registries contain both nodes.
    pub fn add_peer(&self, name: impl Into<String>, addr: impl Into<String>) {
        self.peers.lock().insert(
            name.into(),
            PeerEntry {
                info: NodeInfo {
                    name: String::new(), // filled by its first heartbeat
                    addr: addr.into(),
                    cores: 0,
                    load: 0,
                },
                last_seen: Instant::now(),
            },
        );
    }

    /// This node's mesh address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Advertise the current kernel load (picked up by the next heartbeat).
    pub fn set_load(&self, kernels: u32) {
        self.load.store(kernels as u64, Ordering::Relaxed);
    }

    /// Peers whose heartbeat arrived within `staleness`.
    pub fn live_peers(&self, staleness: Duration) -> Vec<NodeInfo> {
        let now = Instant::now();
        self.peers
            .lock()
            .values()
            .filter(|p| now.duration_since(p.last_seen) <= staleness && !p.info.name.is_empty())
            .map(|p| p.info.clone())
            .collect()
    }

    /// Wait until at least `n` live peers are known or `timeout` elapses;
    /// returns the live set.
    pub fn await_peers(&self, n: usize, timeout: Duration) -> Vec<NodeInfo> {
        let deadline = Instant::now() + timeout;
        loop {
            let live = self.live_peers(timeout);
            if live.len() >= n || Instant::now() >= deadline {
                return live;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Build a mapper topology from the current mesh view: this node plus
    /// every live peer becomes a symmetric host; hosts are joined by a
    /// network domain. Feed the result to [`raftlib::mapper::map_kernels`].
    pub fn cluster_topology(
        &self,
        staleness: Duration,
        core_latency_ns: u64,
        network_latency_ns: u64,
    ) -> raftlib::mapper::Domain {
        let mut hosts = vec![raftlib::mapper::Domain::symmetric_host(
            &self.name,
            self.cores as usize,
            core_latency_ns,
        )];
        for p in self.live_peers(staleness) {
            hosts.push(raftlib::mapper::Domain::symmetric_host(
                &p.name,
                p.cores.max(1) as usize,
                core_latency_ns,
            ));
        }
        raftlib::mapper::Domain::cluster(hosts, network_latency_ns)
    }
}

impl Drop for OarNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_info_wire_roundtrip() {
        let info = NodeInfo {
            name: "alpha".into(),
            addr: "127.0.0.1:1234".into(),
            cores: 16,
            load: 3,
        };
        let mut buf = BytesMut::new();
        info.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(NodeInfo::decode(&mut bytes).unwrap(), info);
    }

    #[test]
    fn two_nodes_discover_each_other() {
        let hb = Duration::from_millis(20);
        let a = OarNode::start("alpha", "127.0.0.1:0", 4, hb).unwrap();
        let b = OarNode::start("beta", "127.0.0.1:0", 8, hb).unwrap();
        // one-way introduction; the mesh closes the loop
        a.add_peer("beta?", b.addr().to_string());
        let peers_of_b = b.await_peers(1, Duration::from_secs(5));
        assert!(
            peers_of_b.iter().any(|p| p.name == "alpha"),
            "beta should learn alpha: {peers_of_b:?}"
        );
        let peers_of_a = a.await_peers(1, Duration::from_secs(5));
        assert!(
            peers_of_a.iter().any(|p| p.name == "beta" && p.cores == 8),
            "alpha should learn beta: {peers_of_a:?}"
        );
    }

    #[test]
    fn load_updates_propagate() {
        let hb = Duration::from_millis(20);
        let a = OarNode::start("a1", "127.0.0.1:0", 2, hb).unwrap();
        let b = OarNode::start("b1", "127.0.0.1:0", 2, hb).unwrap();
        a.add_peer("b1?", b.addr().to_string());
        a.set_load(7);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let peers = b.live_peers(Duration::from_secs(5));
            if peers.iter().any(|p| p.name == "a1" && p.load == 7) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "load never propagated: {peers:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn cluster_topology_from_mesh() {
        let hb = Duration::from_millis(20);
        let a = OarNode::start("hostA", "127.0.0.1:0", 4, hb).unwrap();
        let b = OarNode::start("hostB", "127.0.0.1:0", 4, hb).unwrap();
        a.add_peer("b?", b.addr().to_string());
        a.await_peers(1, Duration::from_secs(5));
        let topo = a.cluster_topology(Duration::from_secs(5), 100, 10_000);
        assert_eq!(topo.capacity(), 8);
    }
}
