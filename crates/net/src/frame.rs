//! Length-prefixed message framing.
//!
//! Every message on a TCP stream link is one frame:
//!
//! ```text
//! +---------+--------+----------------+
//! | len u32 | kind u8|  payload bytes |
//! +---------+--------+----------------+
//! ```
//!
//! `len` counts `kind + payload`. Data frames carry an encoded element and
//! the element's synchronous signal (so signal delivery stays synchronized
//! across the hop, §4.2); control frames carry mesh traffic.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use raft_buffer::Signal;

/// Frame discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// An element with `Signal::None`.
    Data = 0,
    /// An element plus an encoded synchronous signal (first 8 payload
    /// bytes).
    DataWithSignal = 1,
    /// Stream end: the sender closed its input.
    Eos = 2,
    /// Mesh: node hello/heartbeat carrying a `NodeInfo` payload.
    Heartbeat = 3,
    /// Mesh: request for the receiver's known-peers table.
    PeersRequest = 4,
    /// Mesh: peers table payload.
    Peers = 5,
    /// A compressed data frame: payload = inner-kind byte +
    /// `compress::compress_frame` output of the inner payload.
    Compressed = 6,
    /// Remote-execution job submission (wire-encoded kernel-name list).
    Job = 7,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Data,
            1 => FrameKind::DataWithSignal,
            2 => FrameKind::Eos,
            3 => FrameKind::Heartbeat,
            4 => FrameKind::PeersRequest,
            5 => FrameKind::Peers,
            6 => FrameKind::Compressed,
            7 => FrameKind::Job,
            _ => return None,
        })
    }
}

/// One framed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub kind: FrameKind,
    /// Raw payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// A data frame; encodes the signal only when present (one byte saved
    /// on the common path).
    pub fn data(payload: Bytes, signal: Signal) -> Frame {
        if signal == Signal::None {
            Frame {
                kind: FrameKind::Data,
                payload,
            }
        } else {
            let mut buf = BytesMut::with_capacity(8 + payload.len());
            buf.put_u64_le(signal.encode());
            buf.put_slice(&payload);
            Frame {
                kind: FrameKind::DataWithSignal,
                payload: buf.freeze(),
            }
        }
    }

    /// The end-of-stream frame.
    pub fn eos() -> Frame {
        Frame {
            kind: FrameKind::Eos,
            payload: Bytes::new(),
        }
    }

    /// Split a data frame into `(element payload, signal)`.
    pub fn into_data(self) -> Option<(Bytes, Signal)> {
        match self.kind {
            FrameKind::Data => Some((self.payload, Signal::None)),
            FrameKind::DataWithSignal => {
                let mut p = self.payload;
                if p.remaining() < 8 {
                    return None;
                }
                let sig = Signal::decode(p.get_u64_le())?;
                Some((p, sig))
            }
            _ => None,
        }
    }

    /// Write this frame to a (buffered) writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let len = (self.payload.len() + 1) as u32;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&[self.kind as u8])?;
        w.write_all(&self.payload)
    }

    /// Read one frame from a reader. `Ok(None)` on clean EOF at a frame
    /// boundary.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        match r.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zero-length frame",
            ));
        }
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
            ));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        let kind = FrameKind::from_u8(body[0]).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad frame kind {}", body[0]))
        })?;
        Ok(Some(Frame {
            kind,
            payload: Bytes::from(body).slice(1..),
        }))
    }
}

/// Upper bound on a single frame (64 MiB) — a corrupted length prefix must
/// not allocate unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::data(Bytes::from_static(b"hello"), Signal::None));
        roundtrip(Frame::data(Bytes::from_static(b"x"), Signal::EoS));
        roundtrip(Frame::data(Bytes::new(), Signal::User(42)));
        roundtrip(Frame::eos());
        roundtrip(Frame {
            kind: FrameKind::Heartbeat,
            payload: Bytes::from_static(b"node-info"),
        });
    }

    #[test]
    fn into_data_recovers_signal() {
        let f = Frame::data(Bytes::from_static(b"abc"), Signal::Flush);
        let (payload, sig) = f.into_data().unwrap();
        assert_eq!(&payload[..], b"abc");
        assert_eq!(sig, Signal::Flush);

        let f = Frame::data(Bytes::from_static(b"abc"), Signal::None);
        let (payload, sig) = f.into_data().unwrap();
        assert_eq!(&payload[..], b"abc");
        assert_eq!(sig, Signal::None);
    }

    #[test]
    fn eof_at_boundary_is_none() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(Frame::read_from(&mut empty).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_error() {
        let f = Frame::data(Bytes::from_static(b"hello world"), Signal::None);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            let mut b = BytesMut::new();
            b.put_u64_le(i);
            Frame::data(b.freeze(), Signal::None)
                .write_to(&mut buf)
                .unwrap();
        }
        Frame::eos().write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut n = 0;
        loop {
            let f = Frame::read_from(&mut cursor).unwrap().unwrap();
            if f.kind == FrameKind::Eos {
                break;
            }
            n += 1;
        }
        assert_eq!(n, 10);
    }
}
