//! Length-prefixed message framing.
//!
//! Every message on a TCP stream link is one frame:
//!
//! ```text
//! +---------+--------+----------------+
//! | len u32 | kind u8|  payload bytes |
//! +---------+--------+----------------+
//! ```
//!
//! `len` counts `kind + payload`. Data frames carry an encoded element and
//! the element's synchronous signal (so signal delivery stays synchronized
//! across the hop, §4.2); control frames carry mesh traffic.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use raft_buffer::Signal;

/// Frame discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// An element with `Signal::None`.
    Data = 0,
    /// An element plus an encoded synchronous signal (first 8 payload
    /// bytes).
    DataWithSignal = 1,
    /// Stream end: the sender closed its input.
    Eos = 2,
    /// Mesh: node hello/heartbeat carrying a `NodeInfo` payload.
    Heartbeat = 3,
    /// Mesh: request for the receiver's known-peers table.
    PeersRequest = 4,
    /// Mesh: peers table payload.
    Peers = 5,
    /// A compressed data frame: payload = inner-kind byte +
    /// `compress::compress_frame` output of the inner payload.
    Compressed = 6,
    /// Remote-execution job submission (wire-encoded kernel-name list).
    Job = 7,
    /// Resilient link: cumulative acknowledgement. Payload is the `u64 LE`
    /// sequence number the receiver expects next — every lower sequence
    /// has been received and pushed.
    Ack = 8,
    /// Resilient link: resume handshake, sent by the receiver immediately
    /// after every (re)accept. Payload is the next expected `u64 LE`
    /// sequence number; the sender replays from there.
    ResumeFrom = 9,
    /// Resilient link element with `Signal::None`: `seq u64 LE | element`.
    SeqData = 10,
    /// Resilient link element with a synchronous signal:
    /// `seq u64 LE | signal u64 LE | element`.
    SeqDataWithSignal = 11,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Data,
            1 => FrameKind::DataWithSignal,
            2 => FrameKind::Eos,
            3 => FrameKind::Heartbeat,
            4 => FrameKind::PeersRequest,
            5 => FrameKind::Peers,
            6 => FrameKind::Compressed,
            7 => FrameKind::Job,
            8 => FrameKind::Ack,
            9 => FrameKind::ResumeFrom,
            10 => FrameKind::SeqData,
            11 => FrameKind::SeqDataWithSignal,
            _ => return None,
        })
    }
}

/// One framed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub kind: FrameKind,
    /// Raw payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// A data frame; encodes the signal only when present (one byte saved
    /// on the common path).
    pub fn data(payload: Bytes, signal: Signal) -> Frame {
        if signal == Signal::None {
            Frame {
                kind: FrameKind::Data,
                payload,
            }
        } else {
            let mut buf = BytesMut::with_capacity(8 + payload.len());
            buf.put_u64_le(signal.encode());
            buf.put_slice(&payload);
            Frame {
                kind: FrameKind::DataWithSignal,
                payload: buf.freeze(),
            }
        }
    }

    /// The end-of-stream frame.
    pub fn eos() -> Frame {
        Frame {
            kind: FrameKind::Eos,
            payload: Bytes::new(),
        }
    }

    /// A sequence-numbered data frame for resilient links. The sequence
    /// number rides in front of the element so the receiver can
    /// deduplicate replayed frames after a reconnect.
    pub fn seq_data(seq: u64, payload: Bytes, signal: Signal) -> Frame {
        if signal == Signal::None {
            let mut buf = BytesMut::with_capacity(8 + payload.len());
            buf.put_u64_le(seq);
            buf.put_slice(&payload);
            Frame {
                kind: FrameKind::SeqData,
                payload: buf.freeze(),
            }
        } else {
            let mut buf = BytesMut::with_capacity(16 + payload.len());
            buf.put_u64_le(seq);
            buf.put_u64_le(signal.encode());
            buf.put_slice(&payload);
            Frame {
                kind: FrameKind::SeqDataWithSignal,
                payload: buf.freeze(),
            }
        }
    }

    /// A cumulative ack: every frame with sequence `< next_expected` has
    /// been received and pushed downstream.
    pub fn ack(next_expected: u64) -> Frame {
        Frame {
            kind: FrameKind::Ack,
            payload: seq_payload(next_expected),
        }
    }

    /// The resume handshake the receiver sends after every (re)accept.
    pub fn resume_from(next_expected: u64) -> Frame {
        Frame {
            kind: FrameKind::ResumeFrom,
            payload: seq_payload(next_expected),
        }
    }

    /// Split a seq-data frame into `(seq, element payload, signal)`.
    pub fn into_seq_data(self) -> Option<(u64, Bytes, Signal)> {
        match self.kind {
            FrameKind::SeqData => {
                let mut p = self.payload;
                if p.remaining() < 8 {
                    return None;
                }
                let seq = p.get_u64_le();
                Some((seq, p, Signal::None))
            }
            FrameKind::SeqDataWithSignal => {
                let mut p = self.payload;
                if p.remaining() < 16 {
                    return None;
                }
                let seq = p.get_u64_le();
                let sig = Signal::decode(p.get_u64_le())?;
                Some((seq, p, sig))
            }
            _ => None,
        }
    }

    /// The sequence number carried by an [`FrameKind::Ack`] or
    /// [`FrameKind::ResumeFrom`] control frame.
    pub fn control_seq(&self) -> Option<u64> {
        if !matches!(self.kind, FrameKind::Ack | FrameKind::ResumeFrom) {
            return None;
        }
        let mut p = self.payload.clone();
        if p.remaining() < 8 {
            return None;
        }
        Some(p.get_u64_le())
    }

    /// Split a data frame into `(element payload, signal)`.
    pub fn into_data(self) -> Option<(Bytes, Signal)> {
        match self.kind {
            FrameKind::Data => Some((self.payload, Signal::None)),
            FrameKind::DataWithSignal => {
                let mut p = self.payload;
                if p.remaining() < 8 {
                    return None;
                }
                let sig = Signal::decode(p.get_u64_le())?;
                Some((p, sig))
            }
            _ => None,
        }
    }

    /// Write this frame to a (buffered) writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        check_io_failpoint("net::frame::write", io::ErrorKind::BrokenPipe)?;
        let len = (self.payload.len() + 1) as u32;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&[self.kind as u8])?;
        w.write_all(&self.payload)
    }

    /// Read one frame from a reader. `Ok(None)` on clean EOF at a frame
    /// boundary.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        check_io_failpoint("net::frame::read", io::ErrorKind::ConnectionReset)?;
        let mut len_buf = [0u8; 4];
        match r.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zero-length frame",
            ));
        }
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
            ));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        let kind = FrameKind::from_u8(body[0]).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame kind {}", body[0]),
            )
        })?;
        Ok(Some(Frame {
            kind,
            payload: Bytes::from(body).slice(1..),
        }))
    }
}

/// Upper bound on a single frame (64 MiB) — a corrupted length prefix must
/// not allocate unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

fn seq_payload(seq: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(8);
    buf.put_u64_le(seq);
    buf.freeze()
}

/// Failpoint hook at the framing boundary: `ShortIo` surfaces as an I/O
/// error of `kind` (exercising the reconnect path), `Panic`/`Stall` act in
/// place. Compiles to nothing without `raft_failpoints`.
#[cfg(feature = "raft_failpoints")]
fn check_io_failpoint(site: &str, kind: io::ErrorKind) -> io::Result<()> {
    use raft_buffer::failpoints::{check, FailAction};
    match check(site) {
        Some(FailAction::ShortIo) => Err(io::Error::new(kind, format!("failpoint {site:?} fired"))),
        Some(FailAction::Panic) => panic!("failpoint {site:?} fired"),
        Some(FailAction::Stall(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        None => Ok(()),
    }
}

#[cfg(not(feature = "raft_failpoints"))]
#[inline(always)]
fn check_io_failpoint(_site: &str, _kind: io::ErrorKind) -> io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::data(Bytes::from_static(b"hello"), Signal::None));
        roundtrip(Frame::data(Bytes::from_static(b"x"), Signal::EoS));
        roundtrip(Frame::data(Bytes::new(), Signal::User(42)));
        roundtrip(Frame::eos());
        roundtrip(Frame {
            kind: FrameKind::Heartbeat,
            payload: Bytes::from_static(b"node-info"),
        });
    }

    #[test]
    fn into_data_recovers_signal() {
        let f = Frame::data(Bytes::from_static(b"abc"), Signal::Flush);
        let (payload, sig) = f.into_data().unwrap();
        assert_eq!(&payload[..], b"abc");
        assert_eq!(sig, Signal::Flush);

        let f = Frame::data(Bytes::from_static(b"abc"), Signal::None);
        let (payload, sig) = f.into_data().unwrap();
        assert_eq!(&payload[..], b"abc");
        assert_eq!(sig, Signal::None);
    }

    #[test]
    fn seq_frames_roundtrip() {
        roundtrip(Frame::seq_data(
            0,
            Bytes::from_static(b"first"),
            Signal::None,
        ));
        roundtrip(Frame::seq_data(u64::MAX, Bytes::new(), Signal::EoS));
        roundtrip(Frame::ack(17));
        roundtrip(Frame::resume_from(0));
    }

    #[test]
    fn into_seq_data_recovers_all_parts() {
        let (seq, payload, sig) = Frame::seq_data(42, Bytes::from_static(b"xyz"), Signal::User(9))
            .into_seq_data()
            .unwrap();
        assert_eq!(seq, 42);
        assert_eq!(&payload[..], b"xyz");
        assert_eq!(sig, Signal::User(9));

        let (seq, payload, sig) = Frame::seq_data(7, Bytes::from_static(b"p"), Signal::None)
            .into_seq_data()
            .unwrap();
        assert_eq!((seq, &payload[..], sig), (7, &b"p"[..], Signal::None));

        // non-seq frames refuse
        assert!(Frame::eos().into_seq_data().is_none());
        assert!(Frame::data(Bytes::from_static(b"d"), Signal::None)
            .into_seq_data()
            .is_none());
    }

    #[test]
    fn control_seq_only_on_control_frames() {
        assert_eq!(Frame::ack(9).control_seq(), Some(9));
        assert_eq!(Frame::resume_from(3).control_seq(), Some(3));
        assert_eq!(Frame::eos().control_seq(), None);
        assert_eq!(
            Frame::seq_data(1, Bytes::new(), Signal::None).control_seq(),
            None
        );
        // truncated control frame is rejected, not misread
        let bogus = Frame {
            kind: FrameKind::Ack,
            payload: Bytes::from_static(b"abc"),
        };
        assert_eq!(bogus.control_seq(), None);
    }

    #[test]
    fn eof_at_boundary_is_none() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(Frame::read_from(&mut empty).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_error() {
        let f = Frame::data(Bytes::from_static(b"hello world"), Signal::None);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            let mut b = BytesMut::new();
            b.put_u64_le(i);
            Frame::data(b.freeze(), Signal::None)
                .write_to(&mut buf)
                .unwrap();
        }
        Frame::eos().write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut n = 0;
        loop {
            let f = Frame::read_from(&mut cursor).unwrap().unwrap();
            if f.kind == FrameKind::Eos {
                break;
            }
            n += 1;
        }
        assert_eq!(n, 10);
    }
}
