//! TCP stream-link kernels.
//!
//! A stream between two kernels on different nodes is realized as a pair of
//! kernels: [`TcpOut`] consumes the local stream and writes frames to a
//! socket; [`TcpIn`] reads frames and produces the stream on the remote
//! map. To the application, both maps look purely local — the paper's
//! "no difference between a distributed and a non-distributed program".
//!
//! [`tcp_bridge`] builds a connected pair over an ephemeral localhost
//! listener — the common case for tests, examples, and single-machine
//! multi-process emulation.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use bytes::BytesMut;
use raftlib::prelude::*;

use crate::compress::{compress_frame, decompress_frame};
use crate::frame::{Frame, FrameKind};
use crate::wire::Wire;

/// Sink-side kernel: forwards its input stream over a TCP socket, ending
/// with an EoS frame.
pub struct TcpOut<T: Wire> {
    writer: BufWriter<TcpStream>,
    eos_sent: bool,
    compress: bool,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Wire> TcpOut<T> {
    /// Wrap an already-connected socket.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpOut {
            writer: BufWriter::new(stream),
            eos_sent: false,
            compress: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Connect to a listening [`TcpIn`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connect with per-attempt timeout and bounded retry/backoff from a
    /// [`NetConfig`](crate::resilient::NetConfig) — the robust flavour of
    /// [`connect`](TcpOut::connect) for flaky or slow-to-listen peers.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: &crate::resilient::NetConfig,
    ) -> io::Result<Self> {
        Self::from_stream(crate::resilient::connect_with_retry(addr, cfg)?)
    }

    /// Enable per-frame LZ compression (§4.2 future work). The receiving
    /// [`TcpIn`] detects compressed frames automatically.
    pub fn compressed(mut self) -> Self {
        self.compress = true;
        self
    }
}

impl<T: Wire> Kernel for TcpOut<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        match input.pop_signal() {
            Ok((v, sig)) => {
                drop(input);
                let mut buf = BytesMut::new();
                v.encode(&mut buf);
                let frame = Frame::data(buf.freeze(), sig);
                let frame = if self.compress {
                    let mut payload = BytesMut::with_capacity(frame.payload.len() + 1);
                    payload.extend_from_slice(&[frame.kind as u8]);
                    payload.extend_from_slice(&compress_frame(&frame.payload));
                    Frame {
                        kind: FrameKind::Compressed,
                        payload: payload.freeze(),
                    }
                } else {
                    frame
                };
                if frame.write_to(&mut self.writer).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Err(_) => {
                if !self.eos_sent {
                    let _ = Frame::eos().write_to(&mut self.writer);
                    let _ = self.writer.flush();
                    self.eos_sent = true;
                }
                KStatus::Stop
            }
        }
    }

    fn name(&self) -> String {
        "tcp-out".to_string()
    }
}

/// Source-side kernel: produces the stream read from a TCP socket.
pub struct TcpIn<T: Wire> {
    reader: BufReader<TcpStream>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Wire> TcpIn<T> {
    /// Wrap an already-connected socket.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        Ok(TcpIn {
            reader: BufReader::new(stream),
            _marker: std::marker::PhantomData,
        })
    }

    /// Wrap an existing buffered reader (the remote-job path, where the
    /// job frame was already consumed from it).
    pub(crate) fn from_parts(reader: BufReader<TcpStream>) -> Self {
        TcpIn {
            reader,
            _marker: std::marker::PhantomData,
        }
    }

    /// Bind `addr`, accept exactly one sender, and wrap it.
    pub fn listen(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream)
    }
}

impl<T: Wire> Kernel for TcpIn<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<T>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        match Frame::read_from(&mut self.reader) {
            Ok(Some(frame)) if frame.kind == FrameKind::Eos => KStatus::Stop,
            Ok(Some(frame)) => {
                // Transparently unwrap compressed frames.
                let frame = if frame.kind == FrameKind::Compressed {
                    let Some(&inner_kind) = frame.payload.first() else {
                        return KStatus::Stop;
                    };
                    let Some(inner) = decompress_frame(&frame.payload.slice(1..)) else {
                        return KStatus::Stop;
                    };
                    let Some(kind) = frame_kind_from_u8(inner_kind) else {
                        return KStatus::Stop;
                    };
                    Frame {
                        kind,
                        payload: inner,
                    }
                } else {
                    frame
                };
                let Some((mut payload, sig)) = frame.into_data() else {
                    return KStatus::Stop; // unexpected control frame
                };
                let Some(v) = T::decode(&mut payload) else {
                    return KStatus::Stop; // malformed element
                };
                let mut out = ctx.output::<T>("out");
                if out.push_signal(v, sig).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            Ok(None) | Err(_) => KStatus::Stop, // peer vanished
        }
    }

    fn name(&self) -> String {
        "tcp-in".to_string()
    }
}

fn frame_kind_from_u8(v: u8) -> Option<FrameKind> {
    Some(match v {
        0 => FrameKind::Data,
        1 => FrameKind::DataWithSignal,
        _ => return None, // only data kinds are ever compressed
    })
}

/// Build a connected `TcpOut`/`TcpIn` pair over an ephemeral localhost
/// port — everything needed to cut one logical stream across two maps.
///
/// Binds retry transient `AddrInUse` (ephemeral-port churn on busy test
/// machines), and the connect runs on the caller's thread so its error —
/// not a generic "thread panicked" — is what surfaces on failure.
pub fn tcp_bridge<T: Wire>() -> io::Result<(TcpOut<T>, TcpIn<T>)> {
    let listener = bind_ephemeral()?;
    let addr = listener.local_addr()?;
    let accept = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
    let out_stream = TcpStream::connect(addr)?;
    let accepted = accept.join().map_err(|payload| {
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string payload>".to_string());
        io::Error::other(format!("accept thread panicked: {what}"))
    })??;
    Ok((
        TcpOut::from_stream(out_stream)?,
        TcpIn::from_stream(accepted)?,
    ))
}

/// Bind an ephemeral localhost listener, retrying transient `AddrInUse`
/// (the kernel can briefly refuse when the ephemeral range is churning
/// through `TIME_WAIT` sockets, even for a port-0 bind).
fn bind_ephemeral() -> io::Result<TcpListener> {
    let mut last = None;
    for attempt in 0..5u32 {
        match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10 << attempt));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop ran at least once"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_kernels::{write_each, Generate};

    /// A pipeline cut across two maps in two threads: numbers generated in
    /// "node A" arrive in "node B" in order, with signals intact.
    #[test]
    fn stream_crosses_tcp_in_order() {
        let (tcp_out, tcp_in) = tcp_bridge::<u64>().unwrap();

        let node_a = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(Generate::new(0..10_000u64));
            let out = map.add(tcp_out);
            map.link(src, "out", out, "in").unwrap();
            map.exe().unwrap();
        });

        let node_b = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(tcp_in);
            let (we, handle) = write_each::<u64>();
            let dst = map.add(we);
            map.link(src, "out", dst, "in").unwrap();
            map.exe().unwrap();
            std::sync::Arc::try_unwrap(handle)
                .unwrap()
                .into_inner()
                .unwrap()
        });

        node_a.join().unwrap();
        let got = node_b.join().unwrap();
        assert_eq!(got, (0..10_000).collect::<Vec<u64>>());
    }

    /// Same crossing, with per-frame compression enabled on the sender;
    /// the receiver auto-detects. Strings repeat heavily, so frames shrink.
    #[test]
    fn compressed_stream_crosses_tcp() {
        let (tcp_out, tcp_in) = tcp_bridge::<String>().unwrap();
        let tcp_out = tcp_out.compressed();
        let node_a = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(Generate::new((0..2_000u32).map(|i| {
                format!("raftlib stream element {} padding padding padding", i % 7)
            })));
            let out = map.add(tcp_out);
            map.link(src, "out", out, "in").unwrap();
            map.exe().unwrap();
        });
        let node_b = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(tcp_in);
            let (we, handle) = write_each::<String>();
            let dst = map.add(we);
            map.link(src, "out", dst, "in").unwrap();
            map.exe().unwrap();
            let got = handle.lock().unwrap().clone();
            got
        });
        node_a.join().unwrap();
        let got = node_b.join().unwrap();
        assert_eq!(got.len(), 2000);
        assert_eq!(got[8], "raftlib stream element 1 padding padding padding");
    }

    #[test]
    fn signals_survive_the_hop() {
        let (mut tcp_out, mut tcp_in) = tcp_bridge::<u32>().unwrap();
        // Drive the kernels directly with hand-built FIFOs.
        use raft_buffer::{fifo_with, FifoConfig, Signal};
        let (_f1, mut p_in, c_in) = fifo_with::<u32>(FifoConfig::starting_at(8));
        let (f1m, p_out, mut c_out) = fifo_with::<u32>(FifoConfig::starting_at(8));

        p_in.try_push_signal(7, Signal::User(3)).unwrap();
        p_in.try_push_signal(8, Signal::EoS).unwrap();
        p_in.close();

        // sender context: input = c_in; receiver context: output = p_out
        let sender = std::thread::spawn(move || {
            let ctx = test_ctx_in(c_in);
            while tcp_out.run(&ctx) == KStatus::Proceed {}
        });
        let receiver = std::thread::spawn(move || {
            let ctx = test_ctx_out(p_out);
            while tcp_in.run(&ctx) == KStatus::Proceed {}
        });
        sender.join().unwrap();
        receiver.join().unwrap();
        let _ = f1m;
        assert_eq!(c_out.try_pop_signal().unwrap(), (7, Signal::User(3)));
        assert_eq!(c_out.try_pop_signal().unwrap(), (8, Signal::EoS));
    }

    // Small helpers constructing single-port contexts for direct kernel
    // driving (unit-test only; applications go through RaftMap).
    fn test_ctx_in<T: Send + 'static>(c: raft_buffer::Consumer<T>) -> Context {
        let fifo: std::sync::Arc<dyn raft_buffer::fifo::Monitorable> =
            std::sync::Arc::new(c.fifo());
        Context::for_test(vec![("in".to_string(), Box::new(c) as _, fifo)], vec![])
    }

    fn test_ctx_out<T: Send + 'static>(p: raft_buffer::Producer<T>) -> Context {
        Context::for_test(vec![], vec![("out".to_string(), Box::new(p) as _)])
    }
}
