//! Remote kernel execution — the second half of "oar" (§4.1): "The 'oar'
//! system also provides a means to remotely compile and execute kernels so
//! that a user can have a simple compile and forget experience."
//!
//! Rust has no remote *compilation*, so the substitution (DESIGN.md §4) is
//! a **named-kernel registry**: a worker node registers kernel factories
//! under names; a client submits a job naming a chain of kernels, then
//! streams its data over the same socket; the worker assembles a local
//! `RaftMap` — socket-in → named kernels → socket-out — runs it, and the
//! results stream back. The client-side [`RemoteStage`] is itself a kernel,
//! so "run this stage remotely" is just another `map.add(...)`.
//!
//! Protocol on one TCP connection:
//!
//! ```text
//! client → worker : Job frame (kernel names, wire-encoded Vec<String>)
//! client → worker : Data frames …, Eos
//! worker → client : Data frames …, Eos
//! ```
//!
//! Workers are typed (`RemoteWorker<T>`): one registry per element type,
//! matching the link-type checking discipline of the rest of the system.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::BytesMut;
use raftlib::prelude::*;

use crate::frame::{Frame, FrameKind};
use crate::link::{TcpIn, TcpOut};
use crate::wire::Wire;

/// Factory producing a fresh kernel instance per job.
pub type KernelFactory = Box<dyn Fn() -> Box<dyn Kernel> + Send + Sync>;

/// Named kernel factories available on a worker.
#[derive(Default)]
pub struct KernelRegistry {
    factories: HashMap<String, KernelFactory>,
}

impl KernelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` → `factory`. Kernels must be single-input,
    /// single-output with element type `T` on both sides (checked at job
    /// link time, failures abort the job).
    pub fn register<F, K>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> K + Send + Sync + 'static,
        K: Kernel,
    {
        self.factories
            .insert(name.into(), Box::new(move || Box::new(factory())));
    }

    /// Names currently registered.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    fn build(&self, name: &str) -> Option<Box<dyn Kernel>> {
        self.factories.get(name).map(|f| f())
    }
}

/// A worker node executing jobs of element type `T`.
pub struct RemoteWorker<T: Wire> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Wire> RemoteWorker<T> {
    /// Start serving jobs on `addr` (use port 0 for ephemeral).
    pub fn serve(addr: &str, registry: KernelRegistry) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let registry = Arc::new(registry);
        let accept_thread = std::thread::Builder::new()
            .name("oar-worker".into())
            .spawn(move || {
                let mut jobs = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            let registry = registry.clone();
                            jobs.push(std::thread::spawn(move || {
                                let _ = run_job::<T>(stream, &registry);
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for j in jobs {
                    let _ = j.join();
                }
            })?;
        Ok(RemoteWorker {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            _marker: std::marker::PhantomData,
        })
    }

    /// The worker's address, for clients.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl<T: Wire> Drop for RemoteWorker<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Worker side of one job: read the spec, build socket-in → kernels →
/// socket-out, execute.
fn run_job<T: Wire>(stream: TcpStream, registry: &KernelRegistry) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let job = match Frame::read_from(&mut reader)? {
        Some(f) if f.kind == FrameKind::Job => f,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "expected job")),
    };
    let mut payload = job.payload;
    let names = Vec::<String>::decode(&mut payload)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad job spec"))?;

    let mut map = RaftMap::new();
    // Socket halves: reader was consumed up to the first data frame; hand
    // the buffered reader to TcpIn via its raw stream — we re-wrap the
    // clone (the BufReader has consumed only the job frame, which is fine
    // because we construct TcpIn from the same BufReader).
    let src = map.add(TcpIn::<T>::from_parts(reader));
    let mut prev = src;
    for name in &names {
        let Some(kernel) = registry.build(name) else {
            // Unknown kernel: report by closing immediately with Eos.
            let mut w = BufWriter::new(stream);
            let _ = Frame::eos().write_to(&mut w);
            let _ = w.flush();
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no kernel named {name:?}"),
            ));
        };
        let k = map.add_boxed(kernel);
        if map.connect(prev, k).is_err() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("kernel {name:?} is not chainable"),
            ));
        }
        prev = k;
    }
    let out = map.add(TcpOut::<T>::from_stream(stream)?);
    map.connect(prev, out)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    map.exe().map_err(|e| io::Error::other(e.to_string()))?;
    Ok(())
}

/// Client-side kernel: ships its input stream to a worker, which runs the
/// named kernel chain and streams results back on this kernel's output —
/// remote execution as a drop-in pipeline stage.
pub struct RemoteStage<T: Wire> {
    sender: Option<TcpOut<T>>,
    receiver: TcpIn<T>,
    /// `run()` alternates send/receive; when the local input ends we must
    /// still drain the remote results.
    input_done: bool,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Wire> RemoteStage<T> {
    /// Connect to `worker` and submit a job running `kernels` (registered
    /// names, applied in order).
    pub fn connect(worker: SocketAddr, kernels: &[&str]) -> io::Result<Self> {
        let stream = TcpStream::connect(worker)?;
        stream.set_nodelay(true)?;
        let mut w = BufWriter::new(stream.try_clone()?);
        let names: Vec<String> = kernels.iter().map(|s| s.to_string()).collect();
        let mut buf = BytesMut::new();
        names.encode(&mut buf);
        Frame {
            kind: FrameKind::Job,
            payload: buf.freeze(),
        }
        .write_to(&mut w)?;
        w.flush()?;
        Ok(RemoteStage {
            sender: Some(TcpOut::from_stream(stream.try_clone()?)?),
            receiver: TcpIn::from_stream(stream)?,
            input_done: false,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<T: Wire> Kernel for RemoteStage<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in").output::<T>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        // Phase 1: forward local input upstream → worker. TcpOut::run pops
        // from "in" and writes; it returns Stop once the input closes (and
        // sends Eos). We then switch to drain mode.
        if !self.input_done {
            let sender = self.sender.as_mut().expect("sender live until input done");
            match sender.run(ctx) {
                KStatus::Proceed => {
                    // Opportunistically pull any already-available results
                    // so the worker never blocks on a full return path...
                    // handled by TCP buffering; just continue.
                    return KStatus::Proceed;
                }
                KStatus::Stop => {
                    self.input_done = true;
                    self.sender = None; // flushes + keeps socket via receiver
                }
            }
        }
        // Phase 2: drain worker results → local output.
        self.receiver.run(ctx)
    }

    fn name(&self) -> String {
        "remote-stage".to_string()
    }
}

/// Submit a whole `Vec` through a remote kernel chain and collect the
/// results — the "compile and forget" convenience path.
pub fn remote_apply<T: Wire>(
    worker: SocketAddr,
    kernels: &[&str],
    data: Vec<T>,
) -> io::Result<Vec<T>> {
    let stream = TcpStream::connect(worker)?;
    stream.set_nodelay(true)?;
    let mut w = BufWriter::new(stream.try_clone()?);
    let names: Vec<String> = kernels.iter().map(|s| s.to_string()).collect();
    let mut buf = BytesMut::new();
    names.encode(&mut buf);
    Frame {
        kind: FrameKind::Job,
        payload: buf.freeze(),
    }
    .write_to(&mut w)?;
    // Write from a separate thread so a long result stream cannot deadlock
    // against a long input stream on full socket buffers.
    let writer = std::thread::spawn(move || -> io::Result<()> {
        for v in data {
            let mut b = BytesMut::new();
            v.encode(&mut b);
            Frame::data(b.freeze(), raft_buffer::Signal::None).write_to(&mut w)?;
        }
        Frame::eos().write_to(&mut w)?;
        w.flush()
    });

    let mut reader = BufReader::new(stream);
    let mut out = Vec::new();
    while let Some(frame) = Frame::read_from(&mut reader)? {
        if frame.kind == FrameKind::Eos {
            break;
        }
        let Some((mut payload, _sig)) = frame.into_data() else {
            break;
        };
        let Some(v) = T::decode(&mut payload) else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad element"));
        };
        out.push(v);
    }
    writer
        .join()
        .map_err(|_| io::Error::other("writer thread panicked"))??;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_kernels::{write_each, Generate, Map};

    fn registry() -> KernelRegistry {
        let mut r = KernelRegistry::new();
        r.register("double", || Map::new(|x: u64| x * 2));
        r.register("inc", || Map::new(|x: u64| x + 1));
        r.register("square", || Map::new(|x: u64| x * x));
        r
    }

    #[test]
    fn registry_names_and_build() {
        let r = registry();
        let mut names = r.names();
        names.sort();
        assert_eq!(names, vec!["double", "inc", "square"]);
        assert!(r.build("double").is_some());
        assert!(r.build("nope").is_none());
    }

    #[test]
    fn remote_apply_runs_named_chain() {
        let worker = RemoteWorker::<u64>::serve("127.0.0.1:0", registry()).unwrap();
        let got =
            remote_apply::<u64>(worker.addr(), &["double", "inc"], (0..100).collect()).unwrap();
        assert_eq!(got, (0..100).map(|x| x * 2 + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn remote_apply_empty_chain_is_identity() {
        let worker = RemoteWorker::<u64>::serve("127.0.0.1:0", registry()).unwrap();
        let got = remote_apply::<u64>(worker.addr(), &[], vec![5, 6, 7]).unwrap();
        assert_eq!(got, vec![5, 6, 7]);
    }

    #[test]
    fn remote_stage_inside_a_local_pipeline() {
        let worker = RemoteWorker::<u64>::serve("127.0.0.1:0", registry()).unwrap();
        let stage = RemoteStage::<u64>::connect(worker.addr(), &["square"]).unwrap();
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(1..=50u64));
        let remote = map.add(stage);
        let (we, out) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", remote, "in").unwrap();
        map.link(remote, "out", dst, "in").unwrap();
        map.exe().unwrap();
        assert_eq!(
            *out.lock().unwrap(),
            (1..=50u64).map(|x| x * x).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn unknown_kernel_name_yields_empty_result() {
        let worker = RemoteWorker::<u64>::serve("127.0.0.1:0", registry()).unwrap();
        let got = remote_apply::<u64>(worker.addr(), &["no_such_kernel"], vec![1, 2, 3]).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn two_workers_serve_concurrently() {
        let w1 = RemoteWorker::<u64>::serve("127.0.0.1:0", registry()).unwrap();
        let w2 = RemoteWorker::<u64>::serve("127.0.0.1:0", registry()).unwrap();
        let a1 = w1.addr();
        let a2 = w2.addr();
        let t1 = std::thread::spawn(move || {
            remote_apply::<u64>(a1, &["double"], (0..500).collect()).unwrap()
        });
        let t2 = std::thread::spawn(move || {
            remote_apply::<u64>(a2, &["inc"], (0..500).collect()).unwrap()
        });
        assert_eq!(t1.join().unwrap()[499], 998);
        assert_eq!(t2.join().unwrap()[499], 500);
    }
}
