#![warn(missing_docs)]

//! # raft-net
//!
//! TCP stream links and the "oar" node mesh for distributed `raftlib`
//! execution.
//!
//! The paper (§4.1): "With RaftLib there is no difference between a
//! distributed and a non-distributed program from the perspective of the
//! developer. A separate system called 'oar' is a mesh of network clients
//! that continually feed system information to each other."
//!
//! * [`wire`] — serde-free binary encoding for stream elements (the link
//!   type selection in §4.2 chooses TCP when endpoints live on different
//!   nodes; elements must then cross a byte boundary);
//! * [`frame`] — length-prefixed message framing with data/signal/EoS
//!   frames, so synchronous signals survive the network hop;
//! * [`link`] — [`link::TcpOut`]/[`link::TcpIn`] kernels: drop-in stream
//!   endpoints that forward a stream over a socket, making a pipeline
//!   spanning two maps (two "nodes") look exactly like a local one;
//! * [`oar`] — the mesh: every node heartbeats its [`oar::NodeInfo`]
//!   (name, cores, load average proxy) to its peers, giving the optimizer
//!   the cluster view the paper's continuous optimization consumes;
//! * [`compress`] — §4.2's future-work link compression: an LZ77-family
//!   codec applied per frame, with a raw fallback for incompressible
//!   payloads (used by [`link::TcpOut::compressed`]);
//! * [`remote`] — oar's "remotely compile and execute kernels": workers
//!   register named kernel factories, clients submit kernel-chain jobs and
//!   stream data through them ([`remote::RemoteStage`] embeds the remote
//!   hop as an ordinary pipeline stage);
//! * [`resilient`] — fault-tolerant links: connect timeouts and bounded
//!   retry with backoff, sequence-numbered frames with cumulative acks,
//!   and transparent reconnect-and-resume
//!   ([`resilient::ResilientTcpOut`]/[`resilient::ResilientTcpIn`]).

pub mod compress;
pub mod frame;
pub mod link;
pub mod oar;
pub mod remote;
pub mod resilient;
pub mod wire;

pub use frame::{Frame, FrameKind};
pub use link::{tcp_bridge, TcpIn, TcpOut};
pub use oar::{NodeInfo, OarNode};
pub use remote::{remote_apply, KernelRegistry, RemoteStage, RemoteWorker};
pub use resilient::{
    connect_with_retry, resilient_bridge, NetConfig, ResilientTcpIn, ResilientTcpOut,
};
pub use wire::Wire;
