//! Resilient TCP stream links: timeouts, bounded reconnect, and
//! transparent resume.
//!
//! The plain [`link`](crate::link) kernels treat any socket error as end
//! of stream — fine on a workstation, fatal across a real network where
//! links flap. This module upgrades the hop with the robustness story:
//!
//! * every connect carries a timeout and a bounded retry schedule with
//!   exponential backoff and deterministic jitter ([`connect_with_retry`]);
//! * data frames are sequence-numbered ([`FrameKind::SeqData`]); the
//!   sender keeps every un-acknowledged frame in a bounded replay buffer
//!   and the receiver acknowledges cumulatively every `ack_every` frames;
//! * on reconnect the receiver leads with a
//!   [`ResumeFrom`](FrameKind::ResumeFrom) handshake naming the next
//!   sequence it expects; the sender trims its replay buffer to that point
//!   and retransmits the rest — the stream resumes *exactly once, in
//!   order*, with no application involvement;
//! * the replay buffer doubles as flow control: when it reaches
//!   `window` frames the sender blocks reading acks, so a dead or slow
//!   receiver applies backpressure instead of unbounded buffering.
//!
//! Acks are only read at blocking points (window full, final drain), never
//! under a read timeout mid-frame — a short read inside a frame would
//! desynchronize the framing, so the protocol is designed to avoid timed
//! reads entirely once a connection is up.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use raft_buffer::ReplayWindow;
use raftlib::prelude::*;

use crate::frame::{Frame, FrameKind};
use crate::wire::Wire;

/// Connection policy for resilient links (and [`TcpOut::connect_with`]
/// (crate::link::TcpOut::connect_with)).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout applied by [`connect_with_retry`]. Resilient
    /// links override this to blocking after the resume handshake.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout applied to outbound connections.
    pub write_timeout: Option<Duration>,
    /// How many times to retry a failed connect (and how many reconnect
    /// cycles a resilient sender attempts before giving up).
    pub retries: u32,
    /// First retry delay; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Add a deterministic pseudo-random 0–25% to each backoff so herds of
    /// reconnecting senders don't synchronize.
    pub jitter: bool,
    /// The receiver acknowledges cumulatively every `ack_every` frames.
    pub ack_every: u64,
    /// Replay-buffer bound; the sender blocks for acks at this depth.
    /// Clamped to at least `ack_every + 1` so an ack is always owed before
    /// the sender can block.
    pub window: usize,
    /// Seed for the jitter stream — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
            write_timeout: None,
            retries: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: true,
            ack_every: 32,
            window: 128,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl NetConfig {
    /// The replay-buffer bound actually used: `window`, but never at or
    /// below `ack_every` (which could block waiting for an ack the
    /// receiver will never owe).
    fn effective_window(&self) -> usize {
        self.window.max(self.ack_every as usize + 1)
    }

    /// How long a receiver waits for a sender to (re)connect before
    /// treating the stream as ended: the full connect-retry horizon plus
    /// one backoff ceiling of slack.
    fn accept_patience(&self) -> Duration {
        self.connect_timeout
            .saturating_mul(self.retries + 1)
            .saturating_add(self.max_backoff)
    }

    /// Backoff before retry `attempt` (0-based): `base * 2^attempt` capped
    /// at `max_backoff`, plus 0–25% deterministic jitter from `rng`.
    fn backoff_for(&self, attempt: u32, rng: &mut u64) -> Duration {
        let d = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        if !self.jitter || d.is_zero() {
            return d;
        }
        let span = (d.as_nanos() / 4).max(1) as u64;
        d + Duration::from_nanos(xorshift(rng) % span)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = (*state).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Connect with per-attempt timeout and bounded retry per [`NetConfig`]:
/// `retries + 1` total attempts across all resolved addresses, exponential
/// backoff with deterministic jitter between rounds. The returned socket
/// has nodelay set and the config's read/write timeouts applied.
pub fn connect_with_retry(addr: impl ToSocketAddrs, cfg: &NetConfig) -> io::Result<TcpStream> {
    let mut rng = cfg.seed;
    connect_with_retry_seeded(addr, cfg, &mut rng)
}

fn connect_with_retry_seeded(
    addr: impl ToSocketAddrs,
    cfg: &NetConfig,
    rng: &mut u64,
) -> io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        ));
    }
    let mut last_err = None;
    for attempt in 0..=cfg.retries {
        for a in &addrs {
            match TcpStream::connect_timeout(a, cfg.connect_timeout) {
                Ok(s) => {
                    s.set_nodelay(true)?;
                    s.set_read_timeout(cfg.read_timeout)?;
                    s.set_write_timeout(cfg.write_timeout)?;
                    return Ok(s);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if attempt < cfg.retries {
            std::thread::sleep(cfg.backoff_for(attempt, rng));
        }
    }
    Err(last_err.expect("at least one attempt was made"))
}

/// Sink-side resilient kernel: forwards its input stream over TCP with
/// sequence numbers, a replay buffer, and transparent reconnect-and-resume.
///
/// Connects lazily on first use, so it can be constructed before the
/// receiver is listening (the connect retry schedule absorbs the race).
pub struct ResilientTcpOut<T: Wire> {
    addr: SocketAddr,
    cfg: NetConfig,
    writer: Option<BufWriter<TcpStream>>,
    /// Un-acknowledged frames in sequence order — the same seq/ack
    /// [`ReplayWindow`] the in-process journaled FIFOs use
    /// (`raft_buffer::journal`), instantiated over encoded frames.
    /// Unbounded here (`bound == 0`): [`Self::wait_for_window`] enforces
    /// the flow-control depth instead, so no frame is ever force-dropped.
    window: ReplayWindow<Frame>,
    rng: u64,
    eos_sent: bool,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Wire> ResilientTcpOut<T> {
    /// Create a sender for `addr` (resolved now, connected lazily).
    pub fn new(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "no address"))?;
        Ok(ResilientTcpOut {
            addr,
            rng: cfg.seed ^ 0x6C62_272E_07BB_0142,
            cfg,
            writer: None,
            window: ReplayWindow::new(0),
            eos_sent: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Drop the current connection as if the link died. The next send
    /// reconnects and resumes; no data is lost. Exists for fault-injection
    /// tests and chaos harnesses.
    pub fn break_connection(&mut self) {
        self.writer = None;
    }

    /// Connect (with retry), run the resume handshake, and retransmit the
    /// outstanding replay suffix. No-op when already connected.
    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.writer.is_some() {
            return Ok(());
        }
        let stream = connect_with_retry_seeded(self.addr, &self.cfg, &mut self.rng)?;
        // The receiver leads with ResumeFrom{next expected seq}. Bound the
        // wait: a handshake is one small frame, so a timed read here can't
        // split a data frame.
        stream.set_read_timeout(Some(self.cfg.connect_timeout))?;
        let resume = match Frame::read_from(&mut (&stream))? {
            Some(f) if f.kind == FrameKind::ResumeFrom => f,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "peer did not send a resume handshake",
                ))
            }
        };
        let expected = resume
            .control_seq()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed resume frame"))?;
        // From here on reads happen only at blocking points.
        stream.set_read_timeout(None)?;

        // Frames below `expected` were delivered before the link died.
        self.window.ack(expected);

        let mut writer = BufWriter::new(stream);
        for (_, f) in self.window.iter_from(expected) {
            f.write_to(&mut writer)?;
        }
        if self.eos_sent {
            Frame::eos().write_to(&mut writer)?;
        }
        writer.flush()?;
        self.writer = Some(writer);
        Ok(())
    }

    /// Put `frame` (already appended to the replay buffer) on the wire,
    /// reconnecting up to `retries` times. A fresh connection's handshake
    /// already retransmitted it as part of the replay suffix.
    fn transmit(&mut self) -> io::Result<()> {
        let mut cycles = 0u32;
        loop {
            let had_conn = self.writer.is_some();
            let step = (|| -> io::Result<()> {
                self.ensure_connected()?;
                if had_conn {
                    let last = self.window.next_seq() - 1;
                    let frame = self.window.get(last).expect("frame just queued");
                    frame.write_to(self.writer.as_mut().expect("connected"))?;
                }
                Ok(())
            })();
            match step {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.writer = None;
                    cycles += 1;
                    if cycles > self.cfg.retries {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Release replay entries the cumulative ack `next_expected` covers.
    fn absorb_ack(&mut self, next_expected: u64) {
        self.window.ack(next_expected);
    }

    /// Read one frame from the peer (flushing first) and absorb it if it
    /// is an ack. Requires a live connection.
    fn read_one_ack(&mut self) -> io::Result<()> {
        let writer = self.writer.as_mut().expect("connected");
        writer.flush()?;
        match Frame::read_from(writer.get_mut())? {
            Some(f) if f.kind == FrameKind::Ack => {
                let n = f.control_seq().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed ack frame")
                })?;
                self.absorb_ack(n);
                Ok(())
            }
            Some(_) => Ok(()), // tolerate unexpected control traffic
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "peer closed before acknowledging",
            )),
        }
    }

    /// Block reading acks while the replay buffer is at the window bound —
    /// the backpressure point. Reconnects (which itself advances `acked`
    /// via the handshake) up to `retries` times.
    fn wait_for_window(&mut self) -> io::Result<()> {
        let window = self.cfg.effective_window();
        let mut cycles = 0u32;
        while self.window.len() >= window {
            let step = self.ensure_connected().and_then(|()| self.read_one_ack());
            if let Err(e) = step {
                self.writer = None;
                cycles += 1;
                if cycles > self.cfg.retries {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Send EoS and drain acks until every frame is acknowledged.
    fn finish(&mut self) -> io::Result<()> {
        self.eos_sent = true;
        let mut cycles = 0u32;
        loop {
            match self.finish_once() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.writer = None;
                    cycles += 1;
                    if cycles > self.cfg.retries {
                        return Err(e);
                    }
                }
            }
        }
    }

    fn finish_once(&mut self) -> io::Result<()> {
        let had_conn = self.writer.is_some();
        self.ensure_connected()?;
        if had_conn {
            // Fresh connections already got EoS from the handshake replay.
            let writer = self.writer.as_mut().expect("connected");
            Frame::eos().write_to(writer)?;
            writer.flush()?;
        }
        while !self.window.is_empty() {
            self.read_one_ack()?;
        }
        Ok(())
    }
}

impl<T: Wire> Kernel for ResilientTcpOut<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<T>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<T>("in");
        match input.pop_signal() {
            Ok((v, sig)) => {
                drop(input);
                let mut buf = BytesMut::new();
                v.encode(&mut buf);
                let seq = self.window.next_seq();
                self.window.append(Frame::seq_data(seq, buf.freeze(), sig));
                if self.transmit().is_err() || self.wait_for_window().is_err() {
                    return KStatus::Stop; // receiver unreachable beyond retry budget
                }
                KStatus::Proceed
            }
            Err(_) => {
                let _ = self.finish();
                KStatus::Stop
            }
        }
    }

    fn name(&self) -> String {
        "resilient-tcp-out".to_string()
    }
}

/// Source-side resilient kernel: accepts a sender (re)connecting any
/// number of times, deduplicates by sequence number, and acknowledges
/// cumulatively.
pub struct ResilientTcpIn<T: Wire> {
    listener: TcpListener,
    cfg: NetConfig,
    reader: Option<BufReader<TcpStream>>,
    writer: Option<TcpStream>,
    /// Next sequence number to push downstream; doubles as the cumulative
    /// ack value and the resume point offered on every (re)accept.
    expected: u64,
    unacked: u64,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Wire> ResilientTcpIn<T> {
    /// Bind a listener; the sender is accepted lazily (and re-accepted
    /// after every link failure).
    pub fn bind(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ResilientTcpIn {
            listener,
            cfg,
            reader: None,
            writer: None,
            expected: 0,
            unacked: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// The bound address (for handing to [`ResilientTcpOut::new`]).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept a sender if none is connected, waiting up to the accept
    /// patience window, then lead with the resume handshake.
    fn ensure_accepted(&mut self) -> io::Result<()> {
        if self.reader.is_some() {
            return Ok(());
        }
        let deadline = Instant::now() + self.cfg.accept_patience();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    let Ok(mut writer) = stream.try_clone() else {
                        continue;
                    };
                    if Frame::resume_from(self.expected)
                        .write_to(&mut writer)
                        .is_err()
                    {
                        continue; // link died during handshake: next connect
                    }
                    self.reader = Some(BufReader::new(stream));
                    self.writer = Some(writer);
                    self.unacked = 0;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no sender (re)connected within the accept window",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn drop_conn(&mut self) {
        self.reader = None;
        self.writer = None;
    }

    fn send_ack(&mut self) -> io::Result<()> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no sender"))?;
        Frame::ack(self.expected).write_to(writer)?;
        self.unacked = 0;
        Ok(())
    }
}

impl<T: Wire> Kernel for ResilientTcpIn<T> {
    fn ports(&self) -> PortSpec {
        PortSpec::new().output::<T>("out")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        loop {
            if self.ensure_accepted().is_err() {
                return KStatus::Stop; // sender never came back: stream ends
            }
            let frame = Frame::read_from(self.reader.as_mut().expect("accepted"));
            match frame {
                Ok(Some(f)) if f.kind == FrameKind::Eos => {
                    let _ = self.send_ack(); // final cumulative ack
                    return KStatus::Stop;
                }
                Ok(Some(f))
                    if matches!(f.kind, FrameKind::SeqData | FrameKind::SeqDataWithSignal) =>
                {
                    let Some((seq, mut payload, sig)) = f.into_seq_data() else {
                        self.drop_conn(); // malformed: force re-handshake
                        continue;
                    };
                    if seq < self.expected {
                        continue; // replayed duplicate: already delivered
                    }
                    if seq > self.expected {
                        self.drop_conn(); // hole in the sequence: resync
                        continue;
                    }
                    let Some(v) = T::decode(&mut payload) else {
                        return KStatus::Stop; // malformed element
                    };
                    let mut out = ctx.output::<T>("out");
                    if out.push_signal(v, sig).is_err() {
                        return KStatus::Stop;
                    }
                    drop(out);
                    self.expected += 1;
                    self.unacked += 1;
                    if self.unacked >= self.cfg.ack_every && self.send_ack().is_err() {
                        self.drop_conn();
                    }
                    return KStatus::Proceed;
                }
                Ok(Some(_)) | Ok(None) | Err(_) => {
                    // Protocol violation, clean EOF without EoS, or a read
                    // error: the link died. Re-accept and resume.
                    self.drop_conn();
                }
            }
        }
    }

    fn name(&self) -> String {
        "resilient-tcp-in".to_string()
    }
}

/// Build a connected resilient pair over an ephemeral localhost listener.
/// No handshake happens here — the sender connects lazily on first send,
/// so either side may start executing first.
pub fn resilient_bridge<T: Wire>(
    cfg: NetConfig,
) -> io::Result<(ResilientTcpOut<T>, ResilientTcpIn<T>)> {
    let rin = ResilientTcpIn::bind("127.0.0.1:0", cfg.clone())?;
    let rout = ResilientTcpOut::new(rin.local_addr()?, cfg)?;
    Ok((rout, rin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raft_kernels::{write_each, Generate};

    fn test_cfg() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            retries: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            ack_every: 8,
            window: 32,
            ..NetConfig::default()
        }
    }

    /// End-to-end across two maps: small ack window, so the blocking-ack
    /// backpressure path runs constantly.
    #[test]
    fn resilient_stream_end_to_end_in_order() {
        let (rout, rin) = resilient_bridge::<u64>(test_cfg()).unwrap();

        let node_a = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(Generate::new(0..5_000u64));
            let out = map.add(rout);
            map.link(src, "out", out, "in").unwrap();
            map.exe().unwrap();
        });
        let node_b = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(rin);
            let (we, handle) = write_each::<u64>();
            let dst = map.add(we);
            map.link(src, "out", dst, "in").unwrap();
            map.exe().unwrap();
            std::sync::Arc::try_unwrap(handle)
                .unwrap()
                .into_inner()
                .unwrap()
        });

        node_a.join().unwrap();
        let got = node_b.join().unwrap();
        assert_eq!(got, (0..5_000).collect::<Vec<u64>>());
    }

    /// Kill the link twice mid-stream: the sender reconnects, the resume
    /// handshake trims the replay, and every element arrives exactly once,
    /// in order, with its signal intact.
    #[test]
    fn reconnect_resumes_exactly_once() {
        use raft_buffer::{fifo_with, FifoConfig, Signal};

        let (mut rout, mut rin) = resilient_bridge::<u64>(test_cfg()).unwrap();

        let (_fin, mut producer, consumer) = fifo_with::<u64>(FifoConfig::starting_at(2048));
        for i in 0..1_000u64 {
            let sig = if i == 999 { Signal::EoS } else { Signal::None };
            producer.try_push_signal(i, sig).unwrap();
        }
        producer.close();

        let sender = std::thread::spawn(move || {
            let ctx = test_ctx_in(consumer);
            let mut sent = 0u32;
            loop {
                if sent == 250 || sent == 700 {
                    rout.break_connection();
                }
                if rout.run(&ctx) != KStatus::Proceed {
                    break;
                }
                sent += 1;
            }
        });

        let (fout, out_producer, mut out_consumer) =
            fifo_with::<u64>(FifoConfig::starting_at(2048));
        let receiver = std::thread::spawn(move || {
            let ctx = test_ctx_out(out_producer);
            while rin.run(&ctx) == KStatus::Proceed {}
        });

        sender.join().unwrap();
        receiver.join().unwrap();
        let _ = fout;
        for i in 0..1_000u64 {
            let (v, sig) = out_consumer.try_pop_signal().unwrap();
            assert_eq!(v, i);
            assert_eq!(sig, if i == 999 { Signal::EoS } else { Signal::None });
        }
        assert!(out_consumer.try_pop_signal().is_err(), "duplicates arrived");
    }

    /// A sender pointed at a dead port gives up after its retry budget —
    /// bounded time, no hang — and ends the stream.
    #[test]
    fn connect_to_dead_port_fails_bounded() {
        let cfg = NetConfig {
            connect_timeout: Duration::from_millis(200),
            retries: 1,
            base_backoff: Duration::from_millis(1),
            jitter: false,
            ..NetConfig::default()
        };
        // Grab an ephemeral port, then free it: nothing listens there.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);

        let t0 = Instant::now();
        let err = connect_with_retry(addr, &cfg);
        assert!(err.is_err());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "retry schedule unbounded: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let cfg = NetConfig {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter: true,
            ..NetConfig::default()
        };
        let schedule = |seed: u64| {
            let mut rng = seed;
            (0..8)
                .map(|a| cfg.backoff_for(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(1), schedule(1));
        for d in schedule(1) {
            assert!(d <= Duration::from_millis(100)); // cap + 25% jitter
        }
        // without jitter the schedule is the pure exponential
        let plain = NetConfig {
            jitter: false,
            ..cfg.clone()
        };
        let mut rng = 1;
        assert_eq!(plain.backoff_for(0, &mut rng), Duration::from_millis(10));
        assert_eq!(plain.backoff_for(2, &mut rng), Duration::from_millis(40));
        assert_eq!(plain.backoff_for(6, &mut rng), Duration::from_millis(80));
    }

    /// With `raft_failpoints`, injected short writes at the framing
    /// boundary force real reconnects; delivery must stay exactly-once.
    #[cfg(feature = "raft_failpoints")]
    #[test]
    fn injected_write_faults_do_not_lose_or_duplicate() {
        use raft_buffer::failpoints;

        let seed = std::env::var("RAFT_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        failpoints::set_seed(seed);
        failpoints::arm("net::frame::write", failpoints::FailAction::ShortIo, 40, 6);

        let (rout, rin) = resilient_bridge::<u64>(test_cfg()).unwrap();
        let node_a = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(Generate::new(0..2_000u64));
            let out = map.add(rout);
            map.link(src, "out", out, "in").unwrap();
            map.exe().unwrap();
        });
        let node_b = std::thread::spawn(move || {
            let mut map = RaftMap::new();
            let src = map.add(rin);
            let (we, handle) = write_each::<u64>();
            let dst = map.add(we);
            map.link(src, "out", dst, "in").unwrap();
            map.exe().unwrap();
            std::sync::Arc::try_unwrap(handle)
                .unwrap()
                .into_inner()
                .unwrap()
        });
        node_a.join().unwrap();
        let got = node_b.join().unwrap();
        failpoints::reset();
        assert_eq!(got, (0..2_000).collect::<Vec<u64>>());
    }

    // Single-port contexts for direct kernel driving (mirrors link.rs).
    fn test_ctx_in<T: Send + 'static>(c: raft_buffer::Consumer<T>) -> Context {
        let fifo: std::sync::Arc<dyn raft_buffer::fifo::Monitorable> =
            std::sync::Arc::new(c.fifo());
        Context::for_test(vec![("in".to_string(), Box::new(c) as _, fifo)], vec![])
    }

    fn test_ctx_out<T: Send + 'static>(p: raft_buffer::Producer<T>) -> Context {
        Context::for_test(vec![], vec![("out".to_string(), Box::new(p) as _)])
    }
}
