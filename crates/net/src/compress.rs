//! Link data compression — §4.2's "Future versions will incorporate link
//! data compression as well, further improving the cache-able data."
//!
//! A dependency-free LZ77-family codec (hash-chain match finder, 64 KiB
//! window, byte-aligned token stream) applied per frame on TCP links via
//! [`compress_frame`]/[`decompress_frame`]. Frames that do not shrink are
//! sent raw — one flag byte decides, so incompressible traffic costs 1
//! byte, not a blow-up.
//!
//! Token format (byte-aligned for simplicity and speed):
//!
//! ```text
//! literal run : 0x00 len:varint  bytes…
//! match       : 0x01 len:varint  dist:varint     (len ≥ 4, dist ≥ 1)
//! ```

use bytes::{BufMut, Bytes, BytesMut};

/// Minimum match length worth encoding (token overhead ≥ 3 bytes).
const MIN_MATCH: usize = 4;
/// Maximum look-back distance.
const WINDOW: usize = 1 << 16;
/// Hash table size (power of two).
const HASH_SIZE: usize = 1 << 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) as usize >> 17) & (HASH_SIZE - 1)
}

fn put_varint(buf: &mut BytesMut, mut v: usize) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<usize> {
    let mut v = 0usize;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= ((b & 0x7f) as usize) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 56 {
            return None; // malformed
        }
    }
}

/// Compress `data`. Always succeeds; output may be larger than input for
/// incompressible data (use [`compress_frame`] for the raw-fallback form).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(data.len() / 2 + 16);
    let n = data.len();
    // hash -> most recent position with that 4-byte prefix
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut i = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut BytesMut, from: usize, to: usize| {
        if to > from {
            out.put_u8(0x00);
            put_varint(out, to - from);
            out.put_slice(&data[from..to]);
        }
    };

    while i + MIN_MATCH <= n {
        let h = hash4(data, i);
        let cand = head[h];
        head[h] = i;
        let mut matched = 0usize;
        if cand != usize::MAX && cand < i && i - cand <= WINDOW {
            // extend the match
            let max = n - i;
            while matched < max && data[cand + matched] == data[i + matched] {
                matched += 1;
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i);
            out.put_u8(0x01);
            put_varint(&mut out, matched);
            put_varint(&mut out, i - cand);
            // index the skipped region sparsely (every 2nd position) to
            // keep compression fast on long matches
            let end = i + matched;
            let mut j = i + 1;
            while j + MIN_MATCH <= end.min(n - MIN_MATCH + MIN_MATCH) && j + MIN_MATCH <= n {
                head[hash4(data, j)] = j;
                j += 2;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, n);
    out.to_vec()
}

/// Decompress a [`compress`] stream; `None` on malformed input.
pub fn decompress(data: &[u8], size_hint: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(size_hint);
    let mut pos = 0usize;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0x00 => {
                let len = get_varint(data, &mut pos)?;
                if pos + len > data.len() {
                    return None;
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0x01 => {
                let len = get_varint(data, &mut pos)?;
                let dist = get_varint(data, &mut pos)?;
                if dist == 0 || dist > out.len() || len == 0 {
                    return None;
                }
                let start = out.len() - dist;
                // overlapping copies are the LZ idiom (dist < len): copy
                // byte-wise
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Frame-level wrapper: `[0x00] raw bytes` or `[0x01] varint(raw_len) lz
/// bytes`, choosing whichever is smaller.
pub fn compress_frame(payload: &Bytes) -> Bytes {
    let lz = compress(payload);
    if lz.len() + 6 < payload.len() {
        let mut out = BytesMut::with_capacity(lz.len() + 6);
        out.put_u8(0x01);
        put_varint(&mut out, payload.len());
        out.put_slice(&lz);
        out.freeze()
    } else {
        let mut out = BytesMut::with_capacity(payload.len() + 1);
        out.put_u8(0x00);
        out.put_slice(payload);
        out.freeze()
    }
}

/// Reverse of [`compress_frame`]; `None` on malformed input.
pub fn decompress_frame(data: &Bytes) -> Option<Bytes> {
    match data.first()? {
        0x00 => Some(data.slice(1..)),
        0x01 => {
            let mut pos = 1usize;
            let raw_len = get_varint(data, &mut pos)?;
            if raw_len > crate::frame::MAX_FRAME {
                return None;
            }
            let out = decompress(&data[pos..], raw_len)?;
            (out.len() == raw_len).then(|| Bytes::from(out))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let lz = compress(data);
        let back = decompress(&lz, data.len()).expect("decompress");
        assert_eq!(back, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_shrinks_a_lot() {
        let data = b"the quick brown fox. ".repeat(200);
        let lz = compress(&data);
        assert!(
            lz.len() < data.len() / 4,
            "repetitive text should shrink 4x+: {} -> {}",
            data.len(),
            lz.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." compresses via dist=1 overlapping matches
        let data = vec![b'a'; 10_000];
        let lz = compress(&data);
        assert!(lz.len() < 64, "RLE-like input should be tiny: {}", lz.len());
        roundtrip(&data);
    }

    #[test]
    fn random_data_roundtrips() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for len in [10usize, 100, 1000, 65_536, 200_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn english_like_corpus_roundtrips_and_shrinks() {
        let c = raft_algos_corpus();
        let lz = compress(&c);
        assert!(
            lz.len() < c.len(),
            "text should compress: {} -> {}",
            c.len(),
            lz.len()
        );
        roundtrip(&c);
    }

    fn raft_algos_corpus() -> Vec<u8> {
        // A small zipfy text without depending on raft-algos: words drawn
        // from a tiny vocabulary.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let vocab = [
            "stream", "kernel", "queue", "port", "the", "of", "a", "raft",
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        while out.len() < 100_000 {
            out.extend_from_slice(vocab[rng.gen_range(0..vocab.len())].as_bytes());
            out.push(b' ');
        }
        out
    }

    #[test]
    fn frame_wrapper_picks_smaller_form() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // compressible
        let text = Bytes::from(b"raftlib raftlib raftlib raftlib raftlib!".repeat(50));
        let framed = compress_frame(&text);
        assert_eq!(framed[0], 0x01);
        assert!(framed.len() < text.len());
        assert_eq!(decompress_frame(&framed).unwrap(), text);
        // incompressible
        let mut rng = StdRng::seed_from_u64(1);
        let noise = Bytes::from((0..256).map(|_| rng.gen::<u8>()).collect::<Vec<_>>());
        let framed = compress_frame(&noise);
        assert_eq!(framed[0], 0x00);
        assert_eq!(framed.len(), noise.len() + 1);
        assert_eq!(decompress_frame(&framed).unwrap(), noise);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decompress(&[0x01, 0x05, 0x09], 10).is_none()); // dist > out
        assert!(decompress(&[0x00, 0x7f], 10).is_none()); // literal overrun
        assert!(decompress(&[0x07], 10).is_none()); // bad tag
        assert!(decompress_frame(&Bytes::from_static(&[0x02, 0x00])).is_none());
        // truncated varint
        assert!(decompress(&[0x00, 0x80], 10).is_none());
    }

    #[test]
    fn declared_length_must_match() {
        let payload = Bytes::from_static(b"hello hello hello hello hello hello");
        let framed = compress_frame(&payload);
        if framed[0] == 0x01 {
            // corrupt the declared length
            let mut bad = framed.to_vec();
            bad[1] = bad[1].wrapping_add(1);
            assert!(decompress_frame(&Bytes::from(bad)).is_none());
        }
    }
}
