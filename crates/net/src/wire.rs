//! Minimal binary encoding for stream elements crossing a TCP link.
//!
//! Hand-rolled (no serde): the paper's run-time "selects the narrowest
//! convertible type for each link type and casts the types at each
//! endpoint"; we keep the same spirit — fixed-width little-endian encodings
//! chosen per element type, implemented for the primitive and composite
//! types the examples and benches stream across nodes.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A type that can cross a TCP stream link.
///
/// `Clone` is part of the stream-type contract (see
/// `raftlib::PortSpec::input`): resilient links keep replay copies of
/// unacknowledged elements, and every encodable type here is trivially
/// clonable anyway.
pub trait Wire: Sized + Send + Clone + 'static {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode one value from `buf` (which contains exactly one payload).
    /// `None` on malformed input.
    fn decode(buf: &mut Bytes) -> Option<Self>;
}

macro_rules! wire_int {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {
        $(
            impl Wire for $t {
                fn encode(&self, buf: &mut BytesMut) {
                    buf.$put(*self);
                }
                fn decode(buf: &mut Bytes) -> Option<Self> {
                    (buf.remaining() >= std::mem::size_of::<$t>()).then(|| buf.$get())
                }
            }
        )*
    };
}

wire_int! {
    u8 => put_u8 / get_u8,
    u16 => put_u16_le / get_u16_le,
    u32 => put_u32_le / get_u32_le,
    u64 => put_u64_le / get_u64_le,
    i8 => put_i8 / get_i8,
    i16 => put_i16_le / get_i16_le,
    i32 => put_i32_le / get_i32_le,
    i64 => put_i64_le / get_i64_le,
    f32 => put_f32_le / get_f32_le,
    f64 => put_f64_le / get_f64_le,
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        let raw = buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        Some(buf.copy_to_bytes(len).to_vec())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let a = A::decode(buf)?;
        let b = B::decode(buf)?;
        Some((a, b))
    }
}

impl<T: Wire> Wire for Vec<T>
where
    Vec<T>: VecWireMarker,
{
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

/// Marker avoiding the overlap between `Vec<u8>`'s bespoke impl and the
/// generic `Vec<T>` impl: implemented for every element type except `u8`.
pub trait VecWireMarker {}
impl VecWireMarker for Vec<u16> {}
impl VecWireMarker for Vec<u32> {}
impl VecWireMarker for Vec<u64> {}
impl VecWireMarker for Vec<i16> {}
impl VecWireMarker for Vec<i32> {}
impl VecWireMarker for Vec<i64> {}
impl VecWireMarker for Vec<f32> {}
impl VecWireMarker for Vec<f64> {}
impl VecWireMarker for Vec<String> {}
impl VecWireMarker for Vec<(u64, u32)> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = T::decode(&mut bytes).expect("decode");
        assert_eq!(back, v);
        assert_eq!(bytes.remaining(), 0, "trailing bytes after decode");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(-1i32);
        roundtrip(std::f64::consts::PI);
        roundtrip(f32::NEG_INFINITY);
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello world".to_string());
        roundtrip("ünïcødé ✓".to_string());
    }

    #[test]
    fn byte_vectors_roundtrip() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![0u8, 1, 2, 255]);
    }

    #[test]
    fn tuples_and_vectors_roundtrip() {
        roundtrip((42u64, 7u32));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![(1u64, 2u32), (3, 4)]);
        roundtrip(vec!["a".to_string(), "bb".to_string()]);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = BytesMut::new();
        "hello".to_string().encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..6);
        assert!(String::decode(&mut truncated).is_none());
        let mut empty = Bytes::new();
        assert!(u64::decode(&mut empty).is_none());
    }

    #[test]
    fn invalid_utf8_fails_cleanly() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(String::decode(&mut buf.freeze()).is_none());
    }
}
