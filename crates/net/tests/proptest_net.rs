//! Property tests for the wire codec, framing, and compression: arbitrary
//! payloads always roundtrip; arbitrary byte soup never panics decoders.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use raft_net::compress::{compress, compress_frame, decompress, decompress_frame};
use raft_net::frame::Frame;
use raft_net::wire::Wire;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_u64_roundtrip(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        prop_assert_eq!(u64::decode(&mut buf.freeze()), Some(v));
    }

    #[test]
    fn wire_string_roundtrip(s in "\\PC*") {
        let mut buf = BytesMut::new();
        s.encode(&mut buf);
        prop_assert_eq!(String::decode(&mut buf.freeze()), Some(s));
    }

    #[test]
    fn wire_vec_pairs_roundtrip(v in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..50)) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        prop_assert_eq!(Vec::<(u64, u32)>::decode(&mut buf.freeze()), Some(v));
    }

    /// Decoding random bytes must never panic (may legitimately fail).
    #[test]
    fn wire_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = String::decode(&mut Bytes::from(raw.clone()));
        let _ = Vec::<u8>::decode(&mut Bytes::from(raw.clone()));
        let _ = Vec::<u64>::decode(&mut Bytes::from(raw.clone()));
        let _ = u64::decode(&mut Bytes::from(raw));
    }

    #[test]
    fn frame_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let f = Frame::data(Bytes::from(payload), raft_buffer::Signal::None);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
        prop_assert_eq!(back, f);
    }

    /// Frame reader survives arbitrary byte soup without panicking.
    #[test]
    fn frame_reader_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut cursor = std::io::Cursor::new(raw);
        while let Ok(Some(_)) = Frame::read_from(&mut cursor) {}
    }

    #[test]
    fn lz_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
        let lz = compress(&data);
        prop_assert_eq!(decompress(&lz, data.len()), Some(data));
    }

    /// Repetitive inputs roundtrip too (stress the match encoder).
    #[test]
    fn lz_roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..20),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let lz = compress(&data);
        prop_assert_eq!(decompress(&lz, data.len()), Some(data));
    }

    #[test]
    fn compressed_frame_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
        let payload = Bytes::from(data);
        let framed = compress_frame(&payload);
        prop_assert_eq!(decompress_frame(&framed), Some(payload));
    }

    /// Decompressors must never panic on garbage.
    #[test]
    fn decompressors_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..500)) {
        let _ = decompress(&raw, 1024);
        let _ = decompress_frame(&Bytes::from(raw));
    }
}
