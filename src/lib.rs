//! # raftlib-suite
//!
//! Umbrella crate for the raftlib-rs reproduction of RaftLib (PMAM'15):
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The actual functionality lives in the
//! workspace crates re-exported below.

pub use raft_algos as algos;
pub use raft_buffer as buffer;
pub use raft_kernels as kernels;
pub use raft_model as model;
pub use raft_net as net;
pub use raftlib as raft;
