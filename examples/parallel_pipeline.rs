//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! Automatic parallelization and live monitoring.
//!
//! A deliberately unbalanced pipeline: a fast source feeds an expensive
//! transform. With auto-parallelism enabled the runtime replicates the
//! transform behind split/reduce adapters; the monitor thread resizes the
//! queues (§4's 3δ rule) and the report shows the telemetry the paper
//! exposes (occupancy histograms, service statistics, resize log).
//!
//! ```sh
//! cargo run --release --example parallel_pipeline
//! ```

use raft_kernels::{Count, Generate, Map};
use raftlib::prelude::*;

fn expensive(x: u64) -> u64 {
    // Busy work: a short, content-dependent loop.
    (0..500).fold(x, |acc, i| {
        acc.wrapping_mul(6364136223846793005).wrapping_add(i)
    })
}

fn main() {
    const N: u64 = 200_000;

    let mut cfg = MapConfig::default();
    cfg.parallel.enabled = true; // replicate every eligible kernel
    cfg.parallel.strategy = SplitStrategy::LeastUtilized;
    cfg.parallel.max_width = 4;
    cfg.fifo = FifoConfig {
        initial_capacity: 8, // tiny on purpose: watch the monitor grow it
        max_capacity: 1 << 16,
        min_capacity: 8,
    };
    cfg.monitor.shrink_enabled = false;

    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..N).with_batch(128));
    let work = map.add(Map::new(expensive));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link_unordered(src, "out", work, "in").expect("link");
    map.link_unordered(work, "out", sink, "in").expect("link");

    let report = map.exe().expect("execution");

    println!(
        "processed {} items in {:?}",
        n.load(std::sync::atomic::Ordering::Relaxed),
        report.elapsed
    );
    println!("replicated kernels: {:?}", report.replicated);
    println!("\nper-kernel service statistics:");
    for k in &report.kernels {
        println!("  {:24} runs={:8} busy={:?}", k.name, k.runs, k.busy);
    }
    println!("\nper-stream telemetry:");
    for e in &report.edges {
        println!(
            "  {:44} items={:7} cap={:6} mean_occ={:8.1} resizes={}",
            e.name, e.stats.popped, e.stats.capacity, e.stats.mean_occupancy, e.stats.resizes
        );
    }
    if !report.resize_events.is_empty() {
        println!("\nresize log (first 10):");
        for ev in report.resize_events.iter().take(10) {
            println!(
                "  t={:9.3?} {:44} {} -> {} ({:?})",
                ev.at, ev.edge_name, ev.old_capacity, ev.new_capacity, ev.reason
            );
        }
    }
    if !report.width_events.is_empty() {
        println!("\nwidth changes:");
        for ev in &report.width_events {
            println!(
                "  t={:9.3?} {} {} -> {}",
                ev.at, ev.split, ev.old_width, ev.new_width
            );
        }
    }
}
