//! Distributed execution: two "nodes" joined by a TCP stream link and the
//! "oar" info mesh (§4.1).
//!
//! Node A generates numbers and squares them; the stream then crosses a
//! real TCP socket to node B, which filters and folds. Both nodes also run
//! oar mesh members that discover each other and exchange system info —
//! the feed the paper's continuous optimizer consumes. In the paper's
//! words: "the same code can be run on multi-cores in a distributed network
//! without the programmer having to do anything differently."
//!
//! ```sh
//! cargo run --example distributed
//! ```

use std::time::Duration;

use raft_kernels::{Fold, Generate, Map};
use raft_net::{tcp_bridge, OarNode};
use raftlib::prelude::*;

fn main() {
    const N: u64 = 10_000;

    // --- the oar mesh -------------------------------------------------------
    let node_a = OarNode::start("node-a", "127.0.0.1:0", 4, Duration::from_millis(20))
        .expect("start node-a");
    let node_b = OarNode::start("node-b", "127.0.0.1:0", 8, Duration::from_millis(20))
        .expect("start node-b");
    node_a.add_peer("node-b", node_b.addr().to_string());
    let peers = node_a.await_peers(1, Duration::from_secs(5));
    println!("node-a discovered peers: {peers:?}");
    let topo = node_a.cluster_topology(Duration::from_secs(5), 100, 50_000);
    println!("cluster capacity from mesh view: {} cores", topo.capacity());

    // --- the stream link -----------------------------------------------------
    let (tcp_out, tcp_in) = tcp_bridge::<u64>().expect("bridge");

    // Node A: generate -> square -> tcp-out
    let a = std::thread::spawn(move || {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..N));
        let square = map.add(Map::new(|x: u64| x * x));
        let out = map.add(tcp_out);
        map.link(src, "out", square, "in").unwrap();
        map.link(square, "out", out, "in").unwrap();
        map.exe().unwrap()
    });

    // Node B: tcp-in -> keep multiples of 3 -> fold
    let b = std::thread::spawn(move || {
        let mut map = RaftMap::new();
        let src = map.add(tcp_in);
        let keep = map.add(raft_kernels::FilterMap::new(|x: u64| {
            x.is_multiple_of(3).then_some(x)
        }));
        let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
        let sink = map.add(fold);
        map.link(src, "out", keep, "in").unwrap();
        map.link(keep, "out", sink, "in").unwrap();
        map.exe().unwrap();
        let result = *total.lock().unwrap();
        result
    });

    let report_a = a.join().expect("node A");
    let total = b.join().expect("node B");

    // ground truth: Σ i² for i in 0..N where i² % 3 == 0 (i.e. i % 3 == 0)
    let expected: u64 = (0..N).map(|i| i * i).filter(|x| x % 3 == 0).sum();
    println!("distributed fold result = {total} (expected {expected})");
    assert_eq!(total, expected);
    println!(
        "node A pushed {} items across {} local streams in {:?}",
        report_a.total_items(),
        report_a.edges.len(),
        report_a.elapsed
    );
    node_a.set_load(0);
    node_b.set_load(0);
}
