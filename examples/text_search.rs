//! The paper's §5 text-search application (topology of Figures 8–9).
//!
//! A file-reader kernel distributes the corpus zero-copy to N replicated
//! match kernels; per-chunk hit counts flow through a fused tail (count,
//! drop zeroes) to the collector. Both search algorithms of the paper are
//! available, plus runtime algorithm hot-swap (§4.2's "synonymous kernel
//! groupings"). The fusion pass collapses the stateless tail stages into
//! one batch-executed kernel — the fused layout is printed from the
//! execution report, and `RAFT_FUSION=0` A/Bs the unfused graph.
//!
//! ```sh
//! cargo run --release --example text_search -- [ac|bmh] [corpus-mb] [width]
//! ```

use std::sync::Arc;
use std::time::Instant;

use raft_algos::corpus::{generate, CorpusSpec};
use raft_algos::{AhoCorasick, Horspool, Match, Matcher};
use raft_kernels::{write_each, ByteChunk, ByteChunkSource, FilterMap, Map};
use raftlib::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let algo = args.get(1).map(String::as_str).unwrap_or("bmh");
    let corpus_mb: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let width: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);

    // --- corpus (substitute for the paper's 30 GB RAM-disk dump) ---------
    eprintln!("generating {corpus_mb} MB corpus ...");
    let spec = CorpusSpec {
        size: corpus_mb << 20,
        matches_per_mb: 25.0,
        ..Default::default()
    };
    let corpus = generate(&spec);
    let expected = corpus.planted.len();
    let needle = corpus.needle.clone();
    let data = Arc::new(corpus.data);
    eprintln!(
        "corpus: {} bytes, needle {:?}, {} planted matches",
        data.len(),
        String::from_utf8_lossy(&needle),
        expected
    );

    // --- matcher selection (the paper's template parameter) ---------------
    let matcher: Arc<dyn Matcher> = match algo {
        "ac" => Arc::new(AhoCorasick::new(&[&needle])),
        "bmh" => Arc::new(Horspool::new(&needle)),
        other => {
            eprintln!("unknown algorithm {other:?}; use ac or bmh");
            std::process::exit(2);
        }
    };

    // --- Figure 9's topology ----------------------------------------------
    let overlap = matcher.overlap();
    let mut map = RaftMap::new();
    let filereader = map.add(ByteChunkSource::new(data, 1 << 20, overlap));
    let m = matcher.clone();
    let search = map.add(Map::new(move |chunk: ByteChunk| {
        let mut found: Vec<Match> = Vec::new();
        m.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
        found
    }));
    // Fusable tail: count hits per chunk, drop chunks with none. Both are
    // stateless one-in/one-out stages, so they run as one fused kernel.
    let tally = map.add(Map::new(|found: Vec<Match>| found.len() as u64));
    let nonzero = map.add(FilterMap::new(|n: u64| (n > 0).then_some(n)));
    let (we, hits) = write_each::<u64>();
    let collect = map.add(we);

    // Unordered links mark the streams replication-safe (§4.1).
    map.link_unordered(filereader, "out", search, "in")
        .expect("link search");
    map.link_unordered(search, "out", tally, "in")
        .expect("link tally");
    map.link_unordered(tally, "out", nonzero, "in")
        .expect("link nonzero");
    map.link_unordered(nonzero, "out", collect, "in")
        .expect("link collect");
    map.prefer_width(search, width);

    let t0 = Instant::now();
    let report = map.exe().expect("execution");
    let dt = t0.elapsed();

    let total_hits: usize = hits.lock().unwrap().iter().sum::<u64>() as usize;
    let gb = (corpus_mb as f64) / 1024.0;
    println!(
        "algorithm={algo} width={width} corpus={corpus_mb}MB matches={total_hits} \
         (expected {expected}) time={dt:?} throughput={:.3} GB/s",
        gb / dt.as_secs_f64()
    );
    assert_eq!(total_hits, expected, "match count mismatch!");
    eprintln!(
        "replicated: {:?}; total stream items: {}",
        report.replicated,
        report.total_items()
    );
    if report.fused.is_empty() {
        eprintln!("fused groups: none (RAFT_FUSION=0, or no eligible chain)");
    } else {
        for g in &report.fused {
            eprintln!(
                "fused: {} ({} batches of <= {} items, {} -> {} items)",
                g.members.join(" -> "),
                g.batches,
                g.batch,
                g.items_in,
                g.items_out
            );
        }
    }
}
