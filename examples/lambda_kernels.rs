//! Lambda kernels (§4.2, Figure 7): full kernels from closures.
//!
//! The paper's Figure 7 builds a random-number source as a lambda kernel
//! feeding a print kernel. This example reproduces that and goes one step
//! further: a lambda *map* stage that is `Clone`, so the auto-parallelizer
//! can replicate it.
//!
//! ```sh
//! cargo run --example lambda_kernels
//! ```

use rand::{rngs::StdRng, Rng, SeedableRng};

use raft_kernels::{write_each, Print};
use raftlib::prelude::*;

fn main() {
    // --- Figure 7: lambda random-number source -> print -------------------
    let mut rng = StdRng::seed_from_u64(0xF16);
    let mut remaining = 5u32;
    let mut map = RaftMap::new();
    let source = map.add(lambda_source(move || {
        if remaining == 0 {
            return None;
        }
        remaining -= 1;
        Some(rng.gen::<u32>())
    }));
    let print = map.add(Print::<u32>::new('\n'));
    map.link(source, "0", print, "in").expect("link");
    println!("five random numbers via a lambda kernel:");
    map.exe().expect("execution");

    // --- a replicable lambda map stage -------------------------------------
    let mut map = RaftMap::new();
    let mut n = 0u64;
    let source = map.add(lambda_source(move || {
        n += 1;
        (n <= 100_000).then_some(n)
    }));
    // `lambda_map` closures that are Clone make the kernel replicable.
    let stage = map.add(lambda_map(|x: u64| x.wrapping_mul(2654435761) >> 7));
    let (we, out) = write_each::<u64>();
    let sink = map.add(we);
    map.link_unordered(source, "0", stage, "0").expect("link");
    map.link_unordered(stage, "0", sink, "in").expect("link");
    map.prefer_width(stage, 3);
    let report = map.exe().expect("execution");
    println!(
        "\nlambda map stage processed {} items across {:?} replicas in {:?}",
        out.lock().unwrap().len(),
        report.replicated,
        report.elapsed
    );

    // --- the general form: explicit ports, raw Context ---------------------
    let mut map = RaftMap::new();
    let src_a = map.add(lambda_source({
        let mut i = 0i64;
        move || {
            i += 1;
            (i <= 3).then_some(i)
        }
    }));
    let src_b = map.add(lambda_source({
        let mut i = 0i64;
        move || {
            i += 1;
            (i <= 3).then_some(i * 1000)
        }
    }));
    // Two inputs, one output — the lambda analog of the sum kernel.
    let sum = map.add(LambdaKernel::new(
        || {
            PortSpec::new()
                .input::<i64>("0")
                .input::<i64>("1")
                .output::<i64>("0")
        },
        |ctx: &Context| {
            let mut a = ctx.input::<i64>("0");
            let mut b = ctx.input::<i64>("1");
            match (a.pop(), b.pop()) {
                (Ok(x), Ok(y)) => {
                    drop((a, b));
                    let mut out = ctx.output::<i64>("0");
                    if out.push(x + y).is_err() {
                        return KStatus::Stop;
                    }
                    KStatus::Proceed
                }
                _ => KStatus::Stop,
            }
        },
    ));
    let print = map.add(Print::<i64>::new('\n'));
    map.link(src_a, "0", sum, "0").expect("link");
    map.link(src_b, "0", sum, "1").expect("link");
    map.link(sum, "0", print, "in").expect("link");
    println!("\nlambda sum kernel (general form):");
    map.exe().expect("execution");
}
