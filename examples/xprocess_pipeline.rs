//! Two OS processes joined by shared-memory zero-copy links, run under
//! the process supervisor.
//!
//! The parent runs a RaftMap graph that generates text records, stages
//! each one in a shared-memory arena, and streams 16-byte descriptors
//! through an shm-backed SPSC ring via [`DescShip`]. A *separate worker
//! process* (this same binary, re-executed with `--worker`) attaches the
//! segments by inherited file descriptor, parses the records in place —
//! the payload bytes are never copied between the processes — and ships
//! per-record results back on a second ring.
//!
//! The worker runs under [`ProcSupervisor`]: a heartbeat word in the
//! descriptor ring's header proves liveness (futex-parked watcher, no
//! polling), and a crashed worker is reaped, its segment roles reclaimed
//! by generation bump, and a replacement respawned which resumes from
//! the journaled replay window. Set `RAFT_XPROC_KILL_SEED=<n>` to make
//! the first worker incarnation SIGKILL itself mid-stream at a seeded
//! offset; the run still completes with the exact fault-free sum because
//! consumed-but-uncommitted records are replayed to the replacement and
//! the parent deduplicates results by sequence number.
//!
//! ```sh
//! cargo run --release --example xprocess_pipeline
//! RAFT_XPROC_KILL_SEED=42 cargo run --release --example xprocess_pipeline
//! ```

use std::process::Command;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use raft_buffer::arena::{DescriptorSender, ShmArena};
use raft_buffer::shm::{ShmItem, ShmRing, ShmSegment};
use raft_buffer::{Descriptor, TryPopError};
use raft_kernels::DescShip;
use raftlib::prelude::*;
use raftlib::{report, DescLink, SegmentLink};

const RECORDS: u64 = 50_000;
const RING_CAP: usize = 256;
const ARENA_SLOTS: usize = 512;
const SLOT_SIZE: usize = 64;
const RESULT_CAP: usize = 1024;
/// Journal bound: comfortably above the maximum unacked window (bounded
/// by arena slots in flight plus ring occupancy).
const JOURNAL_BOUND: usize = 2048;

/// One per-record result shipped worker → parent. `seq` is the worker's
/// commit cursor for the record (its position in the descriptor stream),
/// which the parent uses to deduplicate replays: a worker that dies
/// between publishing a result and committing it will re-emit the same
/// `seq` after respawn.
#[repr(C)]
#[derive(Clone, Copy)]
struct ResultRec {
    seq: u64,
    value: u64,
}

// SAFETY: ResultRec is Copy, repr(C), contains only u64s (no padding,
// no pointers, any bit pattern valid), so it round-trips through shared
// memory byte-wise.
unsafe impl ShmItem for ResultRec {}

fn main() {
    let mut args = std::env::args();
    let _exe = args.next();
    if args.next().as_deref() == Some("--worker") {
        let ring_fd: i32 = args.next().expect("ring fd").parse().expect("ring fd");
        let arena_fd: i32 = args.next().expect("arena fd").parse().expect("arena fd");
        let result_fd: i32 = args.next().expect("result fd").parse().expect("result fd");
        worker(ring_fd, arena_fd, result_fd);
        return;
    }
    if !ShmSegment::memfd_supported() {
        println!("memfd_create unavailable; skipping cross-process demo");
        return;
    }
    parent();
}

/// Derive the kill offset from a chaos seed: an xorshift step over the
/// seed, mapped into the first half of the stream so the crash always
/// lands mid-flight.
fn kill_offset(seed: u64) -> u64 {
    let mut x = seed ^ 0xcbf2_9ce4_8422_2325;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    1 + x % (RECORDS / 2)
}

/// Deliver SIGKILL to ourselves: no drop glue, no atexit, no chance to
/// flip close flags — exactly what the supervisor must tolerate.
fn die_hard() -> ! {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        // SYS_kill = 62.
        let mut nr: u64 = 62;
        // SAFETY: kill(getpid(), SIGKILL) targets only this process and
        // never returns; registers follow the x86-64 syscall ABI
        // (rcx/r11 clobbered by the instruction).
        unsafe {
            std::arch::asm!(
                "syscall",
                inout("rax") nr,
                in("rdi") u64::from(std::process::id()),
                in("rsi") 9u64, // SIGKILL
                out("rcx") _,
                out("r11") _,
            );
        }
        let _ = nr;
    }
    // Fallback (and unreachable-on-Linux tail): abort still skips all
    // drop glue.
    std::process::abort();
}

fn parent() {
    let kill_seed = std::env::var("RAFT_XPROC_KILL_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok());

    let (ring, ring_fd) =
        ShmRing::<Descriptor>::create_producer(RING_CAP).expect("create ring segment");
    let (tx, arena_fd) = ShmArena::create_tx(ARENA_SLOTS, SLOT_SIZE).expect("create arena");
    let (mut results, result_fd) =
        ShmRing::<ResultRec>::create_consumer(RESULT_CAP).expect("create result ring");

    let sender = Arc::new(Mutex::new(DescriptorSender::new(tx, ring, JOURNAL_BOUND)));
    let hb_seg = sender.lock().unwrap().ring_segment_shared();
    let result_seg = results.segment_shared();

    // memfd descriptors are created without CLOEXEC, so every worker
    // incarnation inherits them at the same numbers we pass on its
    // command line. The factory receives the attempt number; the worker
    // uses it to fire the seeded self-kill only on its first life.
    let exe = std::env::current_exe().expect("current exe");
    let factory = move |attempt: u32| {
        let mut cmd = Command::new(&exe);
        cmd.arg("--worker")
            .arg(ring_fd.to_string())
            .arg(arena_fd.to_string())
            .arg(result_fd.to_string())
            .env("RAFT_XPROC_ATTEMPT", attempt.to_string());
        cmd
    };

    let mut sup = ProcSupervisor::new();
    sup.spawn(
        WorkerSpec::new("xproc-worker", factory)
            .policy(ProcPolicy::Restart {
                max_restarts: 5,
                backoff: Duration::from_millis(10),
            })
            .wedge_timeout(Duration::from_secs(10))
            .link(DescLink::new(sender.clone()))
            .link(SegmentLink::new(result_seg, true))
            .heartbeat_on(hb_seg),
    )
    .expect("spawn worker");
    let terminal = sup.terminal_flag();

    // Collector: drains the result ring, deduplicating by sequence
    // number. Termination is count-based, not end-of-stream-based: the
    // supervisor's reap path transiently sets close flags on the result
    // ring during a respawn, so `Closed` only ends the run once the
    // supervisor says the worker is terminally gone.
    let tflag = terminal.clone();
    let collector = std::thread::spawn(move || {
        let mut seen = vec![false; RECORDS as usize];
        let mut distinct = 0u64;
        let mut sum = 0u64;
        let mut dupes = 0u64;
        while distinct < RECORDS {
            match results.try_pop() {
                Ok(r) => {
                    let i = r.seq as usize;
                    if i < seen.len() && !seen[i] {
                        seen[i] = true;
                        distinct += 1;
                        sum += r.value;
                    } else {
                        dupes += 1;
                    }
                }
                Err(TryPopError::Empty) => std::thread::sleep(Duration::from_micros(200)),
                Err(TryPopError::Closed) => {
                    if tflag.load(Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        (distinct, sum, dupes)
    });

    // The parent half is an ordinary RaftMap graph; the process boundary
    // hides behind the DescShip sink.
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(raftlib::lambda::lambda_source(move || {
        i += 1;
        (i <= RECORDS).then_some(i)
    }));
    let ship = map.add(DescShip::new(
        sender.clone(),
        |v: &u64, buf: &mut Vec<u8>| {
            buf.extend_from_slice(format!("value:{v}\n").as_bytes());
        },
        Some(terminal.clone()),
    ));
    map.link(src, "0", ship, "in").unwrap();
    let started = Instant::now();
    let mut exe_report = map.exe().expect("parent graph");

    // Every record is journaled and pushed. Wait for the worker to
    // commit them all (acks drain the replay window), then signal
    // end-of-stream by closing the producer side of the descriptor ring.
    loop {
        {
            let mut s = sender.lock().unwrap();
            s.ack_committed();
            if s.pending() == 0 && !s.recovering() {
                break;
            }
        }
        if terminal.load(Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    {
        let s = sender.lock().unwrap();
        let seg = s.ring_segment();
        seg.producer_closed().store(1, Release);
        seg.consumer_waker().notify();
    }

    let (distinct, sum, dupes) = collector.join().expect("collector thread");
    let procs = sup.join(Duration::from_secs(60));
    exe_report.procs = procs;

    let expected: u64 = (1..=RECORDS).filter(|v| v % 2 == 0).sum();
    assert_eq!(
        distinct, RECORDS,
        "collector saw {distinct}/{RECORDS} distinct records"
    );
    assert_eq!(sum, expected, "worker sum mismatch");

    println!(
        "parent: {} records shipped as {}-byte descriptors in {:?}",
        RECORDS,
        std::mem::size_of::<Descriptor>(),
        started.elapsed()
    );
    if let Some(seed) = kill_seed {
        println!(
            "chaos: seed {} killed the worker after {} records; replay re-delivered the window",
            seed,
            kill_offset(seed)
        );
    }
    println!(
        "worker: sum of even records = {sum} (expected {expected}, {dupes} replays deduplicated) ✓"
    );
    print!("{}", report::render(&exe_report));
}

/// The worker process: attach the segments by inherited fd, then parse
/// and filter records in place until the parent closes the ring.
///
/// The exactly-once contract per record: pop the descriptor, resolve and
/// process the payload, *publish the result*, then advance the commit
/// word, then free the arena slot, then beat the heartbeat. A crash
/// before the commit means the record is replayed to the replacement (a
/// duplicate result is possible — the parent dedups by `seq`); a crash
/// after means the parent acks it and never re-sends it.
fn worker(ring_fd: i32, arena_fd: i32, result_fd: i32) {
    let mut ring = ShmRing::<Descriptor>::attach_consumer(ring_fd).expect("attach ring");
    let mut rx = ShmArena::attach_rx(arena_fd).expect("attach arena");
    let mut results = ShmRing::<ResultRec>::attach_producer(result_fd).expect("attach results");
    let seg = ring.segment_shared();

    let attempt: u32 = std::env::var("RAFT_XPROC_ATTEMPT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let chaos = std::env::var("RAFT_XPROC_KILL_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(kill_offset);

    // Resume point: the commit word survives us. A replacement worker
    // starts numbering where its predecessor's last committed record
    // left off, which is exactly where the parent's replay restarts.
    let mut seq = seg.commit_word().load(Acquire);
    let mut processed_this_run = 0u64;

    loop {
        // Beat per iteration — on the hot path and on empty polls — so
        // the watcher sees progress even when the stream stalls.
        seg.heartbeat().beat();
        match ring.try_pop() {
            Ok(d) => {
                let value = rx
                    .resolve(&d)
                    .ok()
                    .and_then(|bytes| {
                        std::str::from_utf8(bytes)
                            .ok()?
                            .trim_end()
                            .strip_prefix("value:")?
                            .parse::<u64>()
                            .ok()
                    })
                    .unwrap_or(0);
                let rec = ResultRec {
                    seq,
                    value: if value.is_multiple_of(2) { value } else { 0 },
                };
                if results.push(rec).is_err() {
                    break; // parent collector gone; nothing left to do
                }
                // The seeded crash lands in the nastiest window: result
                // published, commit not yet advanced. The replacement
                // re-processes this record and re-emits the same `seq`;
                // the parent's dedup makes it count once.
                if attempt == 0 && chaos == Some(processed_this_run + 1) {
                    die_hard();
                }
                seg.commit_word().store(seq + 1, Release);
                let _ = rx.free(d);
                seq += 1;
                processed_this_run += 1;
            }
            Err(TryPopError::Empty) => std::thread::sleep(Duration::from_micros(200)),
            Err(TryPopError::Closed) => break,
        }
    }
}
