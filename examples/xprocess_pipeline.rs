//! Two OS processes joined by shared-memory zero-copy links.
//!
//! The parent runs a RaftMap graph that generates text records, stages
//! each one in a shared-memory arena, and streams 16-byte descriptors
//! through an shm-backed SPSC ring. A *separate worker process* (this
//! same binary, re-executed with `--worker`) attaches both segments by
//! inherited file descriptor, parses and filters the records in place —
//! the payload bytes are never copied between the processes — and
//! reports its sum on stdout. The parent supervises the worker under a
//! watchdog: a wedged child is killed, not waited on forever.
//!
//! The link protocol is the in-process FIFO's (cached indices, single
//! release publish); blocking sides park on a cross-process futex. On
//! platforms without `memfd_create` the example skips gracefully.
//!
//! ```sh
//! cargo run --release --example xprocess_pipeline
//! ```

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use raft_buffer::arena::{ArenaTx, Descriptor, ShmArena};
use raft_buffer::shm::{ShmRing, ShmRingProducer, ShmSegment};
use raftlib::prelude::*;

const RECORDS: u64 = 50_000;
const RING_CAP: usize = 256;
const ARENA_SLOTS: usize = 512;
const SLOT_SIZE: usize = 64;
const WATCHDOG: Duration = Duration::from_secs(30);

fn main() {
    let mut args = std::env::args();
    let _exe = args.next();
    if args.next().as_deref() == Some("--worker") {
        let ring_fd: i32 = args.next().expect("ring fd").parse().expect("ring fd");
        let arena_fd: i32 = args.next().expect("arena fd").parse().expect("arena fd");
        worker(ring_fd, arena_fd);
        return;
    }
    if !ShmSegment::memfd_supported() {
        println!("memfd_create unavailable; skipping cross-process demo");
        return;
    }
    parent();
}

/// Source-side kernel: takes generated values, formats each as a
/// `value:N` text record staged directly in the arena, and pushes the
/// descriptor into the cross-process ring.
struct StageAndShip {
    tx: ArenaTx,
    ring: ShmRingProducer<Descriptor>,
}

impl Kernel for StageAndShip {
    fn ports(&self) -> PortSpec {
        PortSpec::new().input::<u64>("in")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut input = ctx.input::<u64>("in");
        let v = match input.pop() {
            Ok(v) => v,
            Err(_) => return KStatus::Stop,
        };
        let text = format!("value:{v}\n");
        // Physical back-pressure: no free slot means the worker process
        // is behind; spin-yield until it recycles one.
        let d = loop {
            match self.tx.push_bytes(text.as_bytes()) {
                Some(d) => break d,
                None => std::thread::yield_now(),
            }
        };
        // Blocking push parks on the cross-process futex when the ring
        // stays full.
        if self.ring.push(d).is_err() {
            return KStatus::Stop; // worker died; stop producing
        }
        KStatus::Proceed
    }

    fn name(&self) -> String {
        "stage-and-ship".to_string()
    }
}

fn parent() {
    let (ring, ring_fd) =
        ShmRing::<Descriptor>::create_producer(RING_CAP).expect("create ring segment");
    let (tx, arena_fd) = ShmArena::create_tx(ARENA_SLOTS, SLOT_SIZE).expect("create arena");

    // memfd descriptors are created without CLOEXEC, so the worker
    // inherits them at the same numbers we pass on its command line.
    let child = Command::new(std::env::current_exe().expect("current exe"))
        .arg("--worker")
        .arg(ring_fd.to_string())
        .arg(arena_fd.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn worker");

    // The parent half is an ordinary RaftMap graph; the process boundary
    // hides behind one sink kernel.
    let mut map = RaftMap::new();
    let mut i = 0u64;
    let src = map.add(raftlib::lambda::lambda_source(move || {
        i += 1;
        (i <= RECORDS).then_some(i)
    }));
    let ship = map.add(StageAndShip { tx, ring });
    map.link(src, "0", ship, "in").unwrap();
    let started = Instant::now();
    let report = map.exe().expect("parent graph");
    // `StageAndShip` dropped with the map: the ring's closed flag is set
    // and the futex notified, so the worker drains and exits.

    let out = supervise(child, WATCHDOG);
    let sum: u64 = out
        .lines()
        .find_map(|l| l.strip_prefix("sum=").and_then(|s| s.parse().ok()))
        .expect("worker reported no sum");
    let expected: u64 = (1..=RECORDS).filter(|v| v % 2 == 0).sum();
    assert_eq!(sum, expected, "worker sum mismatch");
    println!(
        "parent: {} records ({} bytes staged) shipped as {}-byte descriptors in {:?}",
        RECORDS,
        report.total_items() * 12, // ~"value:N\n"
        std::mem::size_of::<Descriptor>(),
        started.elapsed()
    );
    println!("worker: sum of even records = {sum} (expected {expected}) ✓");
}

/// Wait for the child under a deadline; kill it if the deadline passes.
fn supervise(mut child: std::process::Child, deadline: Duration) -> String {
    let started = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                let mut out = String::new();
                use std::io::Read as _;
                if let Some(mut stdout) = child.stdout.take() {
                    let _ = stdout.read_to_string(&mut out);
                }
                assert!(status.success(), "worker failed: {status:?}\n{out}");
                return out;
            }
            None if started.elapsed() > deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("watchdog: worker exceeded {deadline:?}, killed");
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The worker process: attach both segments by inherited fd, then parse
/// and filter records in place until the parent closes the ring.
fn worker(ring_fd: i32, arena_fd: i32) {
    let mut ring = ShmRing::<Descriptor>::attach_consumer(ring_fd).expect("attach ring");
    let mut rx = ShmArena::attach_rx(arena_fd).expect("attach arena");
    let mut sum = 0u64;
    let mut seen = 0u64;
    // Blocking pop: parks on the futex while the ring is empty, returns
    // Err once the producer closed and the ring drained.
    while let Ok(d) = ring.pop() {
        // Parse the record bytes *in the parent's segment* — this worker
        // never copies the payload.
        if let Ok(bytes) = rx.resolve(&d) {
            let text = std::str::from_utf8(bytes).unwrap_or("");
            if let Some(v) = text
                .trim_end()
                .strip_prefix("value:")
                .and_then(|s| s.parse::<u64>().ok())
            {
                if v % 2 == 0 {
                    sum += v;
                }
            }
            seen += 1;
        }
        // Recycle the slot; the parent's next alloc reuses it.
        let _ = rx.free(d);
    }
    let mut stdout = std::io::stdout();
    writeln!(stdout, "seen={seen}").unwrap();
    writeln!(stdout, "sum={sum}").unwrap();
}
