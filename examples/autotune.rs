//! Model-driven tuning — the paper's continuous-optimization loop (§4.1):
//! measure per-kernel service rates, feed them into the flow model, search
//! the replication space with simulated annealing, then run the tuned
//! configuration.
//!
//! Steps:
//! 1. calibration run (width 1) → measured service statistics per kernel;
//! 2. flow-model construction from those rates;
//! 3. simulated annealing over replica counts under a core budget,
//!    maximizing modeled throughput;
//! 4. production run with the chosen widths; compare against the model.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use raft_kernels::{Count, Generate, Map};
use raft_model::anneal::{minimize, AnnealConfig, ParamRange};
use raft_model::flow::{FlowGraph, FlowKernel};
use raftlib::prelude::*;

const N: u64 = 100_000;

fn work_fn(spins: u64) -> impl FnMut(u64) -> u64 + Clone {
    move |x: u64| std::hint::black_box((0..spins).fold(x, |a, b| a.wrapping_add(b ^ x)))
}

fn run(width_a: u32, width_b: u32) -> raftlib::ExeReport {
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..N).with_batch(256));
    let heavy = map.add(Map::new(work_fn(300))); // the bottleneck stage
    let light = map.add(Map::new(work_fn(60)));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link_unordered(src, "out", heavy, "in").expect("link");
    map.link_unordered(heavy, "out", light, "in").expect("link");
    map.link_unordered(light, "out", sink, "in").expect("link");
    map.prefer_width(heavy, width_a);
    map.prefer_width(light, width_b);
    let report = map.exe().expect("run");
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), N);
    report
}

fn service_rate(report: &raftlib::ExeReport, kernel: &str, items: u64) -> f64 {
    let k = report.kernel(kernel).expect("kernel in report");
    let busy = k.busy.as_secs_f64();
    if busy <= 0.0 {
        f64::INFINITY
    } else {
        items as f64 / busy
    }
}

fn main() {
    // --- 1. calibration -----------------------------------------------------
    println!("calibration run (all widths 1)...");
    let cal = run(1, 1);
    let mu_heavy = service_rate(&cal, "map#1", N);
    let mu_light = service_rate(&cal, "map#2", N);
    println!(
        "measured service rates: heavy={mu_heavy:.0} items/s, light={mu_light:.0} items/s \
         (calibration took {:?})",
        cal.elapsed
    );

    // --- 2 & 3. flow model + annealing over widths --------------------------
    let budget: i64 = 6; // total replica budget across both stages
    let modeled = |wa: i64, wb: i64| -> f64 {
        let mut g = FlowGraph::new();
        let src = g.add_kernel(FlowKernel::new("src", f64::INFINITY, 1.0));
        let heavy = g.add_kernel(FlowKernel::new("heavy", mu_heavy, 1.0).with_replicas(wa as u32));
        let light = g.add_kernel(FlowKernel::new("light", mu_light, 1.0).with_replicas(wb as u32));
        g.add_edge(src, heavy);
        g.add_edge(heavy, light);
        g.set_source_rate(src, f64::INFINITY);
        g.analyze().throughput
    };
    let ranges = vec![ParamRange::new(1, budget), ParamRange::new(1, budget)];
    let result = minimize(&ranges, &[1, 1], AnnealConfig::default(), |p| {
        if p[0] + p[1] > budget {
            return 1e18;
        }
        -modeled(p[0], p[1])
    });
    let (wa, wb) = (result.best[0] as u32, result.best[1] as u32);
    println!(
        "annealing chose widths heavy={wa}, light={wb} \
         (modeled throughput {:.0} items/s, {} cost evaluations)",
        -result.best_cost, result.evaluations
    );

    // --- 4. production run ---------------------------------------------------
    println!("tuned run...");
    let tuned = run(wa, wb);
    println!(
        "tuned run finished in {:?} (calibration was {:?}); replicated: {:?}",
        tuned.elapsed, cal.elapsed, tuned.replicated
    );
    let measured_throughput = N as f64 / tuned.elapsed.as_secs_f64();
    println!(
        "measured throughput {measured_throughput:.0} items/s vs modeled {:.0} items/s",
        -result.best_cost
    );
    println!(
        "note: on a single-core host the measured gain is bounded by real \
         parallelism; the modeled number is what the tuned widths deliver \
         once cores exist — exactly how the paper uses the flow model."
    );
}
