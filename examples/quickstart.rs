//! Quickstart: the paper's Figures 1–3 "sum" application.
//!
//! Two generator kernels each produce a stream of numbers; a `sum` kernel
//! adds pairs; a `print` kernel writes the results. Each kernel is written
//! sequentially — the runtime supplies the parallelism.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use raft_kernels::{Generate, Print};
use raftlib::prelude::*;

/// The paper's Figure 2 kernel: two typed input ports, one output port,
/// declared in the constructor-analog (`ports`), used in `run`.
struct Sum;

impl Kernel for Sum {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<i64>("input_a")
            .input::<i64>("input_b")
            .output::<i64>("sum")
    }

    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut a = ctx.input::<i64>("input_a");
        let mut b = ctx.input::<i64>("input_b");
        match (a.pop(), b.pop()) {
            (Ok(x), Ok(y)) => {
                drop((a, b));
                let mut out = ctx.output::<i64>("sum");
                if out.push(x + y).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            // An input closed: we are done.
            _ => KStatus::Stop,
        }
    }
}

fn main() {
    const COUNT: i64 = 10;

    // The paper's Figure 3, in Rust: make kernels, link ports, exe().
    let mut map = RaftMap::new();
    let gen_a = map.add(Generate::new(0..COUNT));
    let gen_b = map.add(Generate::new((0..COUNT).map(|x| x * 100)));
    let sum = map.add(Sum);
    let print = map.add(Print::<i64>::new('\n'));

    map.link(gen_a, "out", sum, "input_a").expect("link a");
    map.link(gen_b, "out", sum, "input_b").expect("link b");
    map.link(sum, "sum", print, "in").expect("link print");

    // Static analysis before running: `exe()` repeats this itself and
    // refuses on errors, but calling `check()` directly also surfaces
    // warnings (e.g. RC0007 capacity advisories) this clean graph won't hit.
    let diagnostics = map.check();
    if diagnostics.is_empty() {
        eprintln!(
            "graph check: clean ({} lint passes)",
            raftlib::passes().len()
        );
    }
    for d in &diagnostics {
        eprintln!("graph check: {d}");
    }

    let report = map.exe().expect("execution");

    eprintln!("\n--- run report ---");
    eprintln!("elapsed: {:?}", report.elapsed);
    for e in &report.edges {
        eprintln!(
            "stream {:40} items={} capacity={} resizes={}",
            e.name, e.stats.popped, e.stats.capacity, e.stats.resizes
        );
    }
}
