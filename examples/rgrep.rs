//! `rgrep` — a small real-world grep built on the raftlib-rs text-search
//! pipeline (the application §5 benchmarks, usable on your own files).
//!
//! Reads a file (or generates a demo corpus when no path is given),
//! searches it with the Figure 8 topology — zero-copy chunk source,
//! replicated match kernels, a fused post-processing tail, merge — and
//! prints `offset:line` for each hit.
//!
//! The stages after the scan (extract offsets, drop empty chunks) are
//! stateless one-in/one-out transforms, so the fusion pass collapses them
//! into one batch-executed kernel; the fused layout is printed from the
//! execution report. `RAFT_FUSION=0` runs the same graph unfused for A/B.
//!
//! ```sh
//! cargo run --release --example rgrep -- <pattern> [path] [--algo ac|bmh|rk|mm] [--width N]
//! ```

use std::sync::Arc;
use std::time::Instant;

use raft_algos::{AhoCorasick, Horspool, Match, Matcher, MemMem, RabinKarp};
use raft_kernels::{write_each, ByteChunk, ByteChunkSource, FilterMap, Map};
use raftlib::prelude::*;

struct Args {
    pattern: String,
    path: Option<String>,
    algo: String,
    width: u32,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let pattern = args.next()?;
    let mut parsed = Args {
        pattern,
        path: None,
        algo: "bmh".to_string(),
        width: 2,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--algo" => parsed.algo = args.next()?,
            "--width" => parsed.width = args.next()?.parse().ok()?,
            p => parsed.path = Some(p.to_string()),
        }
    }
    Some(parsed)
}

fn main() {
    let Some(args) = parse_args() else {
        eprintln!("usage: rgrep <pattern> [path] [--algo ac|bmh|rk|mm] [--width N]");
        std::process::exit(2);
    };

    let data: Arc<Vec<u8>> = match &args.path {
        Some(p) => Arc::new(std::fs::read(p).unwrap_or_else(|e| {
            eprintln!("rgrep: {p}: {e}");
            std::process::exit(1);
        })),
        None => {
            eprintln!("no file given; searching a generated demo corpus");
            let c = raft_algos::corpus::generate(&raft_algos::corpus::CorpusSpec {
                size: 4 << 20,
                needle: args.pattern.clone().into_bytes(),
                matches_per_mb: 5.0,
                ..Default::default()
            });
            Arc::new(c.data)
        }
    };

    let matcher: Arc<dyn Matcher> = match args.algo.as_str() {
        "ac" => Arc::new(AhoCorasick::new(&[args.pattern.as_bytes()])),
        "bmh" => Arc::new(Horspool::new(&args.pattern)),
        "rk" => Arc::new(RabinKarp::new(&[args.pattern.as_bytes()])),
        // SIMD rare-byte scanner (AVX2/SSE2/scalar picked at runtime)
        "mm" => Arc::new(MemMem::new(&args.pattern)),
        other => {
            eprintln!("rgrep: unknown algorithm {other:?}");
            std::process::exit(2);
        }
    };

    // Figure 8 topology, with a fusable post-processing tail.
    let overlap = matcher.overlap();
    let mut map = RaftMap::new();
    let reader = map.add(ByteChunkSource::new(data.clone(), 1 << 20, overlap));
    let m = matcher.clone();
    let search = map.add(Map::new(move |chunk: ByteChunk| {
        let mut found: Vec<Match> = Vec::new();
        m.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
        found
    }));
    // These two stages fuse: stateless, one-in/one-out, no width hint.
    let extract = map.add(Map::new(|found: Vec<Match>| {
        found.iter().map(|m| m.offset).collect::<Vec<u64>>()
    }));
    let busy = map.add(FilterMap::new(|offs: Vec<u64>| {
        (!offs.is_empty()).then_some(offs)
    }));
    let (we, hits) = write_each::<Vec<u64>>();
    let merge = map.add(we);
    map.link_unordered(reader, "out", search, "in")
        .expect("link");
    map.link_unordered(search, "out", extract, "in")
        .expect("link");
    map.link_unordered(extract, "out", busy, "in")
        .expect("link");
    map.link_unordered(busy, "out", merge, "in").expect("link");
    map.prefer_width(search, args.width);

    let t0 = Instant::now();
    let report = map.exe().expect("search run");
    let dt = t0.elapsed();

    let mut offsets: Vec<u64> = hits.lock().unwrap().iter().flatten().copied().collect();
    offsets.sort_unstable();

    // Resolve line numbers with one pass over the file.
    let mut line_starts = vec![0usize];
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    for &off in offsets.iter().take(20) {
        let line_idx = line_starts.partition_point(|&s| s as u64 <= off) - 1;
        let line_start = line_starts[line_idx];
        let line_end = data[line_start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| line_start + p)
            .unwrap_or(data.len());
        let text = String::from_utf8_lossy(&data[line_start..line_end]);
        let shown = if text.len() > 100 {
            &text[..100]
        } else {
            &text
        };
        println!("{}:{}: {}", line_idx + 1, off, shown);
    }
    if offsets.len() > 20 {
        println!("... and {} more", offsets.len() - 20);
    }
    eprintln!(
        "\n{} matches in {} bytes, {:?} ({:.2} GB/s, algo={}, width={}, simd={})",
        offsets.len(),
        data.len(),
        dt,
        data.len() as f64 / 1e9 / dt.as_secs_f64(),
        args.algo,
        args.width,
        raft_algos::simd::active_tier().name()
    );
    if report.fused.is_empty() {
        eprintln!("fused groups: none (RAFT_FUSION=0, or no eligible chain)");
    } else {
        for g in &report.fused {
            eprintln!(
                "fused: {} ({} batches of <= {} items)",
                g.members.join(" -> "),
                g.batches,
                g.batch
            );
        }
    }
}
