//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! Sliding-window stream processing — §3's "stream access pattern is often
//! that of a sliding window, which should be accommodated efficiently.
//! RaftLib accommodates this through a peek_range function."
//!
//! A noisy signal streams through a `SlidingWindow` kernel (peek_range
//! under the hood — the ring grows automatically when the window exceeds
//! its capacity) into a smoothing kernel producing the moving average.
//!
//! ```sh
//! cargo run --example moving_average
//! ```

use raft_kernels::{write_each, Generate, Map, SlidingWindow};
use raftlib::prelude::*;

fn main() {
    const N: usize = 64;
    const WINDOW: usize = 8;

    // A deterministic "noisy sine": base wave plus a hash-noise term.
    let signal: Vec<f64> = (0..N)
        .map(|i| {
            let t = i as f64 / 8.0;
            let noise = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64 / 16777216.0;
            t.sin() + (noise - 0.5) * 0.6
        })
        .collect();

    // Deliberately tiny queues: the 8-wide window forces a read-side grow.
    let mut cfg = MapConfig::default();
    cfg.fifo = FifoConfig {
        initial_capacity: 2,
        max_capacity: 1 << 10,
        min_capacity: 2,
    };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(signal.clone()));
    let window = map.add(SlidingWindow::<f64>::new(WINDOW, 1));
    let avg = map.add(Map::new(|w: Vec<f64>| {
        w.iter().sum::<f64>() / w.len() as f64
    }));
    let (we, out) = write_each::<f64>();
    let sink = map.add(we);
    map.link(src, "out", window, "in").expect("link window");
    map.link(window, "out", avg, "in").expect("link avg");
    map.link(avg, "out", sink, "in").expect("link sink");
    let report = map.exe().expect("run");

    let smoothed = out.lock().unwrap();
    println!("raw signal vs {WINDOW}-point moving average:");
    for (i, s) in smoothed.iter().enumerate() {
        let raw = signal[i + WINDOW - 1];
        let bar_at = |v: f64| ((v + 1.5) * 16.0) as usize;
        let mut line = vec![b' '; 52];
        line[bar_at(raw).min(51)] = b'.';
        line[bar_at(*s).min(51)] = b'#';
        println!(
            "{:>3} |{}| raw={raw:+.3} avg={s:+.3}",
            i,
            String::from_utf8_lossy(&line)
        );
    }
    println!(
        "\nwindow kernel grew its input ring via peek_range: {} resizes",
        report.total_resizes()
    );
    assert!(
        report
            .resize_events
            .iter()
            .any(|e| e.reason == raftlib::ResizeReason::ReadRequest),
        "expected a read-request-driven grow"
    );
}
