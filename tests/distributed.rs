//! Distributed integration tests: pipelines spanning TCP links, the oar
//! mesh, remote kernel execution, and their combinations with the local
//! runtime features (replication, compression, signals).

use std::time::Duration;

use raft_kernels::{write_each, Count, Generate, Map};
use raft_net::{tcp_bridge, KernelRegistry, OarNode, RemoteStage, RemoteWorker};
use raftlib::prelude::*;

/// Replicated local stage feeding a TCP hop: out-of-order local processing,
/// network crossing, exact multiset at the far end.
#[test]
fn replicated_stage_then_tcp_hop() {
    const N: u64 = 20_000;
    let (tcp_out, tcp_in) = tcp_bridge::<u64>().unwrap();

    let node_a = std::thread::spawn(move || {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(0..N));
        let work = map.add(Map::new(|x: u64| x * 5));
        let out = map.add(tcp_out);
        map.link_unordered(src, "out", work, "in").unwrap();
        map.link_unordered(work, "out", out, "in").unwrap();
        map.prefer_width(work, 3);
        map.exe().unwrap()
    });

    let node_b = std::thread::spawn(move || {
        let mut map = RaftMap::new();
        let src = map.add(tcp_in);
        let (we, handle) = write_each::<u64>();
        let dst = map.add(we);
        map.link(src, "out", dst, "in").unwrap();
        map.exe().unwrap();
        let got = handle.lock().unwrap().clone();
        got
    });

    let report_a = node_a.join().unwrap();
    assert_eq!(report_a.replicated.len(), 1);
    let mut got = node_b.join().unwrap();
    got.sort_unstable();
    assert_eq!(got, (0..N).map(|x| x * 5).collect::<Vec<u64>>());
}

/// Compressed TCP hop carries a large compressible stream correctly.
#[test]
fn compressed_hop_preserves_data() {
    const N: u32 = 5_000;
    let (tcp_out, tcp_in) = tcp_bridge::<String>().unwrap();
    let tcp_out = tcp_out.compressed();

    let sender = std::thread::spawn(move || {
        let mut map = RaftMap::new();
        let src = map.add(Generate::new(
            (0..N).map(|i| format!("element {} lorem ipsum dolor sit amet", i)),
        ));
        let out = map.add(tcp_out);
        map.link(src, "out", out, "in").unwrap();
        map.exe().unwrap();
    });
    let mut map = RaftMap::new();
    let src = map.add(tcp_in);
    let (count, n) = Count::<String>::new();
    let sink = map.add(count);
    map.link(src, "out", sink, "in").unwrap();
    map.exe().unwrap();
    sender.join().unwrap();
    assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), N as u64);
}

/// Three-node oar mesh converges to a full view from a single chain of
/// introductions (a→b, b→c).
#[test]
fn three_node_mesh_converges() {
    let hb = Duration::from_millis(15);
    let a = OarNode::start("mesh-a", "127.0.0.1:0", 2, hb).unwrap();
    let b = OarNode::start("mesh-b", "127.0.0.1:0", 4, hb).unwrap();
    let c = OarNode::start("mesh-c", "127.0.0.1:0", 8, hb).unwrap();
    a.add_peer("b", b.addr().to_string());
    b.add_peer("c", c.addr().to_string());
    // b hears from both a (heartbeats to b) and c (c heartbeats back after
    // learning b).
    let peers_b = b.await_peers(2, Duration::from_secs(10));
    let names: Vec<&str> = peers_b.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"mesh-a"), "{names:?}");
    assert!(names.contains(&"mesh-c"), "{names:?}");
    // topology reflects all cores b knows about: its own 4 + a's 2 + c's 8
    let topo = b.cluster_topology(Duration::from_secs(10), 100, 10_000);
    assert_eq!(topo.capacity(), 14);
}

/// Remote stage chained with local replication, and two remote stages in
/// one pipeline.
#[test]
fn two_remote_stages_in_one_pipeline() {
    let mut reg1 = KernelRegistry::new();
    reg1.register("double", || Map::new(|x: u64| x * 2));
    let mut reg2 = KernelRegistry::new();
    reg2.register("dec", || Map::new(|x: u64| x - 1));
    let w1 = RemoteWorker::<u64>::serve("127.0.0.1:0", reg1).unwrap();
    let w2 = RemoteWorker::<u64>::serve("127.0.0.1:0", reg2).unwrap();

    let stage1 = RemoteStage::<u64>::connect(w1.addr(), &["double"]).unwrap();
    let stage2 = RemoteStage::<u64>::connect(w2.addr(), &["dec"]).unwrap();

    let mut map = RaftMap::new();
    let src = map.add(Generate::new(1..=1000u64));
    let r1 = map.add(stage1);
    let r2 = map.add(stage2);
    let (we, out) = write_each::<u64>();
    let dst = map.add(we);
    map.link(src, "out", r1, "in").unwrap();
    map.link(r1, "out", r2, "in").unwrap();
    map.link(r2, "out", dst, "in").unwrap();
    map.exe().unwrap();
    assert_eq!(
        *out.lock().unwrap(),
        (1..=1000u64).map(|x| x * 2 - 1).collect::<Vec<u64>>()
    );
}

/// Mesh-derived topology drives the mapper for a distributed placement
/// decision (§4.1's mapping + oar integration).
#[test]
fn mesh_topology_feeds_mapper() {
    use raftlib::mapper::{map_kernels, CommGraph};
    let hb = Duration::from_millis(15);
    let a = OarNode::start("map-a", "127.0.0.1:0", 2, hb).unwrap();
    let b = OarNode::start("map-b", "127.0.0.1:0", 2, hb).unwrap();
    a.add_peer("b", b.addr().to_string());
    a.await_peers(1, Duration::from_secs(10));
    let topo = a.cluster_topology(Duration::from_secs(10), 100, 50_000);
    assert_eq!(topo.capacity(), 4);

    // 4-stage pipeline across the 2-node/4-core mesh view: exactly one
    // stream crosses the network.
    let mut g = CommGraph::new(4);
    g.add_edge(0, 1, 10);
    g.add_edge(1, 2, 10);
    g.add_edge(2, 3, 10);
    let mapping = map_kernels(&g, &topo);
    let host = |i: usize| {
        mapping.assignment[i]
            .name
            .split('/')
            .next()
            .unwrap()
            .to_string()
    };
    let cross = (0..3).filter(|&i| host(i) != host(i + 1)).count();
    assert_eq!(cross, 1, "assignment: {:?}", mapping.assignment);
    // both mesh nodes used
    let hosts: std::collections::HashSet<String> = (0..4).map(host).collect();
    assert_eq!(hosts.len(), 2);
}

/// Arc-shared corpus + remote worker: a text-search stage offloaded to a
/// "remote node", counts verified against ground truth.
#[test]
fn remote_search_stage_counts_matches() {
    use raft_algos::{Horspool, Matcher};
    let spec = raft_algos::corpus::CorpusSpec {
        size: 128 * 1024,
        matches_per_mb: 300.0,
        ..Default::default()
    };
    let corpus = raft_algos::corpus::generate(&spec);
    let expected = corpus.planted.len() as u64;
    let needle = corpus.needle.clone();

    // Worker counts matches per chunk (chunks shipped as raw bytes; the
    // worker is typed Vec<u8> end to end, so the count travels back as an
    // 8-byte little-endian payload).
    let mut reg = KernelRegistry::new();
    let needle2 = needle.clone();
    reg.register("count_matches", move || {
        let m = Horspool::new(&needle2);
        Map::new(move |chunk: Vec<u8>| (m.count(&chunk) as u64).to_le_bytes().to_vec())
    });
    let worker = RemoteWorker::<Vec<u8>>::serve("127.0.0.1:0", reg).unwrap();

    // Client: chunk the corpus (with min_end trimming handled by sending
    // non-overlapping chunks + scanning boundaries locally for simplicity).
    let overlap = needle.len() - 1;
    let chunks = raft_algos::split_chunks(corpus.data.len(), 8, 0);
    let payloads: Vec<Vec<u8>> = chunks
        .iter()
        .map(|c| corpus.data[c.start..c.end].to_vec())
        .collect();
    let remote_total: u64 =
        raft_net::remote_apply::<Vec<u8>>(worker.addr(), &["count_matches"], payloads.clone())
            .unwrap()
            .iter()
            .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
            .sum::<u64>()
            + {
                // boundary matches (straddling chunk edges) scanned locally
                let m = Horspool::new(&needle);
                let mut extra = 0u64;
                for c in chunks.windows(2) {
                    let edge_start = c[0].end.saturating_sub(overlap);
                    let edge_end = (c[0].end + overlap).min(corpus.data.len());
                    for f in m.find_all(&corpus.data[edge_start..edge_end]) {
                        let abs = edge_start as u64 + f.offset;
                        // only count if it truly straddles the boundary
                        if abs < c[0].end as u64 && abs + needle.len() as u64 > c[0].end as u64 {
                            extra += 1;
                        }
                    }
                }
                extra
            };
    assert_eq!(remote_total, expected);
}
