//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! Property tests over the full runtime: for arbitrary pipeline shapes,
//! FIFO configurations, schedulers, and replication widths, data is
//! conserved and ordering guarantees hold.

use std::sync::atomic::Ordering;

use proptest::prelude::*;
use raft_kernels::{write_each, Count, Generate, Map, SliceMap};
use raftlib::prelude::*;

fn scheduler_strategy() -> impl Strategy<Value = u8> {
    0u8..3
}

fn scheduler(kind: u8) -> SchedulerKind {
    match kind {
        0 => SchedulerKind::ThreadPerKernel,
        1 => SchedulerKind::Pool { workers: 2 },
        _ => SchedulerKind::Chained { workers: 2 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a real multi-threaded pipeline
        .. ProptestConfig::default()
    })]

    /// A linear pipeline of random depth with random queue capacities
    /// delivers every item exactly once, in order, under every scheduler.
    #[test]
    fn linear_pipeline_conserves_order(
        n in 1u64..5_000,
        depth in 0usize..4,
        cap in 1usize..64,
        sched in scheduler_strategy(),
    ) {
        let mut cfg = MapConfig::default();
        cfg.scheduler = scheduler(sched);
        cfg.fifo = FifoConfig {
            initial_capacity: cap,
            max_capacity: 1 << 14,
            min_capacity: 1,
        };
        let mut map = RaftMap::with_config(cfg);
        let src = map.add(Generate::new(0..n));
        let mut prev = src;
        for _ in 0..depth {
            let k = map.add(Map::new(|x: u64| x.wrapping_add(1)));
            map.connect(prev, k).unwrap();
            prev = k;
        }
        let (we, out) = write_each::<u64>();
        let sink = map.add(we);
        map.connect(prev, sink).unwrap();
        map.exe().unwrap();
        let got = out.lock().unwrap();
        let expect: Vec<u64> = (0..n).map(|x| x + depth as u64).collect();
        prop_assert_eq!(&*got, &expect);
    }

    /// A pipeline built entirely from the zero-copy batch paths — a
    /// reserving source into chained SliceMap stages — delivers every item
    /// exactly once and in order for arbitrary batch sizes, queue
    /// capacities, and schedulers. Exercises reserve/WriteSlice on the push
    /// side and pop_slice/SliceView on the pop side across kernel
    /// boundaries.
    #[test]
    fn batch_view_pipeline_conserves_order(
        n in 1u64..5_000,
        depth in 1usize..4,
        cap in 1usize..64,
        src_batch in 1usize..128,
        map_batch in 1usize..128,
        sched in scheduler_strategy(),
    ) {
        let mut cfg = MapConfig::default();
        cfg.scheduler = scheduler(sched);
        cfg.fifo = FifoConfig {
            initial_capacity: cap,
            max_capacity: 1 << 14,
            min_capacity: 1,
        };
        let mut map = RaftMap::with_config(cfg);
        let src = map.add(Generate::new(0..n).with_batch(src_batch));
        let mut prev = src;
        for _ in 0..depth {
            let k = map.add(SliceMap::new(|x: &u64| x.wrapping_add(1)).with_batch(map_batch));
            map.connect(prev, k).unwrap();
            prev = k;
        }
        let (we, out) = write_each::<u64>();
        let sink = map.add(we);
        map.connect(prev, sink).unwrap();
        map.exe().unwrap();
        let got = out.lock().unwrap();
        let expect: Vec<u64> = (0..n).map(|x| x + depth as u64).collect();
        prop_assert_eq!(&*got, &expect);
    }

    /// Replication preserves the multiset for any width and queue size.
    #[test]
    fn replication_conserves_multiset(
        n in 1u64..5_000,
        width in 2u32..5,
        cap in 1usize..32,
    ) {
        let mut cfg = MapConfig::default();
        cfg.fifo = FifoConfig {
            initial_capacity: cap,
            max_capacity: 1 << 14,
            min_capacity: 1,
        };
        let mut map = RaftMap::with_config(cfg);
        let src = map.add(Generate::new(0..n));
        let work = map.add(Map::new(|x: u64| x * 7 + 1));
        let (we, out) = write_each::<u64>();
        let sink = map.add(we);
        map.link_unordered(src, "out", work, "in").unwrap();
        map.link_unordered(work, "out", sink, "in").unwrap();
        map.prefer_width(work, width);
        let report = map.exe().unwrap();
        prop_assert_eq!(report.replicated.len(), 1);
        let mut got = out.lock().unwrap().clone();
        got.sort_unstable();
        let expect: Vec<u64> = (0..n).map(|x| x * 7 + 1).collect();
        prop_assert_eq!(got, expect);
    }

    /// Fan-in: two sources into a 2-input merge kernel; totals conserved.
    #[test]
    fn fan_in_conserves_sum(na in 1u64..2_000, nb in 1u64..2_000) {
        struct Merge;
        impl Kernel for Merge {
            fn ports(&self) -> PortSpec {
                PortSpec::new()
                    .input::<u64>("a")
                    .input::<u64>("b")
                    .output::<u64>("out")
            }
            fn run(&mut self, ctx: &Context) -> KStatus {
                // Drain whichever inputs have data; stop when both closed.
                let mut forwarded = false;
                for name in ["a", "b"] {
                    let mut port = ctx.input::<u64>(name);
                    if let Ok(Some(v)) = port.try_pop() {
                        drop(port);
                        let mut out = ctx.output::<u64>("out");
                        if out.push(v).is_err() {
                            return KStatus::Stop;
                        }
                        forwarded = true;
                    }
                }
                if !forwarded && ctx.inputs_done() {
                    return KStatus::Stop;
                }
                if !forwarded {
                    std::thread::yield_now();
                }
                KStatus::Proceed
            }
        }
        let mut map = RaftMap::new();
        let a = map.add(Generate::new(1..=na));
        let b = map.add(Generate::new(1..=nb));
        let merge = map.add(Merge);
        let (count, total) = Count::<u64>::new();
        let sink = map.add(count);
        map.link(a, "out", merge, "a").unwrap();
        map.link(b, "out", merge, "b").unwrap();
        map.link(merge, "out", sink, "in").unwrap();
        map.exe().unwrap();
        prop_assert_eq!(total.load(Ordering::Relaxed), na + nb);
    }
}
