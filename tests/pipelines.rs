//  Config structs are assembled field-by-field in tests/benches for clarity.
#![allow(clippy::field_reassign_with_default)]
//! Cross-crate integration tests: full topologies through the public API.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use raft_kernels::{read_each, write_each, Count, Fold, Generate, Map};
use raftlib::prelude::*;

/// The paper's Figure 1/3 application: two number sources, a sum kernel, a
/// sink.
struct Sum;
impl Kernel for Sum {
    fn ports(&self) -> PortSpec {
        PortSpec::new()
            .input::<i64>("input_a")
            .input::<i64>("input_b")
            .output::<i64>("sum")
    }
    fn run(&mut self, ctx: &Context) -> KStatus {
        let mut a = ctx.input::<i64>("input_a");
        let mut b = ctx.input::<i64>("input_b");
        match (a.pop(), b.pop()) {
            (Ok(x), Ok(y)) => {
                drop((a, b));
                let mut out = ctx.output::<i64>("sum");
                if out.push(x + y).is_err() {
                    return KStatus::Stop;
                }
                KStatus::Proceed
            }
            _ => KStatus::Stop,
        }
    }
}

#[test]
fn figure1_sum_application() {
    const COUNT: i64 = 100_000;
    let mut map = RaftMap::new();
    let a = map.add(Generate::new(0..COUNT));
    let b = map.add(Generate::new(0..COUNT));
    let sum = map.add(Sum);
    let (fold, total) = Fold::new(0i64, |acc: &mut i64, v: i64| *acc += v);
    let sink = map.add(fold);
    map.link(a, "out", sum, "input_a").unwrap();
    map.link(b, "out", sum, "input_b").unwrap();
    map.link(sum, "sum", sink, "in").unwrap();
    let report = map.exe().unwrap();
    // Σ (i + i) for i in 0..COUNT = COUNT * (COUNT-1)
    assert_eq!(*total.lock().unwrap(), COUNT * (COUNT - 1));
    assert_eq!(report.edge("sum").unwrap().stats.popped, COUNT as u64);
}

#[test]
fn unconnected_port_fails_validation() {
    let mut map = RaftMap::new();
    let _ = map.add(Generate::new(0..10u32));
    let err = map.exe().unwrap_err();
    match &err {
        ExeError::CheckFailed { diagnostics } => {
            // RC0001 = unconnected-port; RC0002 = no sink in the graph.
            assert!(
                diagnostics.iter().any(|d| d.code == "RC0001"),
                "{diagnostics:?}"
            );
        }
        other => panic!("expected CheckFailed, got {other}"),
    }
    assert!(err.to_string().contains("not connected"), "{err}");
}

#[test]
fn empty_map_fails() {
    let map = RaftMap::new();
    assert!(matches!(map.exe().unwrap_err(), ExeError::EmptyMap));
}

#[test]
fn ordered_pipeline_preserves_sequence() {
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..10_000u64));
    let inc = map.add(Map::new(|x: u64| x + 1));
    let (we, out) = write_each::<u64>();
    let dst = map.add(we);
    map.link(src, "out", inc, "in").unwrap();
    map.link(inc, "out", dst, "in").unwrap();
    map.exe().unwrap();
    let got = out.lock().unwrap();
    assert_eq!(*got, (1..=10_000).collect::<Vec<u64>>());
}

/// Explicit replication via width hint: results arrive out of order but the
/// multiset is exactly preserved, and the report names the replicas.
#[test]
fn replicated_kernel_preserves_multiset() {
    const N: u64 = 50_000;
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..N));
    let work = map.add(Map::new(|x: u64| x * 3));
    let (we, out) = write_each::<u64>();
    let dst = map.add(we);
    map.link_unordered(src, "out", work, "in").unwrap();
    map.link_unordered(work, "out", dst, "in").unwrap();
    map.prefer_width(work, 4);
    let report = map.exe().unwrap();
    assert_eq!(report.replicated.len(), 1);
    assert_eq!(report.replicated[0].1, 4);
    let mut got = out.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, (0..N).map(|x| x * 3).collect::<Vec<u64>>());
    // split + 4 replicas + reduce really exist
    assert!(report.kernels.iter().any(|k| k.name.contains("split")));
    assert!(report.kernels.iter().any(|k| k.name.contains("reduce")));
    assert!(report.kernels.iter().any(|k| k.name.contains("-r3")));
}

/// Width hints on ordered links are ignored (semantics would break).
#[test]
fn ordered_links_prevent_replication() {
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..1000u64));
    let work = map.add(Map::new(|x: u64| x));
    let (we, _out) = write_each::<u64>();
    let dst = map.add(we);
    map.link(src, "out", work, "in").unwrap(); // ordered!
    map.link_unordered(work, "out", dst, "in").unwrap();
    map.prefer_width(work, 4);
    let report = map.exe().unwrap();
    assert!(report.replicated.is_empty());
}

/// Non-replicable kernels (no clone_replica) stay sequential.
#[test]
fn non_replicable_kernel_stays_sequential() {
    struct Stateful(u64);
    impl Kernel for Stateful {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            match input.pop() {
                Ok(v) => {
                    drop(input);
                    self.0 += v;
                    let mut out = ctx.output::<u64>("out");
                    if out.push(self.0).is_err() {
                        return KStatus::Stop;
                    }
                    KStatus::Proceed
                }
                Err(_) => KStatus::Stop,
            }
        }
    }
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(1..=100u64));
    let work = map.add(Stateful(0));
    let (we, out) = write_each::<u64>();
    let dst = map.add(we);
    map.link_unordered(src, "out", work, "in").unwrap();
    map.link_unordered(work, "out", dst, "in").unwrap();
    map.prefer_width(work, 4);
    let report = map.exe().unwrap();
    assert!(report.replicated.is_empty());
    // running sums: last value is 5050
    assert_eq!(*out.lock().unwrap().last().unwrap(), 5050);
}

/// A panicking kernel shuts the app down cleanly and is reported.
#[test]
fn kernel_panic_propagates_cleanly() {
    struct Bomb;
    impl Kernel for Bomb {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            match input.pop() {
                Ok(v) if v == 500 => panic!("boom at {v}"),
                Ok(v) => {
                    drop(input);
                    let mut out = ctx.output::<u64>("out");
                    let _ = out.push(v);
                    KStatus::Proceed
                }
                Err(_) => KStatus::Stop,
            }
        }
    }
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..1_000_000u64));
    let bomb = map.add(Bomb);
    let (count, _n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link(src, "out", bomb, "in").unwrap();
    map.link(bomb, "out", sink, "in").unwrap();
    let err = map.exe().unwrap_err();
    match err {
        ExeError::KernelPanicked { kernels } => {
            assert!(kernels.iter().any(|k| k.contains("Bomb")), "{kernels:?}");
        }
        other => panic!("expected KernelPanicked, got {other}"),
    }
}

/// Monitor grows a deliberately tiny queue under pressure (3δ rule end to
/// end).
#[test]
fn monitor_grows_queue_under_backpressure() {
    let mut cfg = MapConfig::default();
    cfg.fifo = FifoConfig {
        initial_capacity: 2,
        max_capacity: 1 << 12,
        min_capacity: 2,
    };
    cfg.monitor.shrink_enabled = false;
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..20_000u64).with_batch(256));
    // Slow consumer: burn a little time per item.
    let slow = map.add(Map::new(|x: u64| {
        std::hint::black_box((0..50).fold(x, |a, b| a.wrapping_add(b)))
    }));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link(src, "out", slow, "in").unwrap();
    map.link(slow, "out", sink, "in").unwrap();
    let report = map.exe().unwrap();
    assert_eq!(n.load(Ordering::Relaxed), 20_000);
    assert!(
        report.total_resizes() > 0,
        "expected the monitor to grow the 2-slot queue: {report:?}"
    );
    // The source-side queue (consumer pops one at a time) must have grown
    // beyond its 2-slot start; whether the trigger was the 3δ writer-block
    // rule or a read request is timing-dependent.
    let src_edge = report.edge("generate").expect("source edge");
    assert!(
        src_edge.stats.capacity > 2 || src_edge.stats.resizes > 0,
        "source edge never grew: {src_edge:?}"
    );
}

/// read_each/write_each (Figure 5) through the real runtime, with a
/// transform between them.
#[test]
fn container_integration_roundtrip() {
    let input: Vec<u32> = (0..1000).rev().collect();
    let mut map = RaftMap::new();
    let src = map.add(read_each(input.clone()));
    let neg = map.add(Map::new(|x: u32| u64::from(x) + 1));
    let (we, out) = write_each::<u64>();
    let dst = map.add(we);
    map.link(src, "out", neg, "in").unwrap();
    map.link(neg, "out", dst, "in").unwrap();
    map.exe().unwrap();
    let got = out.lock().unwrap();
    assert_eq!(
        *got,
        input.iter().map(|&x| u64::from(x) + 1).collect::<Vec<_>>()
    );
}

/// The cooperative pool scheduler executes the same graph correctly.
#[test]
fn pool_scheduler_runs_pipeline() {
    let mut cfg = MapConfig::default();
    cfg.scheduler = SchedulerKind::Pool { workers: 2 };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..10_000u64));
    let inc = map.add(Map::new(|x: u64| x + 1));
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let dst = map.add(fold);
    map.link(src, "out", inc, "in").unwrap();
    map.link(inc, "out", dst, "in").unwrap();
    map.exe().unwrap();
    assert_eq!(*total.lock().unwrap(), (1..=10_000u64).sum::<u64>());
}

/// Pool scheduler with a multi-input kernel (readiness gating).
#[test]
fn pool_scheduler_multi_input_kernel() {
    let mut cfg = MapConfig::default();
    cfg.scheduler = SchedulerKind::Pool { workers: 2 };
    let mut map = RaftMap::with_config(cfg);
    let a = map.add(Generate::new(0..5000i64));
    let b = map.add(Generate::new(0..5000i64));
    let sum = map.add(Sum);
    let (fold, total) = Fold::new(0i64, |acc: &mut i64, v: i64| *acc += v);
    let sink = map.add(fold);
    map.link(a, "out", sum, "input_a").unwrap();
    map.link(b, "out", sum, "input_b").unwrap();
    map.link(sum, "sum", sink, "in").unwrap();
    map.exe().unwrap();
    assert_eq!(*total.lock().unwrap(), 5000 * 4999);
}

/// Asynchronous signal is visible downstream ahead of queued data.
#[test]
fn async_signals_bypass_data() {
    use raft_buffer::{fifo_with, FifoConfig, Signal};
    let (fifo, mut p, mut c) = fifo_with::<u64>(FifoConfig::starting_at(8));
    for i in 0..5 {
        p.try_push(i).unwrap();
    }
    fifo.post_async(Signal::Error(9));
    assert_eq!(c.take_async(), Some(Signal::Error(9)));
    assert_eq!(c.try_pop().unwrap(), 0);
}

/// Deadline execution winds sources down and still drains the pipeline.
#[test]
fn exe_with_timeout_stops_infinite_source() {
    let mut map = RaftMap::new();
    // Infinite source (polls stop_requested via Generate's run loop).
    let src = map.add(Generate::new(0u64..));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link(src, "out", sink, "in").unwrap();
    let report = map
        .exe_with_timeout(std::time::Duration::from_millis(200))
        .unwrap();
    assert!(n.load(Ordering::Relaxed) > 0, "should have processed items");
    assert!(report.elapsed < std::time::Duration::from_secs(30));
}

/// AlgoSet hot swap mid-stream switches implementations.
#[test]
fn algoset_hot_swap_mid_stream() {
    let mk = |tag: u64| -> Box<dyn Kernel> { Box::new(Map::new(move |x: u64| x * 10 + tag)) };
    let set = AlgoSet::new("tagger", vec![mk(1), mk(2)]);
    let sw = set.switch();
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..100_000u64).with_batch(16));
    let work = map.add(set);
    let (we, out) = write_each::<u64>();
    let dst = map.add(we);
    map.link(src, "out", work, "in").unwrap();
    map.link(work, "out", dst, "in").unwrap();
    // Swap from algorithm 0 to 1 while the app runs.
    let swapper = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        sw.select(1);
        sw
    });
    map.exe().unwrap();
    let sw = swapper.join().unwrap();
    assert_eq!(sw.active(), 1);
    let got = out.lock().unwrap();
    let tag1 = got.iter().filter(|v| *v % 10 == 1).count();
    let tag2 = got.iter().filter(|v| *v % 10 == 2).count();
    assert_eq!(tag1 + tag2, 100_000);
    assert!(tag2 > 0, "swap never took effect (tag2 = 0)");
}

/// Replication + least-utilized strategy end to end.
#[test]
fn least_utilized_split_strategy() {
    let mut cfg = MapConfig::default();
    cfg.parallel.strategy = SplitStrategy::LeastUtilized;
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..20_000u64));
    let work = map.add(Map::new(|x: u64| x));
    let (count, n) = Count::<u64>::new();
    let dst = map.add(count);
    map.link_unordered(src, "out", work, "in").unwrap();
    map.link_unordered(work, "out", dst, "in").unwrap();
    map.prefer_width(work, 3);
    let report = map.exe().unwrap();
    assert_eq!(n.load(Ordering::Relaxed), 20_000);
    assert_eq!(report.replicated, vec![("map#1".to_string(), 3)]);
}

/// Per-link FIFO overrides are respected.
#[test]
fn per_link_fifo_override() {
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..100u64));
    let (count, _n) = Count::<u64>::new();
    let dst = map.add(count);
    let sp = "out";
    map.link_with(src, sp, dst, "in", FifoConfig::fixed(4))
        .unwrap();
    let report = map.exe().unwrap();
    assert_eq!(report.edges[0].stats.capacity, 4);
    assert_eq!(report.edges[0].stats.resizes, 0);
}

/// Zero-copy byte chunk search: a small end-to-end text pipeline combining
/// kernels + algos, counting matches exactly.
#[test]
fn text_search_pipeline_exact_counts() {
    use raft_algos::{corpus, Matcher};
    use raft_kernels::{ByteChunk, ByteChunkSource};

    let spec = corpus::CorpusSpec {
        size: 256 * 1024,
        matches_per_mb: 200.0,
        ..Default::default()
    };
    let c = corpus::generate(&spec);
    let expected = c.planted.len() as u64;
    let needle = c.needle.clone();
    let data = Arc::new(c.data);

    let matcher = Arc::new(raft_algos::Horspool::new(&needle));
    let overlap = matcher.overlap();
    let mut map = RaftMap::new();
    let src = map.add(ByteChunkSource::new(data, 64 * 1024, overlap));
    let m2 = matcher.clone();
    let search = map.add(Map::new(move |chunk: ByteChunk| {
        let mut found = Vec::new();
        m2.find_into(chunk.as_slice(), chunk.base(), chunk.min_end, &mut found);
        found.len() as u64
    }));
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let sink = map.add(fold);
    map.link_unordered(src, "out", search, "in").unwrap();
    map.link_unordered(search, "out", sink, "in").unwrap();
    map.prefer_width(search, 2);
    map.exe().unwrap();
    assert_eq!(*total.lock().unwrap(), expected);
}

/// The cache-aware chained scheduler executes the same graph correctly.
#[test]
fn chained_scheduler_runs_pipeline() {
    let mut cfg = MapConfig::default();
    cfg.scheduler = SchedulerKind::Chained { workers: 2 };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..10_000u64));
    let a = map.add(Map::new(|x: u64| x + 1));
    let b = map.add(Map::new(|x: u64| x * 2));
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let dst = map.add(fold);
    map.link(src, "out", a, "in").unwrap();
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", dst, "in").unwrap();
    map.exe().unwrap();
    assert_eq!(
        *total.lock().unwrap(),
        (1..=10_000u64).map(|x| x * 2).sum::<u64>()
    );
}

/// Chained scheduler with replication (split/reduce in the successor graph).
#[test]
fn chained_scheduler_with_replication() {
    let mut cfg = MapConfig::default();
    cfg.scheduler = SchedulerKind::Chained { workers: 2 };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..5_000u64));
    let work = map.add(Map::new(|x: u64| x ^ 0xAB));
    let (count, n) = Count::<u64>::new();
    let dst = map.add(count);
    map.link_unordered(src, "out", work, "in").unwrap();
    map.link_unordered(work, "out", dst, "in").unwrap();
    map.prefer_width(work, 2);
    let report = map.exe().unwrap();
    assert_eq!(n.load(Ordering::Relaxed), 5_000);
    assert_eq!(report.replicated.len(), 1);
}

/// Dynamic bottleneck elimination: a width range starts narrow and the
/// monitor's optimizer widens the split while the input stays backed up.
#[test]
fn width_range_widens_under_load() {
    let mut cfg = MapConfig::default();
    cfg.fifo = FifoConfig::fixed(16); // fixed so backpressure is visible
    cfg.monitor.delta = std::time::Duration::from_micros(100);
    cfg.monitor.widen_after_ticks = 5;
    cfg.monitor.grow_on_read_request = false; // keep capacities stable
    cfg.monitor.grow_on_writer_block = false;
    cfg.monitor.shrink_enabled = false;
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..60_000u64).with_batch(128));
    // Slow enough that one replica cannot keep up with the source.
    let work = map.add(Map::new(|x: u64| {
        std::hint::black_box((0..200).fold(x, |a, b| a.wrapping_add(b * 31)))
    }));
    let (count, n) = Count::<u64>::new();
    let sink = map.add(count);
    map.link_unordered(src, "out", work, "in").unwrap();
    map.link_unordered(work, "out", sink, "in").unwrap();
    map.prefer_width_range(work, 1, 4); // built to 4, starts at 1
    let report = map.exe().unwrap();
    assert_eq!(n.load(Ordering::Relaxed), 60_000);
    assert!(
        !report.width_events.is_empty(),
        "optimizer never widened the split: {report:?}"
    );
    let last = report.width_events.last().unwrap();
    assert!(last.new_width > 1, "width stayed at 1");
}

/// The mapper-driven partitioned scheduler executes graphs correctly.
#[test]
fn partitioned_scheduler_runs_pipeline() {
    let mut cfg = MapConfig::default();
    cfg.scheduler = SchedulerKind::Partitioned { workers: 2 };
    let mut map = RaftMap::with_config(cfg);
    let src = map.add(Generate::new(0..8_000u64));
    let a = map.add(Map::new(|x: u64| x + 3));
    let b = map.add(Map::new(|x: u64| x * 2));
    let (fold, total) = Fold::new(0u64, |acc: &mut u64, v: u64| *acc += v);
    let dst = map.add(fold);
    map.link(src, "out", a, "in").unwrap();
    map.link(a, "out", b, "in").unwrap();
    map.link(b, "out", dst, "in").unwrap();
    map.exe().unwrap();
    assert_eq!(
        *total.lock().unwrap(),
        (0..8_000u64).map(|x| (x + 3) * 2).sum::<u64>()
    );
}

/// Partitioned scheduler handles fan-out/fan-in (sum topology).
#[test]
fn partitioned_scheduler_sum_topology() {
    let mut cfg = MapConfig::default();
    cfg.scheduler = SchedulerKind::Partitioned { workers: 3 };
    let mut map = RaftMap::with_config(cfg);
    let a = map.add(Generate::new(0..3_000i64));
    let b = map.add(Generate::new(0..3_000i64));
    let sum = map.add(Sum);
    let (fold, total) = Fold::new(0i64, |acc: &mut i64, v: i64| *acc += v);
    let sink = map.add(fold);
    map.link(a, "out", sum, "input_a").unwrap();
    map.link(b, "out", sum, "input_b").unwrap();
    map.link(sum, "sum", sink, "in").unwrap();
    map.exe().unwrap();
    assert_eq!(*total.lock().unwrap(), 3_000 * 2999);
}

/// Panic in an upstream kernel reaches the downstream kernel as an
/// out-of-band `Signal::Error` — §4.2's asynchronous exception pathway.
#[test]
fn panic_posts_async_error_signal_downstream() {
    use std::sync::atomic::AtomicBool;
    static SAW_ERROR: AtomicBool = AtomicBool::new(false);

    struct Bomb;
    impl Kernel for Bomb {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            match input.pop() {
                Ok(100) => panic!("kaboom"),
                Ok(v) => {
                    drop(input);
                    let _ = ctx.output::<u64>("out").push(v);
                    KStatus::Proceed
                }
                Err(_) => KStatus::Stop,
            }
        }
    }

    struct Watcher;
    impl Kernel for Watcher {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            let check = |input: &mut raftlib::InPort<'_, u64>| {
                if let Some(Signal::Error(_)) = input.take_async() {
                    SAW_ERROR.store(true, Ordering::Relaxed);
                }
            };
            check(&mut input);
            match input.pop() {
                Ok(_) => KStatus::Proceed,
                Err(_) => {
                    // The stream may have closed *because* of a failure:
                    // check the out-of-band channel before winding down.
                    check(&mut input);
                    KStatus::Stop
                }
            }
        }
    }

    SAW_ERROR.store(false, Ordering::Relaxed);
    let mut map = RaftMap::new();
    let src = map.add(Generate::new(0..1_000_000u64));
    let bomb = map.add(Bomb);
    let watch = map.add(Watcher);
    map.link(src, "out", bomb, "in").unwrap();
    map.link(bomb, "out", watch, "in").unwrap();
    let err = map.exe().unwrap_err();
    assert!(matches!(err, ExeError::KernelPanicked { .. }));
    assert!(
        SAW_ERROR.load(Ordering::Relaxed),
        "downstream never observed the async error signal"
    );
}

/// Under replica service-time skew, the least-utilized strategy routes
/// fewer items to the slow replica than round-robin does (which forces an
/// even 1/width share) — §4.1's "queue utilization used to direct data
/// flow to less utilized servers", verified from the edge statistics.
#[test]
fn least_utilized_starves_the_slow_replica() {
    use std::sync::atomic::AtomicUsize;

    struct SkewedWorker {
        replica: usize,
        next_replica: Arc<AtomicUsize>,
    }
    impl Kernel for SkewedWorker {
        fn ports(&self) -> PortSpec {
            PortSpec::new().input::<u64>("in").output::<u64>("out")
        }
        fn run(&mut self, ctx: &Context) -> KStatus {
            let mut input = ctx.input::<u64>("in");
            match input.pop() {
                Ok(v) => {
                    drop(input);
                    // replica 0 is drastically slower (well above the
                    // per-item framework overhead, so the skew is visible)
                    let spins = if self.replica == 0 { 300_000 } else { 100 };
                    // black_box inside the fold so release builds cannot
                    // collapse the sum to a closed form
                    let r = (0..spins).fold(v, |a, b| a.wrapping_add(std::hint::black_box(b)));
                    let mut out = ctx.output::<u64>("out");
                    if out.push(r).is_err() {
                        return KStatus::Stop;
                    }
                    KStatus::Proceed
                }
                Err(_) => KStatus::Stop,
            }
        }
        fn clone_replica(&self) -> Option<Box<dyn Kernel>> {
            Some(Box::new(SkewedWorker {
                replica: self.next_replica.fetch_add(1, Ordering::Relaxed),
                next_replica: self.next_replica.clone(),
            }))
        }
    }

    let run = |strategy: SplitStrategy| -> (u64, u64) {
        let mut cfg = MapConfig::default();
        cfg.parallel.strategy = strategy;
        cfg.fifo = FifoConfig::fixed(8);
        cfg.monitor = MonitorConfig::disabled();
        let mut map = RaftMap::with_config(cfg);
        let src = map.add(Generate::new(0..2_000u64).with_batch(32));
        let work = map.add(SkewedWorker {
            replica: 0,
            next_replica: Arc::new(AtomicUsize::new(1)),
        });
        let (count, n) = Count::<u64>::new();
        let sink = map.add(count);
        map.link_unordered(src, "out", work, "in").unwrap();
        map.link_unordered(work, "out", sink, "in").unwrap();
        map.prefer_width(work, 3);
        let report = map.exe().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2_000);
        // items delivered to the slow replica (replica 0 = original kernel)
        let slow = report
            .edges
            .iter()
            .find(|e| e.name.contains("split") && e.name.contains("-> SkewedWorker#1.in"))
            .map(|e| e.stats.popped)
            .expect("slow replica edge");
        (slow, 2_000)
    };

    let (slow_rr, total) = run(SplitStrategy::RoundRobin);
    let (slow_lu, _) = run(SplitStrategy::LeastUtilized);
    // round-robin pins the slow replica at ~1/3 of the stream
    assert!(
        (slow_rr as f64) > 0.30 * total as f64 && (slow_rr as f64) < 0.37 * total as f64,
        "round-robin share was {slow_rr}/{total}"
    );
    // least-utilized routes the bulk of the stream around it
    assert!(
        (slow_lu as f64) < 0.5 * slow_rr as f64,
        "least-utilized should starve the slow replica: {slow_lu} vs round-robin {slow_rr}"
    );
}
